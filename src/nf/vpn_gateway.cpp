#include "nf/vpn_gateway.hpp"

namespace speedybox::nf {

VpnGateway::VpnGateway(VpnMode mode, std::uint32_t spi_base, std::string name)
    : NetworkFunction(std::move(name)),
      mode_(mode),
      spi_base_(spi_base),
      next_spi_(spi_base) {}

void VpnGateway::process(net::Packet& packet, core::SpeedyBoxContext* ctx) {
  count_packet();
  const auto parsed = parse_and_check(packet);  // R1: per-NF parse+validate
  if (!parsed) return;

  if (mode_ == VpnMode::kEgress) {
    // Security-association setup on the first packet of a flow; every
    // packet is encapsulated with the flow's SPI.
    const net::FiveTuple tuple = net::extract_five_tuple(packet, *parsed);
    std::uint32_t spi;
    const auto it = spis_.find(tuple);
    if (it != spis_.end()) {
      spi = it->second;
    } else {
      spi = next_spi_++;
      spis_.emplace(tuple, spi);
    }
    const core::HeaderAction action = core::HeaderAction::encap_ah(spi);
    core::apply_action_baseline(action, packet);
    ++encapsulated_;
    if (ctx != nullptr) {
      ctx->add_header_action(action);
      ctx->on_teardown([this, tuple]() { spis_.erase(tuple); });
    } else if (parsed->has_fin_or_rst()) {
      // Connection close frees the security association inline on the
      // unrecorded path; the teardown hook covers the recorded path.
      spis_.erase(tuple);
    }
    return;
  }

  // Ingress: the outermost header must be an AH we recognize.
  const auto spi = net::outer_ah_spi(packet);
  if (!spi) {
    packet.mark_dropped();
    ++rejected_;
    if (ctx != nullptr) {
      ctx->add_header_action(core::HeaderAction::drop());
    }
    return;
  }
  const core::HeaderAction action =
      core::HeaderAction::decap(net::EncapKind::kAh);
  core::apply_action_baseline(action, packet);
  ++decapsulated_;
  if (ctx != nullptr) {
    ctx->add_header_action(action);
  }
}

void VpnGateway::on_flow_teardown(const net::FiveTuple& tuple) {
  spis_.erase(tuple);
}

}  // namespace speedybox::nf
