#include "nf/dos_prevention.hpp"

#include "nf/flow_state.hpp"

namespace speedybox::nf {

DosPrevention::DosPrevention(std::uint64_t syn_threshold,
                             core::HeaderAction normal_action,
                             std::string name)
    : NetworkFunction(std::move(name)),
      threshold_(syn_threshold),
      normal_action_(normal_action) {}

void DosPrevention::process(net::Packet& packet,
                            core::SpeedyBoxContext* ctx) {
  count_packet();
  const auto parsed = parse_and_check(packet);  // R1: per-NF parse+validate
  if (!parsed) return;
  const auto flow =
      core::HashedTuple::of(net::extract_five_tuple(packet, *parsed));
  const net::FiveTuple tuple = flow.tuple;

  // Check-then-count: the drop verdict is based on the state *before* this
  // packet, matching the Event Table semantics where conditions are
  // evaluated on arrival (the packet that crosses the threshold still
  // passes; the next one is dropped — Fig. 3).
  FlowState* flow_args = nullptr;
  {
    const std::lock_guard lock(mutex_);
    FlowState& state = *flows_.try_emplace(tuple, flow.hash).first;
    if (state.blacklisted || state.syn_count > threshold_) {
      state.blacklisted = true;
      packet.mark_dropped();
      ++drops_;
      return;
    }
    if (parsed->has_syn()) ++state.syn_count;
    // Recorded args: the flow's resolved counter cell (Figure 2) —
    // a slab record, pointer-stable across table resizes.
    flow_args = &state;
  }
  core::apply_action_baseline(normal_action_, packet);

  if (ctx != nullptr) {
    ctx->add_header_action(normal_action_);
    core::localmat_add_SF(
        ctx,
        [this, flow_args](net::Packet&, const net::ParsedPacket& p) {
          const std::lock_guard lock(mutex_);
          if (p.has_syn()) ++flow_args->syn_count;
        },
        core::PayloadAccess::kIgnore, name() + ".syn_count");
    ctx->register_event(
        name() + ".blacklist",
        [this, tuple]() {
          const std::lock_guard lock(mutex_);
          const FlowState* state = flows_.find(tuple);
          return state != nullptr && state->syn_count > threshold_;
        },
        [this, tuple]() {
          const std::lock_guard lock(mutex_);
          flows_.try_emplace(tuple).first->blacklisted = true;
          ++drops_;  // accounted per-flow, not per-packet, on the fast path
          core::EventUpdate update;
          update.header_actions = {core::HeaderAction::drop()};
          return update;
        },
        /*one_shot=*/true);
    ctx->on_teardown([this, tuple]() {
      const std::lock_guard lock(mutex_);
      flows_.erase(tuple);
    });
  }
}

std::uint64_t DosPrevention::syn_count(const net::FiveTuple& tuple) const {
  const std::lock_guard lock(mutex_);
  const FlowState* state = flows_.find(tuple);
  return state == nullptr ? 0 : state->syn_count;
}

bool DosPrevention::is_blacklisted(const net::FiveTuple& tuple) const {
  const std::lock_guard lock(mutex_);
  const FlowState* state = flows_.find(tuple);
  return state != nullptr && state->blacklisted;
}

void DosPrevention::on_flow_teardown(const net::FiveTuple& tuple) {
  const std::lock_guard lock(mutex_);
  flows_.erase(tuple);
}

std::optional<std::vector<std::uint8_t>> DosPrevention::export_flow_state(
    const net::FiveTuple& tuple) {
  const std::lock_guard lock(mutex_);
  return flows_.export_state(tuple);
}

void DosPrevention::import_flow_state(const net::FiveTuple& tuple,
                                      std::span<const std::uint8_t> bytes,
                                      core::SpeedyBoxContext* ctx) {
  FlowState* flow_args = nullptr;
  bool blacklisted = false;
  {
    const std::lock_guard lock(mutex_);
    FlowState& state = flows_.import_state(tuple, bytes);
    blacklisted = state.blacklisted;
    flow_args = &state;
  }
  if (ctx == nullptr) return;
  if (blacklisted) {
    // The event already fired on the source shard: re-record the post-event
    // rule (drop + the still-live SYN counter) without re-arming the
    // one-shot event.
    ctx->add_header_action(core::HeaderAction::drop());
  } else {
    ctx->add_header_action(normal_action_);
  }
  core::localmat_add_SF(
      ctx,
      [this, flow_args](net::Packet&, const net::ParsedPacket& p) {
        const std::lock_guard lock(mutex_);
        if (p.has_syn()) ++flow_args->syn_count;
      },
      core::PayloadAccess::kIgnore, name() + ".syn_count");
  if (!blacklisted) {
    ctx->register_event(
        name() + ".blacklist",
        [this, tuple]() {
          const std::lock_guard lock(mutex_);
          const FlowState* state = flows_.find(tuple);
          return state != nullptr && state->syn_count > threshold_;
        },
        [this, tuple]() {
          const std::lock_guard lock(mutex_);
          flows_.try_emplace(tuple).first->blacklisted = true;
          ++drops_;  // accounted per-flow, not per-packet, on the fast path
          core::EventUpdate update;
          update.header_actions = {core::HeaderAction::drop()};
          return update;
        },
        /*one_shot=*/true);
  }
  ctx->on_teardown([this, tuple]() {
    const std::lock_guard lock(mutex_);
    flows_.erase(tuple);
  });
}

}  // namespace speedybox::nf
