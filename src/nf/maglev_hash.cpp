#include "nf/maglev_hash.hpp"

#include <stdexcept>

#include "util/hash.hpp"

namespace speedybox::nf {

bool is_prime(std::uint64_t n) noexcept {
  if (n < 2) return false;
  if (n % 2 == 0) return n == 2;
  for (std::uint64_t d = 3; d * d <= n; d += 2) {
    if (n % d == 0) return false;
  }
  return true;
}

MaglevTable::MaglevTable(const std::vector<std::string>& backend_names,
                         const std::vector<bool>& active,
                         std::size_t table_size) {
  if (!is_prime(table_size)) {
    throw std::invalid_argument("Maglev table size must be prime");
  }
  if (backend_names.size() != active.size()) {
    throw std::invalid_argument("backend_names/active size mismatch");
  }
  entries_.assign(table_size, -1);
  build(backend_names, active);
}

MaglevTable::MaglevTable(const std::vector<std::string>& backend_names,
                         std::size_t table_size)
    : MaglevTable(backend_names,
                  std::vector<bool>(backend_names.size(), true), table_size) {
}

void MaglevTable::build(const std::vector<std::string>& names,
                        const std::vector<bool>& active) {
  const std::size_t m = entries_.size();
  struct Perm {
    std::int32_t backend;
    std::uint64_t offset;
    std::uint64_t skip;
    std::uint64_t next = 0;  // next preference index j
  };
  std::vector<Perm> perms;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (!active[i]) continue;
    // Two independent hash functions of the backend name (§3.4: h1/h2).
    const std::uint64_t h1 = util::fnv1a(names[i]);
    const std::uint64_t h2 = util::mix64(h1 ^ 0xA5A5A5A5DEADBEEFULL);
    perms.push_back({static_cast<std::int32_t>(i), h1 % m, h2 % (m - 1) + 1});
  }
  if (perms.empty()) {
    entries_.clear();
    return;
  }
  if (perms.size() > m) {
    throw std::invalid_argument("more active backends than table slots");
  }

  // Round-robin population: each backend claims its next preferred empty
  // slot until all slots are owned.
  std::size_t filled = 0;
  while (filled < m) {
    for (Perm& perm : perms) {
      // Walk the backend's permutation to its next empty slot.
      std::size_t slot;
      do {
        slot = static_cast<std::size_t>(
            (perm.offset + perm.next * perm.skip) % m);
        ++perm.next;
      } while (entries_[slot] >= 0);
      entries_[slot] = perm.backend;
      ++filled;
      if (filled == m) break;
    }
  }
}

std::vector<std::size_t> MaglevTable::slot_counts(
    std::size_t backend_count) const {
  std::vector<std::size_t> counts(backend_count, 0);
  for (const std::int32_t entry : entries_) {
    if (entry >= 0 && static_cast<std::size_t>(entry) < backend_count) {
      ++counts[static_cast<std::size_t>(entry)];
    }
  }
  return counts;
}

}  // namespace speedybox::nf
