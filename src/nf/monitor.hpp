// Monitor (§VI-C): the network monitor used throughout the NFV literature.
// Maintains per-flow packet/byte counters and forwards every packet
// unchanged; optionally (MonitorConfig) it also maintains the heavier
// statistics real traffic monitors keep per packet — a count-min sketch of
// flow sizes (heavy-hitter detection) and per-destination-port traffic
// classes — which makes its per-packet state function comparable in cost to
// payload inspection, as in the paper's evaluation chains.
//
// Integration records a forward header action and one IGNORE-class state
// function maintaining the counters; the §VII-C real-chain test compares
// every counter value between the baseline and SpeedyBox runs.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "nf/flow_state.hpp"
#include "nf/network_function.hpp"

namespace speedybox::nf {

struct FlowCounters {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;

  friend bool operator==(const FlowCounters&, const FlowCounters&) = default;
};

struct MonitorConfig {
  /// Count-min sketch for heavy-hitter detection: `sketch_depth` rows of
  /// `sketch_width` counters, updated per packet. 0 depth disables it.
  std::uint32_t sketch_depth = 0;
  std::uint32_t sketch_width = 16384;
  /// Maintain per-destination-port byte counters.
  bool per_port_stats = false;
  /// Maintain a byte-value histogram of payloads (entropy estimation for
  /// anomaly/DDoS detection). Makes the monitor's state function READ-class
  /// — still parallelizable with upstream readers per Table I.
  bool payload_histogram = false;

  /// The configuration used by the paper-style evaluation chains: an
  /// 8-row sketch over 256K-counter rows (heavy-hitter detection at scale —
  /// the rows exceed cache, so updates pay real memory latency) plus port
  /// stats, giving the monitor a per-packet state-function cost comparable
  /// to payload inspection, as in the paper's Snort+Monitor evaluation.
  static MonitorConfig heavy() {
    MonitorConfig config;
    config.sketch_depth = 8;
    config.sketch_width = 1u << 18;
    config.per_port_stats = true;
    config.payload_histogram = true;
    return config;
  }
};

class Monitor : public NetworkFunction {
 public:
  explicit Monitor(std::string name = "monitor") : Monitor({}, std::move(name)) {}
  Monitor(MonitorConfig config, std::string name);

  void process(net::Packet& packet, core::SpeedyBoxContext* ctx) override;
  /// Batched override: a stateless pre-pass parses every packet, hashes its
  /// five-tuple once, and prefetches the sketch rows the accounting pass
  /// will increment (heavy() rows exceed cache). Recording slots fall back
  /// to the scalar path. Byte- and state-identical to per-packet process().
  void process_batch(net::PacketBatch& batch,
                     std::span<core::SpeedyBoxContext* const> ctxs) override;
  std::unique_ptr<NetworkFunction> clone() const override {
    return std::make_unique<Monitor>(config_, name());
  }

  // Migration payload: the flow's packet/byte counters. Export MOVES the
  // entry out of counters_ (unlike every other NF) so the cross-shard union
  // of counter maps remains a partition of what a global instance would
  // hold — the §VII-C-3 audit comparison. Aggregates (totals, sketch, port
  // stats, payload histogram) are shard-local and not migrated.
  bool supports_flow_migration() const override { return true; }
  std::optional<std::vector<std::uint8_t>> export_flow_state(
      const net::FiveTuple& tuple) override;
  void import_flow_state(const net::FiveTuple& tuple,
                         std::span<const std::uint8_t> bytes,
                         core::SpeedyBoxContext* ctx) override;

  // Counters survive flow teardown: they are the audit state (§VII-C-3).
  // The container itself is private (ISSUE 9 API redesign) — callers get a
  // per-flow lookup and an iteration view, never the table type.

  /// Number of flows with audit counters.
  std::size_t flow_count() const noexcept { return counters_.size(); }
  /// The flow's counters, or nullptr when the monitor has none for it.
  const FlowCounters* counters_of(const net::FiveTuple& tuple) const {
    return counters_.find(tuple);
  }
  /// Visit every (tuple, counters) pair, in no particular order.
  template <class F>
  void for_each_flow(F&& fn) const {
    counters_.for_each(
        [&fn](const net::FiveTuple& tuple, const FlowCounters& counters) {
          fn(tuple, counters);
        });
  }

  core::FlowTableStats flow_state_stats() const override {
    return counters_.stats();
  }

  std::uint64_t total_packets() const noexcept { return total_packets_; }
  std::uint64_t total_bytes() const noexcept { return total_bytes_; }

  /// Count-min sketch estimate of a flow's byte volume (0 when disabled).
  std::uint64_t estimate_flow_bytes(const net::FiveTuple& tuple) const;
  /// Bytes seen toward a destination port (0 when per-port stats disabled).
  std::uint64_t port_bytes(std::uint16_t dst_port) const;
  /// Payload byte-value histogram (empty when disabled) — audit state.
  const std::vector<std::uint64_t>& payload_histogram() const noexcept {
    return byte_histogram_;
  }

 private:
  void account(const core::HashedTuple& flow, const net::Packet& packet,
               const net::ParsedPacket& parsed);
  /// Record the flow's forward action + counting state function through the
  /// context — shared by the initial-packet path and flow-state import.
  void record(const core::HashedTuple& flow, core::SpeedyBoxContext& ctx);

  MonitorConfig config_;
  FlowStateTable<FlowCounters> counters_;
  std::uint64_t total_packets_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::vector<std::vector<std::uint64_t>> sketch_;  // depth x width
  std::vector<std::uint64_t> port_bytes_;  // 65536 entries when enabled
  std::vector<std::uint64_t> byte_histogram_;  // 256 entries when enabled
};

}  // namespace speedybox::nf
