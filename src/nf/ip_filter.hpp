// IPFilter (§VI-C): a Click-IPFilter-style firewall. Parses flow headers and
// checks them against an ACL with linear scanning; blacklisted flows get a
// drop action, others forward. Like real firewalls, the verdict is cached
// per flow, so the linear scan is an initial-packet cost (the
// "initialization processes (e.g., linear matching of ACL lists for new
// flows)" of Fig. 4) and subsequent baseline packets pay parse + flow-cache
// lookup — exactly the per-NF work the SpeedyBox fast path eliminates.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "nf/flow_state.hpp"
#include "nf/network_function.hpp"

namespace speedybox::nf {

/// One ACL entry. Prefix match on IPs, inclusive ranges on ports, optional
/// protocol. First matching rule wins.
struct AclRule {
  net::Ipv4Addr src_prefix;
  std::uint8_t src_prefix_len = 0;  // 0 = any
  net::Ipv4Addr dst_prefix;
  std::uint8_t dst_prefix_len = 0;  // 0 = any
  std::uint16_t sport_lo = 0, sport_hi = 0xFFFF;
  std::uint16_t dport_lo = 0, dport_hi = 0xFFFF;
  std::optional<std::uint8_t> proto;
  bool drop = true;

  bool matches(const net::FiveTuple& tuple) const noexcept;

  /// Convenience constructors for the common cases.
  static AclRule drop_dst_port(std::uint16_t port);
  static AclRule drop_src_ip(net::Ipv4Addr ip);
  static AclRule drop_dst_prefix(net::Ipv4Addr prefix, std::uint8_t len);
  static AclRule allow_all();
};

class IpFilter : public NetworkFunction {
 public:
  explicit IpFilter(std::vector<AclRule> acl, std::string name = "ipfilter");

  void process(net::Packet& packet, core::SpeedyBoxContext* ctx) override;
  /// Batched override: parse + validate + tuple extraction hoisted into a
  /// pre-pass that streams the ACL into cache; verdict lookups, cache
  /// mutations and drops run in slot order (FIN-erase then same-tuple
  /// re-scan interactions stay exactly as scalar).
  void process_batch(net::PacketBatch& batch,
                     std::span<core::SpeedyBoxContext* const> ctxs) override;
  void on_flow_teardown(const net::FiveTuple& tuple) override;
  std::unique_ptr<NetworkFunction> clone() const override {
    return std::make_unique<IpFilter>(acl_, name());
  }

  // Migration payload: the cached verdict, so the destination replica never
  // re-scans the ACL for an established flow.
  bool supports_flow_migration() const override { return true; }
  std::optional<std::vector<std::uint8_t>> export_flow_state(
      const net::FiveTuple& tuple) override;
  void import_flow_state(const net::FiveTuple& tuple,
                         std::span<const std::uint8_t> bytes,
                         core::SpeedyBoxContext* ctx) override;

  std::uint64_t drops() const noexcept { return drops_; }
  std::size_t cached_flows() const noexcept { return verdict_cache_.size(); }

  core::FlowTableStats flow_state_stats() const override {
    return verdict_cache_.stats();
  }

 private:
  bool lookup_acl(const net::FiveTuple& tuple) const noexcept;  // true=drop

  std::vector<AclRule> acl_;
  FlowStateTable<bool> verdict_cache_;  // true = drop
  std::uint64_t drops_ = 0;
};

}  // namespace speedybox::nf
