// Maglev-style load balancer NF (§VI-C).
//
// Distributes flows across backends with the Maglev consistent-hashing
// table and tracks connections so established flows stick to their backend.
// Fault tolerance is the paper's canonical *event* example: when a backend
// fails, established flows pinned to it are rerouted (consistent hashing
// over the rebuilt table), which on the SpeedyBox path fires a registered
// event that swaps the flow's modify(DIP, DPort) header actions and
// re-consolidates the fast path (§V-A Observation 2).
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "nf/flow_state.hpp"
#include "nf/maglev_hash.hpp"
#include "nf/network_function.hpp"

namespace speedybox::nf {

struct Backend {
  std::string name;
  net::Ipv4Addr ip;
  std::uint16_t port = 0;
  bool healthy = true;
};

class MaglevLb : public NetworkFunction {
 public:
  MaglevLb(std::vector<Backend> backends, std::size_t table_size = 65537,
           std::string name = "maglev");

  void process(net::Packet& packet, core::SpeedyBoxContext* ctx) override;
  void on_flow_teardown(const net::FiveTuple& tuple) override;
  /// Replicas copy the backend set (including current health) and rebuild
  /// the Maglev table; assignment is a pure function of tuple + table, so
  /// every replica steers a flow to the same backend.
  std::unique_ptr<NetworkFunction> clone() const override {
    return std::make_unique<MaglevLb>(backends_, table_size_, name());
  }

  // Migration payload: the flow's current backend index. Connection
  // stickiness survives migration (the §VII-C comparison state); per-backend
  // byte totals are shard-local aggregates and are not migrated.
  bool supports_flow_migration() const override { return true; }
  std::optional<std::vector<std::uint8_t>> export_flow_state(
      const net::FiveTuple& tuple) override;
  void import_flow_state(const net::FiveTuple& tuple,
                         std::span<const std::uint8_t> bytes,
                         core::SpeedyBoxContext* ctx) override;

  /// Control plane: health transitions rebuild the lookup table over the
  /// surviving backends (what Maglev's health checker does).
  void fail_backend(std::size_t index);
  void heal_backend(std::size_t index);

  const std::vector<Backend>& backends() const noexcept { return backends_; }
  /// Current backend of a tracked flow; nullopt if untracked.
  std::optional<std::size_t> backend_of(const net::FiveTuple& tuple) const;
  /// Bytes steered to each backend (state the §VII-C test compares).
  /// Returns a reference: only inspect while the NF is quiescent.
  const std::vector<std::uint64_t>& bytes_per_backend() const noexcept {
    return bytes_;
  }
  std::uint64_t reroutes() const {
    const std::lock_guard lock(mutex_);
    return reroutes_;
  }
  std::size_t tracked_flows() const {
    const std::lock_guard lock(mutex_);
    return conn_track_.size();
  }

  core::FlowTableStats flow_state_stats() const override {
    const std::lock_guard lock(mutex_);
    return conn_track_.stats();
  }

 private:
  void rebuild_table();
  std::size_t assign(const core::HashedTuple& flow);
  /// Ensure the flow's backend is healthy, rerouting if not. Returns the
  /// (possibly new) backend index.
  std::size_t ensure_healthy(const core::HashedTuple& flow);
  std::vector<core::HeaderAction> actions_for(std::size_t backend) const;

  /// Guards conn_track_, backends_, table_, bytes_ and reroutes_. Unlike
  /// most NF-internal state (single-owner by the concurrency contract),
  /// this NF deliberately shares its connection table with the failover
  /// event lambdas, which the Global MAT's event check runs on the
  /// *manager* core while the data path and teardown hooks run on the NF's
  /// own core. Never held across a SpeedyBoxContext call — the Event Table
  /// invokes condition lambdas under its own mutex, so holding this lock
  /// while registering an event would invert the lock order.
  mutable std::mutex mutex_;
  std::vector<Backend> backends_;
  std::size_t table_size_;
  std::optional<MaglevTable> table_;
  FlowStateTable<std::size_t> conn_track_;  // flow -> backend index
  std::vector<std::uint64_t> bytes_;
  std::uint64_t reroutes_ = 0;
};

}  // namespace speedybox::nf
