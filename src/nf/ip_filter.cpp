#include "nf/ip_filter.hpp"

#include "nf/flow_state.hpp"
#include "util/prefetch.hpp"

namespace speedybox::nf {
namespace {

bool prefix_match(net::Ipv4Addr addr, net::Ipv4Addr prefix,
                  std::uint8_t len) noexcept {
  if (len == 0) return true;
  const std::uint32_t mask =
      len >= 32 ? ~0u : ~((1u << (32 - len)) - 1);
  return (addr.value & mask) == (prefix.value & mask);
}

}  // namespace

bool AclRule::matches(const net::FiveTuple& tuple) const noexcept {
  if (proto && *proto != tuple.proto) return false;
  if (!prefix_match(tuple.src_ip, src_prefix, src_prefix_len)) return false;
  if (!prefix_match(tuple.dst_ip, dst_prefix, dst_prefix_len)) return false;
  if (tuple.src_port < sport_lo || tuple.src_port > sport_hi) return false;
  if (tuple.dst_port < dport_lo || tuple.dst_port > dport_hi) return false;
  return true;
}

AclRule AclRule::drop_dst_port(std::uint16_t port) {
  AclRule rule;
  rule.dport_lo = rule.dport_hi = port;
  rule.drop = true;
  return rule;
}

AclRule AclRule::drop_src_ip(net::Ipv4Addr ip) {
  AclRule rule;
  rule.src_prefix = ip;
  rule.src_prefix_len = 32;
  rule.drop = true;
  return rule;
}

AclRule AclRule::drop_dst_prefix(net::Ipv4Addr prefix, std::uint8_t len) {
  AclRule rule;
  rule.dst_prefix = prefix;
  rule.dst_prefix_len = len;
  rule.drop = true;
  return rule;
}

AclRule AclRule::allow_all() {
  AclRule rule;
  rule.drop = false;
  return rule;
}

IpFilter::IpFilter(std::vector<AclRule> acl, std::string name)
    : NetworkFunction(std::move(name)), acl_(std::move(acl)) {}

bool IpFilter::lookup_acl(const net::FiveTuple& tuple) const noexcept {
  // Linear scan, first match wins (Click IPFilter semantics); default allow.
  for (const AclRule& rule : acl_) {
    if (rule.matches(tuple)) return rule.drop;
  }
  return false;
}

void IpFilter::process(net::Packet& packet, core::SpeedyBoxContext* ctx) {
  count_packet();
  const auto parsed = parse_and_check(packet);  // R1: per-NF parse+validate
  if (!parsed) {
    ++drops_;
    return;
  }
  const auto flow =
      core::HashedTuple::of(net::extract_five_tuple(packet, *parsed));

  // One hash serves the verdict lookup, the insert and the FIN/RST erase.
  auto [verdict, missed] = verdict_cache_.try_emplace(flow.tuple, flow.hash);
  if (missed) *verdict = lookup_acl(flow.tuple);  // initial-packet scan
  const bool drop = *verdict;

  if (ctx != nullptr) {
    ctx->add_header_action(drop ? core::HeaderAction::drop()
                                : core::HeaderAction::forward());
    const net::FiveTuple key = flow.tuple;
    ctx->on_teardown([this, key]() { verdict_cache_.erase(key); });
  }

  if (drop) {
    packet.mark_dropped();
    ++drops_;
  }
  if (parsed->has_fin_or_rst()) verdict_cache_.erase(flow.tuple, flow.hash);
}

void IpFilter::process_batch(net::PacketBatch& batch,
                             std::span<core::SpeedyBoxContext* const> ctxs) {
  // Pre-pass: parse + validate (stateless beyond the per-packet drop flag)
  // and stream the ACL rules into cache for the miss-path linear scans.
  struct Live {
    std::size_t slot;
    core::HashedTuple flow;
    bool fin_or_rst;
  };
  std::vector<Live> live;
  live.reserve(batch.size());
  for (const AclRule& rule : acl_) util::prefetch_read(&rule);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!batch.valid(i)) continue;
    core::SpeedyBoxContext* ctx = ctxs.empty() ? nullptr : ctxs[i];
    if (ctx != nullptr) {
      // Recording stays scalar (DESIGN.md §8).
      process(batch.packet(i), ctx);
      if (batch.packet(i).dropped()) batch.mask(i);
      continue;
    }
    net::Packet& packet = batch.packet(i);
    count_packet();
    const auto parsed = parse_and_check(packet);
    if (!parsed) {
      ++drops_;
      batch.mask(i);
      continue;
    }
    const auto flow = core::HashedTuple::of(
        net::extract_five_tuple(packet, *parsed));
    verdict_cache_.prefetch(flow.hash);
    live.push_back({i, flow, parsed->has_fin_or_rst()});
  }
  // Stateful pass in slot order: verdict cache hits/misses, drops, and the
  // FIN/RST cache erase interleave exactly as the scalar loop would — a
  // teardown followed by a same-tuple packet in one batch re-scans the ACL.
  for (const Live& entry : live) {
    auto [verdict, missed] =
        verdict_cache_.try_emplace(entry.flow.tuple, entry.flow.hash);
    if (missed) *verdict = lookup_acl(entry.flow.tuple);
    if (*verdict) {
      batch.packet(entry.slot).mark_dropped();
      ++drops_;
      batch.mask(entry.slot);
    }
    if (entry.fin_or_rst) {
      verdict_cache_.erase(entry.flow.tuple, entry.flow.hash);
    }
  }
}

void IpFilter::on_flow_teardown(const net::FiveTuple& tuple) {
  verdict_cache_.erase(tuple);
}

std::optional<std::vector<std::uint8_t>> IpFilter::export_flow_state(
    const net::FiveTuple& tuple) {
  return verdict_cache_.export_state(tuple);
}

void IpFilter::import_flow_state(const net::FiveTuple& tuple,
                                 std::span<const std::uint8_t> bytes,
                                 core::SpeedyBoxContext* ctx) {
  const bool drop = verdict_cache_.import_state(tuple, bytes);
  if (ctx != nullptr) {
    ctx->add_header_action(drop ? core::HeaderAction::drop()
                                : core::HeaderAction::forward());
    const net::FiveTuple key = tuple;
    ctx->on_teardown([this, key]() { verdict_cache_.erase(key); });
  }
}

}  // namespace speedybox::nf
