// Snort rule model + parser.
//
// We support the core of Snort's rule language used by content rules:
//
//   <action> <proto> <src> <sport> -> <dst> <dport>
//       (content:"..."; [nocase;] [offset:N;] [depth:N;]
//        [content:"..."; ...] msg:"..."; sid:N;)
//
// where action ∈ {pass, alert, log} (the three inspection outcomes the
// paper's §VII-C equivalence test covers), proto ∈ {tcp, udp, ip}, and
// src/dst/sport/dport are either `any` or a literal value. Every content
// match must succeed for the rule to fire. Content modifiers follow Snort
// semantics: `nocase` makes the match case-insensitive; `offset`/`depth`
// constrain where in the payload the content may *start* (depth counts
// bytes searched from the offset).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/five_tuple.hpp"

namespace speedybox::nf {

enum class SnortAction : std::uint8_t { kPass, kAlert, kLog };

std::string_view snort_action_name(SnortAction action) noexcept;

/// One content option with its modifiers.
struct ContentMatch {
  std::string pattern;
  bool nocase = false;
  /// Earliest payload byte the match may start at.
  std::size_t offset = 0;
  /// Number of bytes (from `offset`) within which the match must start;
  /// nullopt = unbounded.
  std::optional<std::size_t> depth;

  /// Whether a match ending at payload position `end` (exclusive) with this
  /// pattern's length satisfies the positional constraints.
  bool position_ok(std::size_t end) const noexcept {
    const std::size_t start = end - pattern.size();
    if (start < offset) return false;
    if (depth && start >= offset + *depth) return false;
    return true;
  }

  friend bool operator==(const ContentMatch&, const ContentMatch&) = default;
};

struct SnortRule {
  std::uint32_t sid = 0;
  SnortAction action = SnortAction::kAlert;
  std::optional<net::IpProto> proto;          // nullopt = ip (any)
  std::optional<net::Ipv4Addr> src_ip;        // nullopt = any
  std::optional<net::Ipv4Addr> dst_ip;        // nullopt = any
  std::optional<std::uint16_t> src_port;      // nullopt = any
  std::optional<std::uint16_t> dst_port;      // nullopt = any
  std::vector<ContentMatch> contents;         // all must match
  std::string msg;

  /// Header-level predicate (ports/IPs/proto), payload not considered.
  bool header_matches(const net::FiveTuple& tuple) const noexcept;
};

/// Parse one rule line. Returns nullopt (and sets *error when non-null) on
/// malformed input.
std::optional<SnortRule> parse_snort_rule(std::string_view line,
                                          std::string* error = nullptr);

/// Parse a rule file body: one rule per line, '#' comments and blank lines
/// skipped. Throws std::invalid_argument on the first malformed rule.
std::vector<SnortRule> parse_snort_rules(std::string_view text);

/// Parse dotted-quad "a.b.c.d"; nullopt on malformed input.
std::optional<net::Ipv4Addr> parse_ipv4(std::string_view text) noexcept;

/// The default rule set used by examples/benchmarks and the NF registry's
/// `snort` factory: pass, alert and log rules covering all three Snort
/// inspection outcomes (§VII-C-1). trace::default_snort_rules() forwards
/// here so the workload synthesizer plants the same contents.
std::vector<SnortRule> default_snort_rules();

}  // namespace speedybox::nf
