#include "nf/snort_rule.hpp"

#include <charconv>
#include <stdexcept>

namespace speedybox::nf {
namespace {

std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Pop the next whitespace-delimited token from *s.
std::string_view next_token(std::string_view* s) noexcept {
  *s = trim(*s);
  std::size_t end = 0;
  while (end < s->size() && (*s)[end] != ' ' && (*s)[end] != '\t') ++end;
  const std::string_view token = s->substr(0, end);
  s->remove_prefix(end);
  return token;
}

bool parse_u32(std::string_view text, std::uint32_t* out) noexcept {
  const auto result =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return result.ec == std::errc{} && result.ptr == text.data() + text.size();
}

bool set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

bool parse_header(std::string_view* rest, SnortRule* rule,
                  std::string* error) {
  const std::string_view proto = next_token(rest);
  if (proto == "tcp") {
    rule->proto = net::IpProto::kTcp;
  } else if (proto == "udp") {
    rule->proto = net::IpProto::kUdp;
  } else if (proto == "ip") {
    rule->proto = std::nullopt;
  } else {
    return set_error(error, "unknown protocol '" + std::string(proto) + "'");
  }

  const auto parse_addr = [&](std::string_view token,
                              std::optional<net::Ipv4Addr>* out) {
    if (token == "any") {
      out->reset();
      return true;
    }
    const auto addr = parse_ipv4(token);
    if (!addr) return false;
    *out = *addr;
    return true;
  };
  const auto parse_port = [&](std::string_view token,
                              std::optional<std::uint16_t>* out) {
    if (token == "any") {
      out->reset();
      return true;
    }
    std::uint32_t value = 0;
    if (!parse_u32(token, &value) || value > 0xFFFF) return false;
    *out = static_cast<std::uint16_t>(value);
    return true;
  };

  if (!parse_addr(next_token(rest), &rule->src_ip)) {
    return set_error(error, "bad source address");
  }
  if (!parse_port(next_token(rest), &rule->src_port)) {
    return set_error(error, "bad source port");
  }
  if (next_token(rest) != "->") {
    return set_error(error, "expected '->'");
  }
  if (!parse_addr(next_token(rest), &rule->dst_ip)) {
    return set_error(error, "bad destination address");
  }
  if (!parse_port(next_token(rest), &rule->dst_port)) {
    return set_error(error, "bad destination port");
  }
  return true;
}

bool parse_options(std::string_view body, SnortRule* rule,
                   std::string* error) {
  // body is the text inside ( ... ): semicolon-separated key:value options.
  while (true) {
    body = trim(body);
    if (body.empty()) break;
    const std::size_t semi = body.find(';');
    if (semi == std::string_view::npos) {
      return set_error(error, "option missing ';'");
    }
    const std::string_view option = trim(body.substr(0, semi));
    body.remove_prefix(semi + 1);
    if (option.empty()) continue;

    const std::size_t colon = option.find(':');
    if (colon == std::string_view::npos) {
      // Flag-style option (e.g. "nocase").
      if (option == "nocase") {
        if (rule->contents.empty()) {
          return set_error(error, "nocase without a preceding content");
        }
        rule->contents.back().nocase = true;
      }
      continue;  // unknown flag options tolerated
    }
    const std::string_view key = trim(option.substr(0, colon));
    std::string_view value = trim(option.substr(colon + 1));

    if (key == "content" || key == "msg") {
      if (value.size() < 2 || value.front() != '"' || value.back() != '"') {
        return set_error(error, std::string(key) + " must be quoted");
      }
      value = value.substr(1, value.size() - 2);
      if (key == "content") {
        if (value.empty()) return set_error(error, "empty content");
        ContentMatch content;
        content.pattern = std::string(value);
        rule->contents.push_back(std::move(content));
      } else {
        rule->msg = std::string(value);
      }
    } else if (key == "sid") {
      if (!parse_u32(value, &rule->sid)) {
        return set_error(error, "bad sid");
      }
    } else if (key == "offset" || key == "depth") {
      // Content modifiers apply to the most recent content option.
      if (rule->contents.empty()) {
        return set_error(error,
                         std::string(key) + " without a preceding content");
      }
      std::uint32_t number = 0;
      if (!parse_u32(value, &number)) {
        return set_error(error, "bad " + std::string(key));
      }
      if (key == "offset") {
        rule->contents.back().offset = number;
      } else {
        if (number == 0) return set_error(error, "depth must be positive");
        rule->contents.back().depth = number;
      }
    } else {
      // Unknown options (rev, classtype, ...) are tolerated and ignored,
      // like Snort does for options it can't use for detection.
    }
  }
  return true;
}


}  // namespace

std::string_view snort_action_name(SnortAction action) noexcept {
  switch (action) {
    case SnortAction::kPass: return "pass";
    case SnortAction::kAlert: return "alert";
    case SnortAction::kLog: return "log";
  }
  return "?";
}

bool SnortRule::header_matches(const net::FiveTuple& tuple) const noexcept {
  if (proto && static_cast<std::uint8_t>(*proto) != tuple.proto) return false;
  if (src_ip && *src_ip != tuple.src_ip) return false;
  if (dst_ip && *dst_ip != tuple.dst_ip) return false;
  if (src_port && *src_port != tuple.src_port) return false;
  if (dst_port && *dst_port != tuple.dst_port) return false;
  return true;
}

std::optional<net::Ipv4Addr> parse_ipv4(std::string_view text) noexcept {
  std::uint32_t value = 0;
  int octets = 0;
  while (octets < 4) {
    std::uint32_t octet = 0;
    const std::size_t dot = text.find('.');
    const std::string_view part =
        dot == std::string_view::npos ? text : text.substr(0, dot);
    if (!parse_u32(part, &octet) || octet > 255) return std::nullopt;
    value = (value << 8) | octet;
    ++octets;
    if (dot == std::string_view::npos) {
      text = {};
      break;
    }
    text.remove_prefix(dot + 1);
  }
  if (octets != 4 || !text.empty()) return std::nullopt;
  return net::Ipv4Addr{value};
}

std::optional<SnortRule> parse_snort_rule(std::string_view line,
                                          std::string* error) {
  SnortRule rule;
  std::string_view rest = trim(line);

  const std::string_view action = next_token(&rest);
  if (action == "pass") {
    rule.action = SnortAction::kPass;
  } else if (action == "alert") {
    rule.action = SnortAction::kAlert;
  } else if (action == "log") {
    rule.action = SnortAction::kLog;
  } else {
    set_error(error, "unknown action '" + std::string(action) + "'");
    return std::nullopt;
  }

  if (!parse_header(&rest, &rule, error)) return std::nullopt;

  rest = trim(rest);
  if (rest.size() < 2 || rest.front() != '(' || rest.back() != ')') {
    set_error(error, "missing option body '(...)'");
    return std::nullopt;
  }
  if (!parse_options(rest.substr(1, rest.size() - 2), &rule, error)) {
    return std::nullopt;
  }
  if (rule.contents.empty()) {
    set_error(error, "rule has no content option");
    return std::nullopt;
  }
  return rule;
}

std::vector<SnortRule> parse_snort_rules(std::string_view text) {
  std::vector<SnortRule> rules;
  while (!text.empty()) {
    const std::size_t newline = text.find('\n');
    const std::string_view line =
        newline == std::string_view::npos ? text : text.substr(0, newline);
    text.remove_prefix(newline == std::string_view::npos ? text.size()
                                                         : newline + 1);
    const std::string_view trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    std::string error;
    auto rule = parse_snort_rule(trimmed, &error);
    if (!rule) {
      throw std::invalid_argument("bad snort rule: " + error + " in '" +
                                  std::string(trimmed) + "'");
    }
    rules.push_back(std::move(*rule));
  }
  return rules;
}

std::vector<SnortRule> default_snort_rules() {
  return parse_snort_rules(R"(
# Alert rules: exploit signatures.
alert tcp any any -> any 80 (content:"cmd.exe"; msg:"win shell probe"; sid:1001;)
alert tcp any any -> any 80 (content:"/etc/passwd"; msg:"path traversal"; sid:1002;)
alert tcp any any -> any any (content:"SELECT"; content:"UNION"; msg:"sql injection"; sid:1003;)
alert tcp any any -> any 80 (content:"ADMIN"; nocase; msg:"admin probe"; sid:1004;)
# Log rules: suspicious but not alert-worthy.
log tcp any any -> any 80 (content:"wget http"; msg:"downloader"; sid:2001;)
log tcp any any -> any any (content:"base64,"; msg:"encoded blob"; sid:2002;)
log tcp any any -> any any (content:"POST /upload"; offset:0; depth:128; msg:"upload"; sid:2003;)
# Pass rule: whitelisted health checks.
pass tcp any any -> any 80 (content:"GET /healthz"; msg:"health check"; sid:3001;)
)");
}

}  // namespace speedybox::nf
