#include "nf/aho_corasick.hpp"

#include <algorithm>
#include <queue>

namespace speedybox::nf {

void AhoCorasick::add_pattern(std::string_view pattern, std::uint32_t id) {
  if (pattern.empty()) return;
  built_ = false;
  std::int32_t node = 0;
  for (const char c : pattern) {
    const auto byte = static_cast<std::uint8_t>(c);
    if (nodes_[static_cast<std::size_t>(node)].next[byte] < 0) {
      nodes_[static_cast<std::size_t>(node)].next[byte] =
          static_cast<std::int32_t>(nodes_.size());
      nodes_.emplace_back();
    }
    node = nodes_[static_cast<std::size_t>(node)].next[byte];
  }
  nodes_[static_cast<std::size_t>(node)].outputs.push_back(id);
  ++pattern_count_;
}

void AhoCorasick::build() {
  if (built_) return;
  std::queue<std::int32_t> queue;
  // Root's missing transitions loop back to root.
  for (int c = 0; c < 256; ++c) {
    std::int32_t& next = nodes_[0].next[static_cast<std::size_t>(c)];
    if (next < 0) {
      next = 0;
    } else {
      nodes_[static_cast<std::size_t>(next)].fail = 0;
      queue.push(next);
    }
  }
  // BFS: fail links + goto completion (full automaton, O(1) per input byte).
  while (!queue.empty()) {
    const std::int32_t u = queue.front();
    queue.pop();
    Node& node_u = nodes_[static_cast<std::size_t>(u)];
    const Node& fail_u = nodes_[static_cast<std::size_t>(node_u.fail)];
    // Inherit outputs along the fail chain.
    node_u.outputs.insert(node_u.outputs.end(), fail_u.outputs.begin(),
                          fail_u.outputs.end());
    for (int c = 0; c < 256; ++c) {
      const std::int32_t v = node_u.next[static_cast<std::size_t>(c)];
      const std::int32_t via_fail = fail_u.next[static_cast<std::size_t>(c)];
      if (v < 0) {
        nodes_[static_cast<std::size_t>(u)].next[static_cast<std::size_t>(c)] =
            via_fail;
      } else {
        nodes_[static_cast<std::size_t>(v)].fail = via_fail;
        queue.push(v);
      }
    }
  }
  built_ = true;
}

void AhoCorasick::match(
    std::span<const std::uint8_t> text,
    const std::function<void(std::uint32_t, std::size_t)>& on_match) const {
  std::int32_t node = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    node = nodes_[static_cast<std::size_t>(node)].next[text[i]];
    for (const std::uint32_t id :
         nodes_[static_cast<std::size_t>(node)].outputs) {
      on_match(id, i + 1);
    }
  }
}

std::vector<std::uint32_t> AhoCorasick::match_ids(
    std::span<const std::uint8_t> text) const {
  std::vector<std::uint32_t> ids;
  match(text, [&ids](std::uint32_t id, std::size_t) { ids.push_back(id); });
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

bool AhoCorasick::contains_any(std::span<const std::uint8_t> text) const {
  std::int32_t node = 0;
  for (const std::uint8_t byte : text) {
    node = nodes_[static_cast<std::size_t>(node)].next[byte];
    if (!nodes_[static_cast<std::size_t>(node)].outputs.empty()) return true;
  }
  return false;
}

}  // namespace speedybox::nf
