// L3 gateway (§IV-A's "Gateways" NF class — conferencing/media/voice
// gateways are the single largest middlebox category in the enterprise
// survey the paper builds on): routes flows between segments, decrementing
// the TTL like any L3 hop and stamping a DSCP traffic class chosen from a
// per-port classification table (voice/video/best-effort). Pure
// header-action NF: two modifies per flow.
#pragma once

#include <cstdint>
#include <vector>

#include "nf/network_function.hpp"

namespace speedybox::nf {

struct TrafficClass {
  std::uint16_t dport_lo = 0;
  std::uint16_t dport_hi = 0xFFFF;
  std::uint8_t dscp = 0;  // 6-bit DSCP, stored in TOS[7:2]
};

class Gateway : public NetworkFunction {
 public:
  /// First matching traffic class wins; unmatched flows keep DSCP 0
  /// (best effort).
  explicit Gateway(std::vector<TrafficClass> classes,
                   std::string name = "gateway");

  void process(net::Packet& packet, core::SpeedyBoxContext* ctx) override;
  std::unique_ptr<NetworkFunction> clone() const override {
    return std::make_unique<Gateway>(classes_, name());
  }

  std::uint64_t routed() const noexcept { return routed_; }
  std::uint64_t ttl_expired() const noexcept { return ttl_expired_; }

 private:
  std::uint8_t classify_dscp(const net::FiveTuple& tuple) const noexcept;

  std::vector<TrafficClass> classes_;
  std::uint64_t routed_ = 0;
  std::uint64_t ttl_expired_ = 0;
};

}  // namespace speedybox::nf
