#include "nf/monitor.hpp"

#include <algorithm>

#include "nf/flow_state.hpp"
#include "util/hash.hpp"
#include "util/prefetch.hpp"

namespace speedybox::nf {

Monitor::Monitor(MonitorConfig config, std::string name)
    : NetworkFunction(std::move(name)), config_(config) {
  sketch_.assign(config_.sketch_depth,
                 std::vector<std::uint64_t>(config_.sketch_width, 0));
  if (config_.per_port_stats) port_bytes_.assign(65536, 0);
  if (config_.payload_histogram) byte_histogram_.assign(256, 0);
}

void Monitor::account(const core::HashedTuple& flow, const net::Packet& packet,
                      const net::ParsedPacket& parsed) {
  // The tuple was hashed exactly once upstream; the same hash indexes the
  // flow table and every sketch row.
  FlowCounters& counters = *counters_.try_emplace(flow.tuple, flow.hash).first;
  ++counters.packets;
  counters.bytes += packet.size();
  ++total_packets_;
  total_bytes_ += packet.size();

  if (config_.sketch_depth > 0) {
    const std::uint64_t h = flow.hash.value;
    for (std::uint32_t row = 0; row < config_.sketch_depth; ++row) {
      const std::uint64_t index =
          util::mix64(h ^ (0x9E3779B97F4A7C15ULL * (row + 1))) %
          config_.sketch_width;
      sketch_[row][index] += packet.size();
    }
  }
  if (config_.per_port_stats) {
    port_bytes_[flow.tuple.dst_port] += packet.size();
  }
  if (config_.payload_histogram) {
    for (const std::uint8_t byte : net::payload_view(packet, parsed)) {
      ++byte_histogram_[byte];
    }
  }
}

void Monitor::process_batch(net::PacketBatch& batch,
                            std::span<core::SpeedyBoxContext* const> ctxs) {
  // Pre-pass (stateless, so hoisting it out of slot order cannot change
  // behavior): parse + validate every live packet, extract its five-tuple,
  // and prefetch the sketch cells the accounting pass will increment.
  // Everything stateful — counter updates, map insertions — runs in slot
  // order in the second pass, keeping the batch bit-identical to scalar.
  struct Live {
    std::size_t slot;
    net::ParsedPacket parsed;
    core::HashedTuple flow;
  };
  std::vector<Live> live;
  live.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!batch.valid(i)) continue;
    core::SpeedyBoxContext* ctx = ctxs.empty() ? nullptr : ctxs[i];
    if (ctx != nullptr) {
      // Recording stays scalar (DESIGN.md §8): it runs once per flow and
      // its Local MAT writes must interleave exactly as on the scalar path.
      process(batch.packet(i), ctx);
      if (batch.packet(i).dropped()) batch.mask(i);
      continue;
    }
    net::Packet& packet = batch.packet(i);
    count_packet();
    const auto parsed = parse_and_check(packet);
    if (!parsed) {
      batch.mask(i);
      continue;
    }
    const auto flow = core::HashedTuple::of(
        net::extract_five_tuple(packet, *parsed));
    counters_.prefetch(flow.hash);
    if (config_.sketch_depth > 0) {
      const std::uint64_t h = flow.hash.value;
      for (std::uint32_t row = 0; row < config_.sketch_depth; ++row) {
        const std::uint64_t index =
            util::mix64(h ^ (0x9E3779B97F4A7C15ULL * (row + 1))) %
            config_.sketch_width;
        util::prefetch_write(&sketch_[row][index]);
      }
    }
    live.push_back({i, *parsed, flow});
  }
  for (const Live& entry : live) {
    account(entry.flow, batch.packet(entry.slot), entry.parsed);
  }
}

std::uint64_t Monitor::estimate_flow_bytes(const net::FiveTuple& tuple) const {
  if (config_.sketch_depth == 0) return 0;
  const std::uint64_t h = tuple.hash();
  std::uint64_t estimate = ~0ULL;
  for (std::uint32_t row = 0; row < config_.sketch_depth; ++row) {
    const std::uint64_t index =
        util::mix64(h ^ (0x9E3779B97F4A7C15ULL * (row + 1))) %
        config_.sketch_width;
    estimate = std::min(estimate, sketch_[row][index]);
  }
  return estimate;
}

std::uint64_t Monitor::port_bytes(std::uint16_t dst_port) const {
  return config_.per_port_stats ? port_bytes_[dst_port] : 0;
}

void Monitor::process(net::Packet& packet, core::SpeedyBoxContext* ctx) {
  count_packet();
  const auto parsed = parse_and_check(packet);  // R1: per-NF parse+validate
  if (!parsed) return;
  const auto flow =
      core::HashedTuple::of(net::extract_five_tuple(packet, *parsed));

  account(flow, packet, *parsed);

  if (ctx != nullptr) record(flow, *ctx);
}

void Monitor::record(const core::HashedTuple& flow,
                     core::SpeedyBoxContext& ctx) {
  ctx.add_header_action(core::HeaderAction::forward());
  // Figure-2 semantics: the handler is recorded with resolved args — the
  // flow's counter record (slab-resident, pointer-stable across table
  // resizes) and its precomputed sketch/port slots — so the per-packet
  // classification work (hashing, table lookups) happens once, at rule
  // setup.
  FlowCounters* flow_counters =
      counters_.try_emplace(flow.tuple, flow.hash).first;
  std::vector<std::uint64_t*> sketch_cells;
  const std::uint64_t h = flow.hash.value;
  for (std::uint32_t row = 0; row < config_.sketch_depth; ++row) {
    const std::uint64_t index =
        util::mix64(h ^ (0x9E3779B97F4A7C15ULL * (row + 1))) %
        config_.sketch_width;
    sketch_cells.push_back(&sketch_[row][index]);
  }
  std::uint64_t* port_cell =
      config_.per_port_stats ? &port_bytes_[flow.tuple.dst_port] : nullptr;
  const bool histogram = config_.payload_histogram;
  core::localmat_add_SF(
      &ctx,
      [this, flow_counters, sketch_cells = std::move(sketch_cells),
       port_cell, histogram](net::Packet& pkt,
                             const net::ParsedPacket& parsed) {
        const std::uint64_t size = pkt.size();
        ++flow_counters->packets;
        flow_counters->bytes += size;
        ++total_packets_;
        total_bytes_ += size;
        for (std::uint64_t* cell : sketch_cells) *cell += size;
        if (port_cell != nullptr) *port_cell += size;
        if (histogram) {
          for (const std::uint8_t byte : net::payload_view(
                   static_cast<const net::Packet&>(pkt), parsed)) {
            ++byte_histogram_[byte];
          }
        }
      },
      histogram ? core::PayloadAccess::kRead : core::PayloadAccess::kIgnore,
      name() + ".count");
}

std::optional<std::vector<std::uint8_t>> Monitor::export_flow_state(
    const net::FiveTuple& tuple) {
  auto payload = counters_.export_state(tuple);
  // Move semantics (see monitor.hpp): the counters leave with the flow so
  // the shard union stays a partition of the global audit state.
  if (payload) counters_.erase(tuple);
  return payload;
}

void Monitor::import_flow_state(const net::FiveTuple& tuple,
                                std::span<const std::uint8_t> bytes,
                                core::SpeedyBoxContext* ctx) {
  counters_.import_state(tuple, bytes);
  if (ctx != nullptr) record(core::HashedTuple::of(tuple), *ctx);
}

}  // namespace speedybox::nf
