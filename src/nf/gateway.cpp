#include "nf/gateway.hpp"

#include "net/fields.hpp"

namespace speedybox::nf {

Gateway::Gateway(std::vector<TrafficClass> classes, std::string name)
    : NetworkFunction(std::move(name)), classes_(std::move(classes)) {}

std::uint8_t Gateway::classify_dscp(
    const net::FiveTuple& tuple) const noexcept {
  for (const TrafficClass& tc : classes_) {
    if (tuple.dst_port >= tc.dport_lo && tuple.dst_port <= tc.dport_hi) {
      return tc.dscp;
    }
  }
  return 0;
}

void Gateway::process(net::Packet& packet, core::SpeedyBoxContext* ctx) {
  count_packet();
  const auto parsed = parse_and_check(packet);  // R1: per-NF parse+validate
  if (!parsed) return;
  const net::FiveTuple tuple = net::extract_five_tuple(packet, *parsed);

  const std::uint32_t ttl =
      net::get_field(packet, *parsed, net::HeaderField::kTtl);
  if (ttl <= 1) {
    // TTL exhausted at this hop. (No ICMP time-exceeded in this model.)
    packet.mark_dropped();
    ++ttl_expired_;
    if (ctx != nullptr) ctx->add_header_action(core::HeaderAction::drop());
    return;
  }

  // TTL is per-flow constant (all packets of a flow arrive with the sender's
  // initial TTL), so the decremented value is a per-flow absolute write —
  // consolidation-friendly, like any modify.
  const core::HeaderAction ttl_action =
      core::HeaderAction::modify(net::HeaderField::kTtl, ttl - 1);
  const core::HeaderAction dscp_action = core::HeaderAction::modify(
      net::HeaderField::kTos,
      static_cast<std::uint32_t>(classify_dscp(tuple)) << 2);

  core::apply_action_baseline(ttl_action, packet);
  core::apply_action_baseline(dscp_action, packet);
  ++routed_;

  if (ctx != nullptr) {
    ctx->add_header_action(ttl_action);
    ctx->add_header_action(dscp_action);
  }
}

}  // namespace speedybox::nf
