// Byte-oriented helpers for the per-flow state serialization API
// (NetworkFunction::export_flow_state / import_flow_state, DESIGN.md §10).
//
// The encoding is deliberately dumb: fixed-width little-endian integers
// appended in a documented order per NF. A flow-state payload never leaves
// the process (it moves between shard replicas during live resharding), so
// there is no versioning or cross-machine concern — but the encoding is
// still fully deterministic so the migration round-trip unit tests can
// assert export→import→export byte equality.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "net/five_tuple.hpp"

namespace speedybox::nf {

/// Appends fixed-width little-endian fields to a byte payload.
class FlowStateWriter {
 public:
  void u8(std::uint8_t value) { bytes_.push_back(value); }

  void u16(std::uint16_t value) {
    u8(static_cast<std::uint8_t>(value));
    u8(static_cast<std::uint8_t>(value >> 8));
  }

  void u32(std::uint32_t value) {
    u16(static_cast<std::uint16_t>(value));
    u16(static_cast<std::uint16_t>(value >> 16));
  }

  void u64(std::uint64_t value) {
    u32(static_cast<std::uint32_t>(value));
    u32(static_cast<std::uint32_t>(value >> 32));
  }

  void boolean(bool value) { u8(value ? 1 : 0); }

  void tuple(const net::FiveTuple& t) {
    u32(t.src_ip.value);
    u32(t.dst_ip.value);
    u16(t.src_port);
    u16(t.dst_port);
    u8(t.proto);
  }

  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Reads the fields back in the same order; throws on truncation so a
/// malformed payload fails the migration loudly instead of importing
/// garbage flow state.
class FlowStateReader {
 public:
  explicit FlowStateReader(std::span<const std::uint8_t> bytes)
      : bytes_(bytes) {}

  std::uint8_t u8() {
    if (pos_ >= bytes_.size()) {
      throw std::out_of_range("FlowStateReader: truncated flow-state payload");
    }
    return bytes_[pos_++];
  }

  std::uint16_t u16() {
    const std::uint16_t lo = u8();
    return static_cast<std::uint16_t>(lo | (static_cast<std::uint16_t>(u8())
                                            << 8));
  }

  std::uint32_t u32() {
    const std::uint32_t lo = u16();
    return lo | (static_cast<std::uint32_t>(u16()) << 16);
  }

  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    return lo | (static_cast<std::uint64_t>(u32()) << 32);
  }

  bool boolean() { return u8() != 0; }

  net::FiveTuple tuple() {
    net::FiveTuple t;
    t.src_ip = net::Ipv4Addr{u32()};
    t.dst_ip = net::Ipv4Addr{u32()};
    t.src_port = u16();
    t.dst_port = u16();
    t.proto = u8();
    return t;
  }

  bool done() const { return pos_ == bytes_.size(); }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace speedybox::nf
