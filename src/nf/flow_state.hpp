// The per-NF flow-state API (DESIGN.md §10, §13): byte-oriented
// serialization helpers plus the typed state layer every stateful NF
// declares its per-flow state through.
//
// The encoding is deliberately dumb: fixed-width little-endian integers
// appended in a documented order per NF. A flow-state payload never leaves
// the process (it moves between shard replicas during live resharding), so
// there is no versioning or cross-machine concern — but the encoding is
// still fully deterministic so the migration round-trip unit tests can
// assert export→import→export byte equality.
//
// Layered on top:
//
//   * FlowStateTraits<State> — how a state record becomes bytes and back.
//     The default is a straight memcpy of the record image, valid for any
//     trivially-copyable State: records live in zero-filled slab storage
//     (core::SlabArena), so padding bytes are deterministically zero and
//     the raw image round-trips byte-identically. States owning heap data
//     (SnortIds' candidate-rule vector) specialize the traits.
//
//   * FlowStateTable<State> — a FiveTuple-keyed core::FlowTable with the
//     traits applied, collapsing the export_flow_state/import_flow_state
//     writer/reader boilerplate each NF used to hand-roll into
//     export_state()/import_state() on the table itself.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/flow_table.hpp"
#include "net/five_tuple.hpp"

namespace speedybox::nf {

/// Appends fixed-width little-endian fields to a byte payload.
class FlowStateWriter {
 public:
  void u8(std::uint8_t value) { bytes_.push_back(value); }

  void u16(std::uint16_t value) {
    u8(static_cast<std::uint8_t>(value));
    u8(static_cast<std::uint8_t>(value >> 8));
  }

  void u32(std::uint32_t value) {
    u16(static_cast<std::uint16_t>(value));
    u16(static_cast<std::uint16_t>(value >> 16));
  }

  void u64(std::uint64_t value) {
    u32(static_cast<std::uint32_t>(value));
    u32(static_cast<std::uint32_t>(value >> 32));
  }

  void boolean(bool value) { u8(value ? 1 : 0); }

  void tuple(const net::FiveTuple& t) {
    u32(t.src_ip.value);
    u32(t.dst_ip.value);
    u16(t.src_port);
    u16(t.dst_port);
    u8(t.proto);
  }

  /// Raw byte run — the memcpy path FlowStateTraits' default takes for
  /// slab-resident trivially-copyable records.
  void bytes(std::span<const std::uint8_t> data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }

  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Reads the fields back in the same order; throws on truncation so a
/// malformed payload fails the migration loudly instead of importing
/// garbage flow state.
class FlowStateReader {
 public:
  explicit FlowStateReader(std::span<const std::uint8_t> bytes)
      : bytes_(bytes) {}

  std::uint8_t u8() {
    if (pos_ >= bytes_.size()) {
      throw std::out_of_range("FlowStateReader: truncated flow-state payload");
    }
    return bytes_[pos_++];
  }

  std::uint16_t u16() {
    const std::uint16_t lo = u8();
    return static_cast<std::uint16_t>(lo | (static_cast<std::uint16_t>(u8())
                                            << 8));
  }

  std::uint32_t u32() {
    const std::uint32_t lo = u16();
    return lo | (static_cast<std::uint32_t>(u16()) << 16);
  }

  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    return lo | (static_cast<std::uint64_t>(u32()) << 32);
  }

  bool boolean() { return u8() != 0; }

  net::FiveTuple tuple() {
    net::FiveTuple t;
    t.src_ip = net::Ipv4Addr{u32()};
    t.dst_ip = net::Ipv4Addr{u32()};
    t.src_port = u16();
    t.dst_port = u16();
    t.proto = u8();
    return t;
  }

  /// Raw byte run of length n; throws on truncation like the field reads.
  std::span<const std::uint8_t> bytes(std::size_t n) {
    if (pos_ + n > bytes_.size()) {
      throw std::out_of_range("FlowStateReader: truncated flow-state payload");
    }
    const auto run = bytes_.subspan(pos_, n);
    pos_ += n;
    return run;
  }

  bool done() const { return pos_ == bytes_.size(); }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

// --- Typed per-flow state (DESIGN.md §13) ----------------------------------

/// How one NF's per-flow State serializes for migration. The primary
/// template is the memcpy fast path: a trivially-copyable record's slab
/// image IS its wire format (zero-filled padding makes it deterministic).
/// NFs whose state owns heap memory specialize this next to the State type.
template <class State>
struct FlowStateTraits {
  static_assert(std::is_trivially_copyable_v<State>,
                "specialize FlowStateTraits for state that owns heap data");

  static void serialize(const State& state, FlowStateWriter& writer) {
    writer.bytes({reinterpret_cast<const std::uint8_t*>(&state),
                  sizeof(State)});
  }

  static void restore(FlowStateReader& reader, State& state) {
    const auto raw = reader.bytes(sizeof(State));
    std::memcpy(&state, raw.data(), sizeof(State));
  }
};

/// A FiveTuple-keyed flow table with FlowStateTraits applied: the one
/// structure a stateful NF declares, giving it slab-backed stable-address
/// records, pre-hashed lookups, incremental resize, telemetry stats — and
/// export_state()/import_state() in place of hand-rolled writer/reader
/// code in every export_flow_state/import_flow_state override.
template <class State, class Traits = FlowStateTraits<State>>
class FlowStateTable {
 public:
  using Table = core::FlowTable<net::FiveTuple, State>;

  FlowStateTable() = default;
  explicit FlowStateTable(std::size_t expected_flows)
      : table_(expected_flows) {}

  State* find(const net::FiveTuple& tuple) { return table_.find(tuple); }
  const State* find(const net::FiveTuple& tuple) const {
    return table_.find(tuple);
  }
  State* find(const net::FiveTuple& tuple, core::FlowHash hash) {
    return table_.find(tuple, hash);
  }
  const State* find(const net::FiveTuple& tuple, core::FlowHash hash) const {
    return table_.find(tuple, hash);
  }

  /// Find-or-create; the returned pointer is stable until erase (the
  /// recorded-closure capture contract).
  template <class... Args>
  std::pair<State*, bool> try_emplace(const net::FiveTuple& tuple,
                                      Args&&... args) {
    return table_.try_emplace(tuple, std::forward<Args>(args)...);
  }
  template <class... Args>
  std::pair<State*, bool> try_emplace(const net::FiveTuple& tuple,
                                      core::FlowHash hash, Args&&... args) {
    return table_.try_emplace(tuple, hash, std::forward<Args>(args)...);
  }

  bool erase(const net::FiveTuple& tuple) { return table_.erase(tuple); }
  bool erase(const net::FiveTuple& tuple, core::FlowHash hash) {
    return table_.erase(tuple, hash);
  }

  /// Remove the entry and hand its state to the caller — the move-semantics
  /// export (Monitor's counter partition invariant).
  std::optional<State> extract(const net::FiveTuple& tuple) {
    State* state = table_.find(tuple);
    if (state == nullptr) return std::nullopt;
    std::optional<State> out(std::move(*state));
    table_.erase(tuple);
    return out;
  }

  std::size_t size() const noexcept { return table_.size(); }
  bool empty() const noexcept { return table_.empty(); }
  void clear() noexcept { table_.clear(); }
  void reserve(std::size_t expected_flows) { table_.reserve(expected_flows); }
  void prefetch(core::FlowHash hash) const noexcept { table_.prefetch(hash); }

  template <class F>
  void for_each(F&& fn) {
    table_.for_each(std::forward<F>(fn));
  }
  template <class F>
  void for_each(F&& fn) const {
    table_.for_each(std::forward<F>(fn));
  }

  core::FlowTableStats stats() const { return table_.stats(); }

  /// Serialize the flow's state, or nullopt when none is held — the body
  /// of a typical export_flow_state override.
  std::optional<std::vector<std::uint8_t>> export_state(
      const net::FiveTuple& tuple) const {
    const State* state = table_.find(tuple);
    if (state == nullptr) return std::nullopt;
    FlowStateWriter writer;
    Traits::serialize(*state, writer);
    return writer.take();
  }

  /// Restore an exported payload into (find-or-create) the flow's record
  /// and return it for re-recording. Throws on truncated or oversized
  /// payloads so a malformed migration fails loudly.
  State& import_state(const net::FiveTuple& tuple,
                      std::span<const std::uint8_t> bytes) {
    FlowStateReader reader(bytes);
    auto [state, inserted] = table_.try_emplace(tuple);
    try {
      Traits::restore(reader, *state);
      if (!reader.done()) {
        throw std::invalid_argument(
            "FlowStateTable: trailing bytes in flow-state payload");
      }
    } catch (...) {
      // A failed restore must not leave a half-imported record behind.
      if (inserted) table_.erase(tuple);
      throw;
    }
    return *state;
  }

 private:
  Table table_;
};

}  // namespace speedybox::nf
