// Synthetic NF for the state-function-parallelism microbenchmark (Fig. 5):
// "the synthetic NF has no header action, and has one state function that is
// equivalent to the Snort packet inspection (does not modify payload)".
//
// The state-function cost is a real computation over the payload (repeated
// FNV hashing for READ, byte rewriting for WRITE, register arithmetic for
// IGNORE) so measured cycles are genuine work, and the payload-access class
// is configurable to exercise every row of Table I.
#pragma once

#include <cstdint>
#include <optional>

#include "nf/network_function.hpp"

namespace speedybox::nf {

struct SyntheticNfConfig {
  /// Number of passes of the work kernel per packet; scales SF cost.
  std::uint32_t work_iterations = 8;
  core::PayloadAccess access = core::PayloadAccess::kRead;
  /// Optional header action this NF applies/records (none by default,
  /// matching the Fig. 5 setup).
  std::optional<core::HeaderAction> header_action;
};

class SyntheticNf : public NetworkFunction {
 public:
  explicit SyntheticNf(SyntheticNfConfig config = {},
                       std::string name = "synthetic");

  void process(net::Packet& packet, core::SpeedyBoxContext* ctx) override;
  std::unique_ptr<NetworkFunction> clone() const override {
    return std::make_unique<SyntheticNf>(config_, name());
  }

  /// Deterministic digest of all work performed — equal across baseline and
  /// SpeedyBox runs iff the state function executed identically.
  std::uint64_t digest() const noexcept { return digest_; }

 private:
  void run_state_function(net::Packet& packet,
                          const net::ParsedPacket& parsed);

  SyntheticNfConfig config_;
  std::uint64_t digest_ = 0;
};

}  // namespace speedybox::nf
