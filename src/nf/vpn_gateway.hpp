// VPN gateway (§IV-A1's Encap/Decap example): "VPNs add an Authentication
// Header (AH) for each packet before forwarding (encap), and remove the AH
// when the other end receives the packet (decap)".
//
// One NF instance is one tunnel endpoint: kEgress encapsulates every flow
// with an AH carrying a per-flow SPI; kIngress strips the outer AH (and
// verifies the SPI belongs to a known association). A chain containing both
// endpoints (site-to-site through a middle segment) demonstrates the
// consolidation algebra's stack cancellation: encap immediately undone by
// decap vanishes from the fast path entirely.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "nf/network_function.hpp"

namespace speedybox::nf {

enum class VpnMode : std::uint8_t { kEgress, kIngress };

class VpnGateway : public NetworkFunction {
 public:
  /// `spi_base`: per-flow SPIs are allocated sequentially from here, so a
  /// matching ingress endpoint can validate them.
  explicit VpnGateway(VpnMode mode, std::uint32_t spi_base = 0x1000,
                      std::string name = "vpn");

  void process(net::Packet& packet, core::SpeedyBoxContext* ctx) override;
  void on_flow_teardown(const net::FiveTuple& tuple) override;
  /// Replicas restart SPI allocation from spi_base: sharded replicas hand
  /// out overlapping SPI values (each shard is its own tunnel endpoint), so
  /// a sharded VPN chain is semantically equivalent but not byte-identical
  /// to a single global instance.
  std::unique_ptr<NetworkFunction> clone() const override {
    return std::make_unique<VpnGateway>(mode_, spi_base_, name());
  }

  std::size_t active_associations() const noexcept { return spis_.size(); }
  std::uint64_t encapsulated() const noexcept { return encapsulated_; }
  std::uint64_t decapsulated() const noexcept { return decapsulated_; }
  /// Ingress: packets arriving without a (valid) AH are dropped.
  std::uint64_t rejected() const noexcept { return rejected_; }

 private:
  VpnMode mode_;
  std::uint32_t spi_base_;
  std::uint32_t next_spi_;
  std::unordered_map<net::FiveTuple, std::uint32_t, net::FiveTupleHash>
      spis_;
  std::uint64_t encapsulated_ = 0;
  std::uint64_t decapsulated_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace speedybox::nf
