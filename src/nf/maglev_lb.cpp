#include "nf/maglev_lb.hpp"

#include <stdexcept>

#include "net/fields.hpp"
#include "nf/flow_state.hpp"

namespace speedybox::nf {

MaglevLb::MaglevLb(std::vector<Backend> backends, std::size_t table_size,
                   std::string name)
    : NetworkFunction(std::move(name)),
      backends_(std::move(backends)),
      table_size_(table_size),
      bytes_(backends_.size(), 0) {
  if (backends_.empty()) {
    throw std::invalid_argument("MaglevLb needs at least one backend");
  }
  rebuild_table();
}

void MaglevLb::rebuild_table() {
  std::vector<std::string> names;
  std::vector<bool> active;
  names.reserve(backends_.size());
  active.reserve(backends_.size());
  for (const Backend& b : backends_) {
    names.push_back(b.name);
    active.push_back(b.healthy);
  }
  table_.emplace(names, active, table_size_);
}

void MaglevLb::fail_backend(std::size_t index) {
  const std::lock_guard lock(mutex_);
  if (index >= backends_.size() || !backends_[index].healthy) return;
  backends_[index].healthy = false;
  rebuild_table();
}

void MaglevLb::heal_backend(std::size_t index) {
  const std::lock_guard lock(mutex_);
  if (index >= backends_.size() || backends_[index].healthy) return;
  backends_[index].healthy = true;
  rebuild_table();
}

std::size_t MaglevLb::assign(const core::HashedTuple& flow) {
  // The flow hash is computed once per packet and reused for the Maglev
  // table lookup and the connection-tracking insert.
  const std::int32_t backend = table_->lookup(flow.hash.value);
  if (backend < 0) {
    throw std::runtime_error("MaglevLb: no healthy backend");
  }
  *conn_track_.try_emplace(flow.tuple, flow.hash).first =
      static_cast<std::size_t>(backend);
  return static_cast<std::size_t>(backend);
}

std::size_t MaglevLb::ensure_healthy(const core::HashedTuple& flow) {
  const std::size_t* backend = conn_track_.find(flow.tuple, flow.hash);
  if (backend == nullptr) return assign(flow);
  if (!backends_[*backend].healthy) {
    // Failover: re-run consistent hashing over the rebuilt table. This is
    // the behavior the SpeedyBox event expresses on the fast path.
    ++reroutes_;
    return assign(flow);
  }
  return *backend;
}

std::vector<core::HeaderAction> MaglevLb::actions_for(
    std::size_t backend) const {
  const Backend& b = backends_[backend];
  return {
      core::HeaderAction::modify(net::HeaderField::kDstIp, b.ip.value),
      core::HeaderAction::modify(net::HeaderField::kDstPort, b.port),
  };
}

void MaglevLb::process(net::Packet& packet, core::SpeedyBoxContext* ctx) {
  count_packet();
  const auto parsed = parse_and_check(packet);  // R1: per-NF parse+validate
  if (!parsed) return;
  const auto flow =
      core::HashedTuple::of(net::extract_five_tuple(packet, *parsed));
  const net::FiveTuple tuple = flow.tuple;

  std::vector<core::HeaderAction> actions;
  const std::size_t* backend_cell = nullptr;
  {
    const std::lock_guard lock(mutex_);
    const std::size_t backend = ensure_healthy(flow);
    actions = actions_for(backend);
    bytes_[backend] += packet.size();
    backend_cell = conn_track_.find(tuple, flow.hash);
  }
  for (const core::HeaderAction& action : actions) {
    core::apply_action_baseline(action, packet);
  }

  if (ctx != nullptr) {
    for (const core::HeaderAction& action : actions) {
      ctx->add_header_action(action);
    }
    // Per-backend byte accounting as an IGNORE-class state function. The
    // recorded args bind the flow's connection-tracking cell directly
    // (pointer-stable slab record, updated in place on failover), so the
    // handler always charges the *current* backend without a per-packet
    // table lookup.
    core::localmat_add_SF(
        ctx,
        [this, backend_cell](net::Packet& pkt, const net::ParsedPacket&) {
          const std::lock_guard lock(mutex_);
          bytes_[*backend_cell] += pkt.size();
        },
        core::PayloadAccess::kIgnore, name() + ".bytes");
    // The failover event (§V-A Observation 2): when the flow's backend goes
    // unhealthy, reroute and swap the modify actions on the fast path.
    // Persistent, so repeated failures keep being handled, mirroring the
    // per-packet health check of the baseline path. Both lambdas run on
    // the manager core (Global MAT event check) while the data path runs
    // on this NF's core — hence the lock.
    ctx->register_event(
        name() + ".failover",
        [this, tuple]() {
          const std::lock_guard lock(mutex_);
          const std::size_t* backend = conn_track_.find(tuple);
          return backend != nullptr && !backends_[*backend].healthy;
        },
        [this, tuple]() {
          const std::lock_guard lock(mutex_);
          ++reroutes_;
          const std::size_t next = assign(core::HashedTuple::of(tuple));
          core::EventUpdate update;
          update.header_actions = actions_for(next);
          return update;
        },
        /*one_shot=*/false);
    ctx->on_teardown([this, tuple]() {
      const std::lock_guard lock(mutex_);
      conn_track_.erase(tuple);
    });
  }

  // Connection close: release the tracking entry inline on the unrecorded
  // path; the teardown hook handles the recorded path (after the rule
  // whose handler references the tracking cell has been destroyed).
  if (ctx == nullptr && parsed->has_fin_or_rst()) {
    const std::lock_guard lock(mutex_);
    conn_track_.erase(tuple);
  }
}

std::optional<std::size_t> MaglevLb::backend_of(
    const net::FiveTuple& tuple) const {
  const std::lock_guard lock(mutex_);
  const std::size_t* backend = conn_track_.find(tuple);
  if (backend == nullptr) return std::nullopt;
  return *backend;
}

void MaglevLb::on_flow_teardown(const net::FiveTuple& tuple) {
  const std::lock_guard lock(mutex_);
  conn_track_.erase(tuple);
}

std::optional<std::vector<std::uint8_t>> MaglevLb::export_flow_state(
    const net::FiveTuple& tuple) {
  const std::lock_guard lock(mutex_);
  return conn_track_.export_state(tuple);
}

void MaglevLb::import_flow_state(const net::FiveTuple& tuple,
                                 std::span<const std::uint8_t> bytes,
                                 core::SpeedyBoxContext* ctx) {
  std::size_t backend = 0;
  std::vector<core::HeaderAction> actions;
  const std::size_t* backend_cell = nullptr;
  {
    const std::lock_guard lock(mutex_);
    std::size_t& cell = conn_track_.import_state(tuple, bytes);
    if (cell >= backends_.size()) {
      conn_track_.erase(tuple);
      throw std::invalid_argument("MaglevLb: imported backend out of range");
    }
    backend = cell;
    actions = actions_for(backend);
    backend_cell = &cell;
  }
  // Re-record what process() recorded for the initial packet (the lock is
  // released first — see the lock-order note on mutex_): sticky modify
  // actions, the per-backend byte accounting bound to the destination's
  // connection-tracking cell, the persistent failover event, and cleanup.
  if (ctx == nullptr) return;
  for (const core::HeaderAction& action : actions) {
    ctx->add_header_action(action);
  }
  core::localmat_add_SF(
      ctx,
      [this, backend_cell](net::Packet& pkt, const net::ParsedPacket&) {
        const std::lock_guard lock(mutex_);
        bytes_[*backend_cell] += pkt.size();
      },
      core::PayloadAccess::kIgnore, name() + ".bytes");
  ctx->register_event(
      name() + ".failover",
      [this, tuple]() {
        const std::lock_guard lock(mutex_);
        const std::size_t* backend = conn_track_.find(tuple);
        return backend != nullptr && !backends_[*backend].healthy;
      },
      [this, tuple]() {
        const std::lock_guard lock(mutex_);
        ++reroutes_;
        const std::size_t next = assign(core::HashedTuple::of(tuple));
        core::EventUpdate update;
        update.header_actions = actions_for(next);
        return update;
      },
      /*one_shot=*/false);
  ctx->on_teardown([this, tuple]() {
    const std::lock_guard lock(mutex_);
    conn_track_.erase(tuple);
  });
}

}  // namespace speedybox::nf
