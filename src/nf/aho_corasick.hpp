// Aho–Corasick multi-pattern matcher: the payload-inspection engine behind
// our Snort-like IDS. Matches all occurrences of every pattern in a single
// pass over the payload — the same algorithmic family Snort's detection
// engine uses for content rules.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace speedybox::nf {

class AhoCorasick {
 public:
  AhoCorasick() = default;

  /// Register a pattern with a caller-chosen id. Must be called before
  /// build(); empty patterns are ignored.
  void add_pattern(std::string_view pattern, std::uint32_t id);

  /// Construct goto/fail transitions. Idempotent. Must be called after the
  /// last add_pattern() and before any match query.
  void build();

  /// Invoke on_match(pattern_id, end_offset) for every occurrence.
  void match(std::span<const std::uint8_t> text,
             const std::function<void(std::uint32_t, std::size_t)>& on_match)
      const;

  /// Convenience: ids of all patterns occurring at least once, ascending,
  /// deduplicated.
  std::vector<std::uint32_t> match_ids(
      std::span<const std::uint8_t> text) const;

  bool contains_any(std::span<const std::uint8_t> text) const;

  std::size_t pattern_count() const noexcept { return pattern_count_; }
  bool built() const noexcept { return built_; }

 private:
  struct Node {
    std::array<std::int32_t, 256> next;
    std::int32_t fail = 0;
    std::vector<std::uint32_t> outputs;
    Node() { next.fill(-1); }
  };

  std::vector<Node> nodes_{Node{}};
  std::size_t pattern_count_ = 0;
  bool built_ = false;
};

}  // namespace speedybox::nf
