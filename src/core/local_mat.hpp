// The Local Match-Action Table (§IV): one per NF. As the initial packet of
// a flow traverses the chain, the NF records — through the SpeedyBox APIs —
// its per-flow header actions (ordered) and state functions (an ordered
// queue, §IV-B) here. The Global MAT consolidates across the chain's Local
// MATs.
//
// Thread safety: every operation takes the table's mutex, so an NF core can
// record flows while the manager core consolidates, applies event updates,
// or tears flows down (the threaded ONVM deployment, §VI-A). These are all
// control-plane operations — once per flow or per event, never per packet —
// so the uncontended lock cost is irrelevant to the data path.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/header_action.hpp"
#include "core/state_function.hpp"

namespace speedybox::core {

/// Per-flow record in a Local MAT.
struct LocalRule {
  std::vector<HeaderAction> header_actions;   // recorded order
  std::vector<StateFunction> state_functions; // recorded order (a queue)
  /// Invoked when the flow is torn down (FIN/RST), so the NF can release
  /// internal per-flow state it keyed by its own view of the flow.
  std::vector<std::function<void()>> teardown_hooks;
};

class LocalMat {
 public:
  LocalMat(std::string nf_name, std::size_t nf_index)
      : nf_name_(std::move(nf_name)), nf_index_(nf_index) {}

  const std::string& nf_name() const noexcept { return nf_name_; }
  std::size_t nf_index() const noexcept { return nf_index_; }

  void add_header_action(std::uint32_t fid, const HeaderAction& action) {
    const std::lock_guard lock(mutex_);
    rules_[fid].header_actions.push_back(action);
  }
  void add_state_function(std::uint32_t fid, StateFunction fn) {
    const std::lock_guard lock(mutex_);
    rules_[fid].state_functions.push_back(std::move(fn));
  }

  /// Event-driven runtime updates (§V-C1): replace the flow's recorded
  /// actions/functions with the event's update.
  void replace_header_actions(std::uint32_t fid,
                              std::vector<HeaderAction> actions) {
    const std::lock_guard lock(mutex_);
    rules_[fid].header_actions = std::move(actions);
  }
  void replace_state_functions(std::uint32_t fid,
                               std::vector<StateFunction> functions) {
    const std::lock_guard lock(mutex_);
    rules_[fid].state_functions = std::move(functions);
  }

  void add_teardown_hook(std::uint32_t fid, std::function<void()> hook) {
    const std::lock_guard lock(mutex_);
    rules_[fid].teardown_hooks.push_back(std::move(hook));
  }

  /// Run (and consume) the flow's teardown hooks; called by the Global MAT
  /// right before the rule is erased. The hooks run outside the table lock
  /// (they call back into NF state).
  void run_teardown_hooks(std::uint32_t fid) {
    std::vector<std::function<void()>> hooks;
    {
      const std::lock_guard lock(mutex_);
      const auto it = rules_.find(fid);
      if (it == rules_.end()) return;
      hooks.swap(it->second.teardown_hooks);
    }
    for (const auto& hook : hooks) hook();
  }

  /// Copy of the flow's record (consolidation reads through this so no
  /// reference escapes the lock).
  std::optional<LocalRule> snapshot(std::uint32_t fid) const {
    const std::lock_guard lock(mutex_);
    const auto it = rules_.find(fid);
    if (it == rules_.end()) return std::nullopt;
    return it->second;
  }

  /// Borrowing lookup for single-threaded use (tests, inline inspection):
  /// the pointer is invalidated by erase_flow/clear and must not be held
  /// across concurrent mutation.
  const LocalRule* find(std::uint32_t fid) const {
    const std::lock_guard lock(mutex_);
    const auto it = rules_.find(fid);
    return it == rules_.end() ? nullptr : &it->second;
  }

  bool contains(std::uint32_t fid) const {
    const std::lock_guard lock(mutex_);
    return rules_.contains(fid);
  }

  /// Flow teardown (FIN/RST, §VI-B): free the rule.
  void erase_flow(std::uint32_t fid) {
    const std::lock_guard lock(mutex_);
    rules_.erase(fid);
  }

  std::size_t size() const noexcept {
    const std::lock_guard lock(mutex_);
    return rules_.size();
  }
  void clear() {
    const std::lock_guard lock(mutex_);
    rules_.clear();
  }

 private:
  std::string nf_name_;
  std::size_t nf_index_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint32_t, LocalRule> rules_;
};

}  // namespace speedybox::core
