// The Global MAT (§V): consolidates, per flow, the header actions and state
// functions recorded in every Local MAT along the chain, and serves the fast
// data path for subsequent packets:
//
//   subsequent packet ──► event check ──► consolidated header action
//                                     ──► state-function batches (Table-I
//                                         parallel schedule)
//
// A triggered event patches the owning Local MAT record and re-consolidates
// the flow's rule before the packet is processed, so runtime behavior
// changes (Maglev failover, DoS blacklisting) take effect immediately.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/event_table.hpp"
#include "core/flow_table.hpp"
#include "core/header_action.hpp"
#include "core/local_mat.hpp"
#include "core/parallel_schedule.hpp"
#include "core/state_function.hpp"
#include "util/prefetch.hpp"

namespace speedybox::core {

/// Strategy for executing a rule's state-function batches. The default is
/// sequential (chain order); runtime::ParallelExecutor implements real
/// threaded execution of the Table-I parallel groups.
class BatchExecutor {
 public:
  virtual ~BatchExecutor() = default;
  virtual void execute(const ParallelSchedule& schedule,
                       const std::vector<StateFunctionBatch>& batches,
                       net::Packet& packet,
                       const net::ParsedPacket& parsed) = 0;
};

/// A flow's consolidated rule.
struct ConsolidatedRule {
  ConsolidatedAction action;
  BytePatch patch;                        // compiled field writes (lazy)
  std::vector<StateFunctionBatch> batches; // per-NF, chain order
  ParallelSchedule schedule;               // Table-I grouping of batches
  std::uint64_t version = 0;               // bumped on re-consolidation
  /// Set at consolidation when the flow has registered events; lets the
  /// fast path skip the Event Table lookup entirely for event-free flows.
  bool check_events = false;

  /// Batch-cost sampling: the first kCostSampleWindow measured packets time
  /// every batch individually to learn the critical-path fraction of the
  /// Table-I schedule; afterwards the fast path times all batches with one
  /// timer pair and scales by the learned fraction — per-packet timer
  /// overhead stays constant no matter how many batches the rule has.
  static constexpr std::uint32_t kCostSampleWindow = 8;
  std::uint32_t cost_samples = 0;
  double critical_fraction = 1.0;

  /// Pre-consolidated pure-forward rule installed instead of recording
  /// while the path is degraded (runtime overload control, DESIGN.md §9).
  bool degraded_default = false;
};

class GlobalMat {
 public:
  /// Wire the chain: Local MATs in chain order. Pointers must outlive the
  /// Global MAT (they live in the ServiceChain that owns both).
  void set_chain(std::vector<LocalMat*> chain) { chain_ = std::move(chain); }
  const std::vector<LocalMat*>& chain() const noexcept { return chain_; }

  EventTable& event_table() noexcept { return events_; }
  const EventTable& event_table() const noexcept { return events_; }

  /// Build (or rebuild) the consolidated rule for a flow from the chain's
  /// Local MATs. Called after the initial packet finishes the original path
  /// and by event triggers. Each consolidation installs a fresh immutable-
  /// shape rule object; holders of the previous snapshot (e.g. descriptors
  /// in flight on a threaded deployment) keep a consistent view.
  void consolidate_flow(std::uint32_t fid);

  const ConsolidatedRule* find(std::uint32_t fid) const {
    const auto* rule = rules_.find(fid);
    return rule == nullptr ? nullptr : rule->get();
  }

  /// True when the flow's consolidated rule is a settled drop: the header
  /// action drops and no registered event could change the verdict. The
  /// slo-early-drop overload policy sheds such packets at ingress —
  /// semantically equivalent to the fast path's early drop (which never
  /// runs state functions for dropped packets) minus the MAT walk. A FIN
  /// shed this way leaves the rule for idle expiry, exactly like a UDP
  /// flow's last packet would.
  bool rule_marked_drop(std::uint32_t fid) const {
    const ConsolidatedRule* rule = find(fid);
    return rule != nullptr && rule->action.drop && !rule->check_events;
  }

  /// Install a pre-consolidated pure-forward default rule (graceful
  /// degradation, DESIGN.md §9): a flow arriving while the path is
  /// degraded skips recording and executes this rule on the fast path.
  /// No header rewrites, no state functions, no event checks.
  void install_default_rule(std::uint32_t fid);

  /// Live-resharding rule handoff: transplant the learned batch-cost
  /// profile from the source shard's rule onto this (freshly consolidated)
  /// flow, so the destination fast path doesn't re-enter the per-batch
  /// sampling window mid-flow. No-op if the flow has no rule.
  void transfer_cost_profile(std::uint32_t fid, std::uint32_t cost_samples,
                             double critical_fraction) {
    auto* rule = rules_.find(fid);
    if (rule == nullptr) return;
    (*rule)->cost_samples = cost_samples;
    (*rule)->critical_fraction = critical_fraction;
  }

  /// Batch pre-pass hint: warm the cache lines of `fid`'s consolidated rule
  /// so the fast-path packets behind it in the burst find the rule resident
  /// (DESIGN.md §8). A hint only — a miss or a stale line never affects
  /// correctness.
  void prefetch(std::uint32_t fid) const noexcept {
    const auto* rule = rules_.find(fid);
    if (rule != nullptr) {
      util::prefetch_read(rule->get());
    }
  }

  /// Shared snapshot of the flow's current rule (threaded deployments pin
  /// the rule a packet executes against).
  std::shared_ptr<const ConsolidatedRule> find_shared(
      std::uint32_t fid) const {
    const auto* rule = rules_.find(fid);
    return rule == nullptr ? nullptr : *rule;
  }

  struct FastPathResult {
    bool rule_hit = false;
    bool dropped = false;
    /// The rule executed was a degraded-mode default rule — the runner
    /// counts these packets separately (they skipped recording).
    bool degraded_rule = false;
    std::size_t events_triggered = 0;
    /// Measured cycles actually spent executing state functions.
    std::uint64_t sf_total_cycles = 0;
    /// Modeled cycles under the Table-I parallel schedule (critical path).
    std::uint64_t sf_critical_path_cycles = 0;
    /// Parallel groups with ≥2 batches (each pays one fork/join in the
    /// platform latency model).
    std::size_t multi_batch_groups = 0;
    /// Timer pairs consumed inside process() while measuring batches — the
    /// caller subtracts their overhead from its enclosing measurement.
    std::uint32_t timer_pairs = 0;
  };

  /// Fast path for a subsequent packet: event check, consolidated header
  /// action, state-function batches. `measure_batches` enables per-batch
  /// cycle attribution (used by the benches); the equivalence tests leave it
  /// off. `parsed_hint` is the classifier's parse of this packet — reused
  /// for state-function execution when the consolidated action leaves the
  /// header layout intact, so the fast path parses exactly once.
  FastPathResult process(net::Packet& packet, bool measure_batches = false,
                         const net::ParsedPacket* parsed_hint = nullptr);

  /// The manager-side half of the fast path for threaded deployments:
  /// event check + consolidated header action only. The caller dispatches
  /// the returned rule's state-function batches to the owning NF cores.
  struct FastHeaderResult {
    bool rule_hit = false;
    bool dropped = false;
    bool degraded_rule = false;
    std::size_t events_triggered = 0;
    std::shared_ptr<const ConsolidatedRule> rule;
  };
  FastHeaderResult process_header(net::Packet& packet);

  /// Flow teardown: drop the consolidated rule, the flow's events, and the
  /// per-NF Local MAT records. `run_hooks = false` skips the per-NF
  /// teardown hooks — for threaded deployments where the hooks (which
  /// mutate NF-internal state) already ran on the owning NF cores and only
  /// the manager-side erase remains.
  void erase_flow(std::uint32_t fid, bool run_hooks = true);

  std::size_t size() const noexcept { return rules_.size(); }
  std::uint64_t consolidations() const noexcept { return consolidations_; }
  /// Rule-table telemetry (occupancy, probes, slab bytes) for the shard's
  /// flow_table_* metrics.
  FlowTableStats rule_table_stats() const { return rules_.stats(); }
  void clear();

  /// Install a threaded batch executor (borrowed). Used by the unmeasured
  /// fast path only; measured runs always execute sequentially so cycle
  /// attribution stays exact.
  void set_batch_executor(BatchExecutor* executor) noexcept {
    executor_ = executor;
  }

 private:
  /// Shared front half of the fast path: rule lookup, event check (with
  /// re-fetch after a trigger), consolidated header action. Returns a
  /// borrowed pointer to the rule the packet executes against (owned by
  /// rules_; valid until the next consolidation/erase of this flow), or
  /// null on a miss. Kept refcount-free because it runs per packet.
  ConsolidatedRule* apply_header_phase(net::Packet& packet, bool* dropped,
                                       std::size_t* events_triggered);

  std::vector<LocalMat*> chain_;
  BatchExecutor* executor_ = nullptr;
  EventTable events_;
  /// FID-keyed consolidated-rule table. The shared_ptr cells live in slab
  /// records; each consolidation swaps the pointer in place, so in-flight
  /// holders of the old snapshot stay consistent (see consolidate_flow).
  FlowTable<std::uint32_t, std::shared_ptr<ConsolidatedRule>> rules_;
  std::uint64_t consolidations_ = 0;
};

}  // namespace speedybox::core
