#include "core/parallel_schedule.hpp"

#include <algorithm>

namespace speedybox::core {

std::uint64_t ParallelSchedule::critical_path(
    const std::vector<std::uint64_t>& costs) const {
  std::uint64_t total = 0;
  for (const auto& group : groups) {
    std::uint64_t group_max = 0;
    for (const std::size_t index : group) {
      if (index < costs.size()) group_max = std::max(group_max, costs[index]);
    }
    total += group_max;
  }
  return total;
}

ParallelSchedule build_schedule(
    const std::vector<StateFunctionBatch>& batches) {
  ParallelSchedule schedule;
  std::vector<PayloadAccess> group_access;  // access of each batch in group

  for (std::size_t i = 0; i < batches.size(); ++i) {
    if (batches[i].empty()) continue;
    const PayloadAccess access = batches[i].access();
    bool joined = false;
    if (!schedule.groups.empty()) {
      // Batch i may join the open group only if every already-grouped batch
      // (all of which precede it in chain order) permits it.
      joined = std::all_of(
          group_access.begin(), group_access.end(),
          [access](PayloadAccess prior) {
            return parallelizable(prior, access);
          });
    }
    if (joined) {
      schedule.groups.back().push_back(i);
      group_access.push_back(access);
    } else {
      schedule.groups.push_back({i});
      group_access.assign(1, access);
    }
  }
  return schedule;
}

}  // namespace speedybox::core
