// FlowTable (DESIGN.md §13): the million-flow state engine behind every
// per-flow structure on the hot path — the classifier's tuple→FID map, the
// Global MAT's FID→rule map, and each NF's typed per-flow state.
//
// Why not std::unordered_map: at production flow counts the data path is
// bounded by pointer-chasing cache misses (one heap node per entry, a
// bucket array of pointers), not by NF work. FlowTable replaces that with
//
//   * flat control-byte probing: one byte of hash metadata per slot in a
//     contiguous array, so a lookup touches one ctrl cache line and (on a
//     hit) one slot line — no node chasing, and 7-bit tag compares reject
//     almost every non-matching slot without reading its key;
//   * pre-hashed keys: FiveTuple hashes are computed once per packet (the
//     classifier's hash doubles as the FID seed) and passed through every
//     table call, so the chain never re-hashes a tuple it already hashed;
//   * slab-allocated records: values live in fixed-size slab chunks that
//     never move, so recorded state-function closures can capture value
//     pointers across resizes (the same pointer-stability contract
//     unordered_map nodes gave the NFs), and a record's byte image is a
//     straight memcpy for migration export/import;
//   * incremental resize: growth drains the old slot array a few slots per
//     mutation instead of rehashing everything at once, so the autoscale
//     migration path never sees a stop-the-world rehash pause spike p99.
//
// The array+hash hybrid layout (dense flat arrays for the common case, a
// draining secondary during growth) follows the ArrayWithHash technique;
// the control-byte probing is the SwissTable scheme, scalar-probed so it
// stays portable.
//
// Concurrency: a FlowTable has exactly one owner, like the maps it
// replaces — per-shard under the sharded runtime's single-writer contract,
// or guarded by the owning NF's mutex (MaglevLb, DosPrevention) where event
// lambdas run on the manager core. Lookups update probe-length statistics,
// so even const reads are owner-only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "net/five_tuple.hpp"
#include "util/hash.hpp"
#include "util/prefetch.hpp"

namespace speedybox::core {

/// Point-in-time counters of one table (or a merge across several): sizing,
/// probe behavior and slab footprint — the telemetry surface (DESIGN.md
/// §13) and what bench_flowtable gates.
struct FlowTableStats {
  std::size_t entries = 0;
  std::size_t capacity = 0;    // live + draining slot arrays
  std::size_t tombstones = 0;
  bool resizing = false;       // a resize is currently draining
  std::uint64_t resizes = 0;          // growth/purge transitions started
  std::uint64_t resize_steps = 0;     // bounded drain quanta executed
  std::uint64_t migrated_entries = 0; // entries moved by the drain
  std::uint64_t lookups = 0;
  std::uint64_t probe_total = 0;      // slots visited across all lookups
  std::uint64_t max_probe = 0;        // longest single probe sequence
  std::size_t slab_bytes = 0;         // reserved record storage
  std::size_t slab_records = 0;       // live records

  void merge_from(const FlowTableStats& other) {
    entries += other.entries;
    capacity += other.capacity;
    tombstones += other.tombstones;
    resizing = resizing || other.resizing;
    resizes += other.resizes;
    resize_steps += other.resize_steps;
    migrated_entries += other.migrated_entries;
    lookups += other.lookups;
    probe_total += other.probe_total;
    max_probe = max_probe > other.max_probe ? max_probe : other.max_probe;
    slab_bytes += other.slab_bytes;
    slab_records += other.slab_records;
  }

  double load_factor() const noexcept {
    return capacity == 0 ? 0.0
                         : static_cast<double>(entries) /
                               static_cast<double>(capacity);
  }
  double avg_probe() const noexcept {
    return lookups == 0 ? 0.0
                        : static_cast<double>(probe_total) /
                              static_cast<double>(lookups);
  }
};

/// Slab allocator for fixed-size per-flow records. Chunked storage: record
/// addresses are stable for the record's whole life (chunks are never
/// reallocated), freed indices are recycled LIFO, and every allocation is
/// zero-filled first so the padding bytes of a record struct are
/// deterministic — which is what lets migration export serialize a record
/// as a raw memcpy of its slab bytes.
class SlabArena {
 public:
  static constexpr std::size_t kRecordsPerChunk = 1024;

  explicit SlabArena(std::size_t record_size) noexcept;

  SlabArena(SlabArena&&) noexcept = default;
  SlabArena& operator=(SlabArena&&) noexcept = default;

  /// Index of a zero-filled, uninitialized record slot.
  std::uint32_t allocate();
  /// Return a record slot to the free list. The caller has already ended
  /// the record's lifetime (trivial records need nothing).
  void release(std::uint32_t index) noexcept;

  std::byte* data(std::uint32_t index) noexcept {
    return chunks_[index / kRecordsPerChunk].get() +
           static_cast<std::size_t>(index % kRecordsPerChunk) * record_size_;
  }
  const std::byte* data(std::uint32_t index) const noexcept {
    return chunks_[index / kRecordsPerChunk].get() +
           static_cast<std::size_t>(index % kRecordsPerChunk) * record_size_;
  }

  std::size_t record_size() const noexcept { return record_size_; }
  std::size_t live_records() const noexcept { return live_; }
  std::size_t capacity_bytes() const noexcept {
    return chunks_.size() * kRecordsPerChunk * record_size_;
  }

  /// Drop every chunk. Caller has already ended all record lifetimes.
  void clear() noexcept;

 private:
  std::size_t record_size_;
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::vector<std::uint32_t> free_;
  std::size_t live_ = 0;
};

/// Key policy: how FlowTable hashes and compares keys. The default covers
/// the two key shapes the data path uses — FiveTuple (its own mixed hash,
/// the one the classifier computes once per packet) and integral keys
/// (FIDs, NAT external ports) through a full-avalanche mix.
template <class Key>
struct FlowKeyOps {
  static std::uint64_t hash(const Key& key) noexcept {
    if constexpr (std::is_integral_v<Key>) {
      return util::mix64(static_cast<std::uint64_t>(key));
    } else {
      return key.hash();
    }
  }
  static bool equal(const Key& a, const Key& b) noexcept { return a == b; }
};

/// A precomputed key hash. A distinct aggregate rather than a bare
/// std::uint64_t so the pre-hashed table overloads can never be selected
/// by accident when the first *value* argument happens to be an integer —
/// an integer only becomes a FlowHash through an explicit brace init.
struct FlowHash {
  std::uint64_t value = 0;
};

/// A FiveTuple with its hash computed exactly once — the handle an NF
/// builds per packet and reuses across every table operation it performs
/// for that packet (find, emplace, erase), and that the pre-hashed
/// find/erase overloads accept.
struct HashedTuple {
  net::FiveTuple tuple;
  FlowHash hash;

  static HashedTuple of(const net::FiveTuple& tuple) noexcept {
    return {tuple, FlowHash{tuple.hash()}};
  }
};

template <class Key, class Value, class Ops = FlowKeyOps<Key>>
class FlowTable {
  static_assert(std::is_trivially_copyable_v<Key>,
                "FlowTable keys are stored flat and moved during resize");

 public:
  FlowTable() : arena_(sizeof(Value)) {}
  explicit FlowTable(std::size_t expected_entries) : FlowTable() {
    reserve(expected_entries);
  }
  ~FlowTable() { clear(); }

  FlowTable(const FlowTable&) = delete;
  FlowTable& operator=(const FlowTable&) = delete;
  FlowTable(FlowTable&& other) noexcept
      : live_(std::move(other.live_)),
        old_(std::move(other.old_)),
        drain_cursor_(other.drain_cursor_),
        arena_(std::move(other.arena_)),
        resizes_(other.resizes_),
        resize_steps_(other.resize_steps_),
        migrated_entries_(other.migrated_entries_),
        lookups_(other.lookups_),
        probe_total_(other.probe_total_),
        max_probe_(other.max_probe_) {
    other.live_ = Table{};
    other.old_ = Table{};
  }
  FlowTable& operator=(FlowTable&& other) noexcept {
    if (this != &other) {
      clear();
      live_ = std::move(other.live_);
      old_ = std::move(other.old_);
      drain_cursor_ = other.drain_cursor_;
      arena_ = std::move(other.arena_);
      resizes_ = other.resizes_;
      resize_steps_ = other.resize_steps_;
      migrated_entries_ = other.migrated_entries_;
      lookups_ = other.lookups_;
      probe_total_ = other.probe_total_;
      max_probe_ = other.max_probe_;
      other.live_ = Table{};
      other.old_ = Table{};
    }
    return *this;
  }

  // --- lookup ------------------------------------------------------------

  Value* find(const Key& key) { return find(key, FlowHash{Ops::hash(key)}); }
  const Value* find(const Key& key) const {
    return find(key, FlowHash{Ops::hash(key)});
  }

  Value* find(const Key& key, FlowHash hash) {
    return const_cast<Value*>(std::as_const(*this).find(key, hash));
  }
  const Value* find(const Key& key, FlowHash hash) const {
    ++lookups_;
    std::size_t slot = find_slot(live_, key, hash.value);
    if (slot == kNoSlot && !old_.ctrl.empty()) {
      slot = find_slot(old_, key, hash.value);
      if (slot != kNoSlot) return value_ptr(old_.slots[slot].record);
      return nullptr;
    }
    return slot == kNoSlot ? nullptr : value_ptr(live_.slots[slot].record);
  }

  bool contains(const Key& key) const { return find(key) != nullptr; }

  /// Warm the control and slot cache lines the key's probe will start at —
  /// the batch pre-pass hint (DESIGN.md §8). Never affects correctness.
  void prefetch(FlowHash hash) const noexcept {
    if (!live_.ctrl.empty()) {
      const std::size_t slot = home_slot(live_, hash.value);
      util::prefetch_read(&live_.ctrl[slot]);
      util::prefetch_read(&live_.slots[slot]);
    }
  }

  // --- mutation ----------------------------------------------------------

  /// Find-or-insert. A bounded quantum of any draining resize runs first;
  /// the returned pointer is stable for the entry's whole life (slab
  /// record addresses survive resizes). `inserted` distinguishes a fresh
  /// zero-state record from an existing one.
  template <class... Args>
  std::pair<Value*, bool> try_emplace(const Key& key, FlowHash hash,
                                      Args&&... args) {
    step_resize(kResizeStepSlots);
    ++lookups_;
    std::size_t slot = find_slot(live_, key, hash.value);
    if (slot != kNoSlot) {
      return {value_ptr(live_.slots[slot].record), false};
    }
    if (!old_.ctrl.empty()) {
      const std::size_t old_slot = find_slot(old_, key, hash.value);
      if (old_slot != kNoSlot) {
        // Promote a drain-pending entry: the slot moves to the live table
        // (ahead of the cursor), the record — and every pointer to it —
        // stays put.
        const std::uint32_t record = old_.slots[old_slot].record;
        old_.ctrl[old_slot] = kTombstone;
        ++old_.tombstones;
        --old_.size;
        grow_if_needed();
        place(live_, key, hash.value, record);
        return {value_ptr(record), false};
      }
    }
    grow_if_needed();
    const std::uint32_t record = arena_.allocate();
    Value* value = new (arena_.data(record)) Value(std::forward<Args>(args)...);
    place(live_, key, hash.value, record);
    return {value, true};
  }

  template <class... Args>
  std::pair<Value*, bool> try_emplace(const Key& key, Args&&... args) {
    return try_emplace(key, FlowHash{Ops::hash(key)},
                       std::forward<Args>(args)...);
  }

  /// Insert-or-overwrite; returns the stored value.
  Value& insert_or_assign(const Key& key, FlowHash hash, Value value) {
    auto [stored, inserted] = try_emplace(key, hash);
    *stored = std::move(value);
    return *stored;
  }
  Value& insert_or_assign(const Key& key, Value value) {
    return insert_or_assign(key, FlowHash{Ops::hash(key)}, std::move(value));
  }

  bool erase(const Key& key) { return erase(key, FlowHash{Ops::hash(key)}); }
  bool erase(const Key& key, FlowHash hash) {
    step_resize(kResizeStepSlots);
    ++lookups_;
    std::size_t slot = find_slot(live_, key, hash.value);
    if (slot != kNoSlot) {
      erase_slot(live_, slot);
      return true;
    }
    if (!old_.ctrl.empty()) {
      slot = find_slot(old_, key, hash.value);
      if (slot != kNoSlot) {
        erase_slot(old_, slot);
        return true;
      }
    }
    return false;
  }

  void clear() noexcept {
    destroy_all(live_);
    destroy_all(old_);
    live_ = Table{};
    old_ = Table{};
    drain_cursor_ = 0;
    arena_.clear();
  }

  /// Pre-size so the first `expected_entries` inserts never trigger a
  /// resize (deployment-time hint; the table still grows past it).
  void reserve(std::size_t expected_entries) {
    std::size_t capacity = kMinCapacity;
    while (occupancy_limit(capacity) < expected_entries) capacity <<= 1;
    if (capacity <= live_.ctrl.size()) return;
    if (live_.size == 0 && old_.ctrl.empty()) {
      destroy_all(live_);
      live_ = make_table(capacity);
    } else {
      finish_resize();
      start_resize(capacity);
      finish_resize();
    }
  }

  // --- iteration ---------------------------------------------------------

  /// Visit every (key, value) pair; live slots first, then any still
  /// draining. Mutating the table during iteration is not supported —
  /// callers that erase while walking collect keys first (exactly as they
  /// had to with unordered_map iterators).
  template <class F>
  void for_each(F&& fn) {
    visit_table<Value>(live_, fn);
    visit_table<Value>(old_, fn);
  }
  template <class F>
  void for_each(F&& fn) const {
    visit_table<const Value>(live_, fn);
    visit_table<const Value>(old_, fn);
  }

  std::size_t size() const noexcept { return live_.size + old_.size; }
  bool empty() const noexcept { return size() == 0; }

  /// Raw byte image of a record — what migration memcpys out of the slab.
  std::span<const std::byte> record_bytes(const Value& value) const noexcept {
    return {reinterpret_cast<const std::byte*>(&value), sizeof(Value)};
  }

  FlowTableStats stats() const {
    FlowTableStats stats;
    stats.entries = size();
    stats.capacity = live_.ctrl.size() + old_.ctrl.size();
    stats.tombstones = live_.tombstones + old_.tombstones;
    stats.resizing = !old_.ctrl.empty();
    stats.resizes = resizes_;
    stats.resize_steps = resize_steps_;
    stats.migrated_entries = migrated_entries_;
    stats.lookups = lookups_;
    stats.probe_total = probe_total_;
    stats.max_probe = max_probe_;
    stats.slab_bytes = arena_.capacity_bytes();
    stats.slab_records = arena_.live_records();
    return stats;
  }

  /// Slots a single mutation drains at most — the incremental-resize work
  /// bound the property test and bench assert on.
  static constexpr std::size_t kResizeStepSlots = 16;

 private:
  // Control bytes: high bit set = free (empty stops probes, tombstone does
  // not); otherwise the low 7 bits of the entry's hash, compared before the
  // key is ever read.
  static constexpr std::uint8_t kEmpty = 0x80;
  static constexpr std::uint8_t kTombstone = 0xFE;
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
  static constexpr std::size_t kMinCapacity = 16;

  struct Slot {
    Key key;
    std::uint32_t record = 0;
  };

  struct Table {
    std::vector<std::uint8_t> ctrl;
    std::vector<Slot> slots;
    std::size_t mask = 0;
    std::size_t size = 0;
    std::size_t tombstones = 0;
  };

  static std::uint8_t tag(std::uint64_t hash) noexcept {
    return static_cast<std::uint8_t>(hash & 0x7F);
  }
  static std::size_t home_slot(const Table& table,
                               std::uint64_t hash) noexcept {
    // The low 7 bits live in the control byte; the slot index uses the
    // bits above them so tag and position stay independent.
    return (hash >> 7) & table.mask;
  }
  /// Entries the table holds before a resize starts (3/4 occupancy,
  /// tombstones included — a churn-heavy table resizes in place to purge
  /// them rather than letting probes degrade). 3/4 rather than
  /// SwissTable's 7/8: scalar probing pays per slot, not per 16-wide
  /// group, and above 3/4 the linear-probe clusters push the p99 probe
  /// length past what bench_flowtable allows.
  static std::size_t occupancy_limit(std::size_t capacity) noexcept {
    return capacity - capacity / 4;
  }

  Table make_table(std::size_t capacity) {
    Table table;
    table.ctrl.assign(capacity, kEmpty);
    table.slots.resize(capacity);
    table.mask = capacity - 1;
    return table;
  }

  Value* value_ptr(std::uint32_t record) const noexcept {
    return std::launder(reinterpret_cast<Value*>(
        const_cast<std::byte*>(arena_.data(record))));
  }

  std::size_t find_slot(const Table& table, const Key& key,
                        std::uint64_t hash) const {
    if (table.ctrl.empty()) return kNoSlot;
    const std::uint8_t h2 = tag(hash);
    std::size_t slot = home_slot(table, hash);
    for (std::size_t probed = 1;; ++probed, slot = (slot + 1) & table.mask) {
      const std::uint8_t ctrl = table.ctrl[slot];
      if (ctrl == h2 && Ops::equal(table.slots[slot].key, key)) {
        note_probe(probed);
        return slot;
      }
      if (ctrl == kEmpty || probed > table.mask) {
        note_probe(probed);
        return kNoSlot;
      }
    }
  }

  void note_probe(std::size_t probed) const noexcept {
    probe_total_ += probed;
    if (probed > max_probe_) max_probe_ = probed;
  }

  /// Claim the first free slot on the key's probe path. The caller has
  /// established the key is absent from this table.
  void place(Table& table, const Key& key, std::uint64_t hash,
             std::uint32_t record) {
    std::size_t slot = home_slot(table, hash);
    while (!(table.ctrl[slot] & 0x80)) slot = (slot + 1) & table.mask;
    if (table.ctrl[slot] == kTombstone) --table.tombstones;
    table.ctrl[slot] = tag(hash);
    table.slots[slot] = Slot{key, record};
    ++table.size;
  }

  void erase_slot(Table& table, std::size_t slot) {
    const std::uint32_t record = table.slots[slot].record;
    value_ptr(record)->~Value();
    arena_.release(record);
    table.ctrl[slot] = kTombstone;
    ++table.tombstones;
    --table.size;
  }

  void grow_if_needed() {
    if (live_.ctrl.empty()) {
      live_ = make_table(kMinCapacity);
      return;
    }
    // Entries still draining from old_ count against the live capacity:
    // they will all land in live_ if a forced finish runs, so triggering
    // on the combined total guarantees the finish below can never overflow
    // the live table.
    if (live_.size + old_.size + live_.tombstones + 1 <=
        occupancy_limit(live_.ctrl.size())) {
      return;
    }
    // Only one resize drains at a time; a still-draining one is forced to
    // completion before the next starts. The per-mutation drain quantum
    // outpaces table fill by a wide margin, so this forced finish is a
    // correctness backstop, not a latency cliff.
    if (!old_.ctrl.empty()) finish_resize();
    std::size_t capacity = kMinCapacity;
    while (occupancy_limit(capacity) < (live_.size + 1) * 2) capacity <<= 1;
    start_resize(capacity);
  }

  void start_resize(std::size_t new_capacity) {
    ++resizes_;
    old_ = std::move(live_);
    live_ = make_table(new_capacity);
    drain_cursor_ = 0;
  }

  /// Drain up to `max_slots` slots of the old table into the live one —
  /// the bounded work quantum every mutation pays while a resize is in
  /// flight. Records never move; only (key, record-index) slots do.
  void step_resize(std::size_t max_slots) {
    if (old_.ctrl.empty()) return;
    ++resize_steps_;
    std::size_t scanned = 0;
    while (scanned < max_slots && drain_cursor_ < old_.ctrl.size()) {
      const std::uint8_t ctrl = old_.ctrl[drain_cursor_];
      if (!(ctrl & 0x80)) {
        const Slot& slot = old_.slots[drain_cursor_];
        place(live_, slot.key, Ops::hash(slot.key), slot.record);
        old_.ctrl[drain_cursor_] = kTombstone;
        --old_.size;
        ++migrated_entries_;
      }
      ++drain_cursor_;
      ++scanned;
    }
    if (drain_cursor_ >= old_.ctrl.size()) {
      old_ = Table{};
      drain_cursor_ = 0;
    }
  }

  void finish_resize() {
    while (!old_.ctrl.empty()) step_resize(old_.ctrl.size());
  }

  void destroy_all(Table& table) noexcept {
    for (std::size_t slot = 0; slot < table.ctrl.size(); ++slot) {
      if (!(table.ctrl[slot] & 0x80)) {
        value_ptr(table.slots[slot].record)->~Value();
      }
    }
  }

  // V is Value or const Value — one walk serves both for_each overloads.
  template <class V, class F>
  void visit_table(const Table& table, F& fn) const {
    for (std::size_t slot = 0; slot < table.ctrl.size(); ++slot) {
      if (table.ctrl[slot] & 0x80) continue;
      fn(table.slots[slot].key,
         static_cast<V&>(*value_ptr(table.slots[slot].record)));
    }
  }

  Table live_;
  Table old_;  // non-empty only while a resize is draining
  std::size_t drain_cursor_ = 0;
  SlabArena arena_;

  std::uint64_t resizes_ = 0;
  std::uint64_t resize_steps_ = 0;
  std::uint64_t migrated_entries_ = 0;
  // Probe statistics move on lookups, so they are mutable; the table's
  // single-owner contract makes that safe (no concurrent const readers).
  mutable std::uint64_t lookups_ = 0;
  mutable std::uint64_t probe_total_ = 0;
  mutable std::uint64_t max_probe_ = 0;
};

}  // namespace speedybox::core
