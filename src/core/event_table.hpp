// The Event Table (§V-C1, Fig. 3): expresses the *mutable* part of stateful
// NF behavior on the consolidated path.
//
// NFs register, per flow, a condition handler (a predicate over their own
// internal state) and an update (replacement header actions and/or state
// functions). On every subsequent packet the fast path first checks the
// flow's events; a triggered event rewrites the owning NF's Local MAT record
// and forces re-consolidation, so the current and all later packets follow
// the new rule — e.g. Maglev rerouting an established flow to a healthy
// backend, or a DoS-prevention NF flipping a flow from modify to drop once
// its SYN counter crosses the threshold.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/header_action.hpp"
#include "core/state_function.hpp"

namespace speedybox::core {

/// What a triggered event installs into the owning NF's Local MAT record.
struct EventUpdate {
  std::optional<std::vector<HeaderAction>> header_actions;
  std::optional<std::vector<StateFunction>> state_functions;
};

/// Predicate over NF internal state ("state.matchCondition" in Fig. 1).
using ConditionHandler = std::function<bool()>;

/// Produces the update at trigger time (so e.g. Maglev can compute the new
/// backend with consistent hashing at the moment of failover).
using UpdateHandler = std::function<EventUpdate()>;

struct EventRegistration {
  std::uint32_t fid = 0;
  std::size_t nf_index = 0;  // which Local MAT the update applies to
  std::string name;
  ConditionHandler condition;
  UpdateHandler update;
  /// One-shot events (the common case: failover, blacklist) deregister on
  /// trigger; persistent events keep being checked.
  bool one_shot = true;
};

/// Thread safety: registration happens on NF cores during the recording
/// pass while the manager core checks/erases other flows, so all operations
/// take the table mutex. check() evaluates a flow's conditions as a batch
/// under the lock (conditions are NF-state predicates and must not call
/// back into this table), then runs updates and the trigger callback —
/// which re-consolidates, re-entering this table — outside it.
class EventTable {
 public:
  void register_event(EventRegistration event) {
    const std::lock_guard lock(mutex_);
    events_[event.fid].push_back(std::move(event));
  }

  bool has_events(std::uint32_t fid) const {
    const std::lock_guard lock(mutex_);
    return events_.contains(fid);
  }

  /// Evaluate all conditions registered for `fid`. For each triggered event
  /// `on_trigger(event, update)` is invoked (the Global MAT uses it to patch
  /// the Local MAT and re-consolidate). Returns the number triggered.
  std::size_t check(
      std::uint32_t fid,
      const std::function<void(const EventRegistration&, EventUpdate)>&
          on_trigger);

  void erase_flow(std::uint32_t fid) {
    const std::lock_guard lock(mutex_);
    events_.erase(fid);
  }
  void clear() {
    const std::lock_guard lock(mutex_);
    events_.clear();
  }

  std::size_t flow_count() const noexcept {
    const std::lock_guard lock(mutex_);
    return events_.size();
  }
  std::uint64_t checks_performed() const noexcept {
    const std::lock_guard lock(mutex_);
    return checks_;
  }
  std::uint64_t events_triggered() const noexcept {
    const std::lock_guard lock(mutex_);
    return triggers_;
  }

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::uint32_t, std::vector<EventRegistration>> events_;
  std::uint64_t checks_ = 0;
  std::uint64_t triggers_ = 0;
};

}  // namespace speedybox::core
