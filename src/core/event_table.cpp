#include "core/event_table.hpp"

namespace speedybox::core {

std::size_t EventTable::check(
    std::uint32_t fid,
    const std::function<void(const EventRegistration&, EventUpdate)>&
        on_trigger) {
  // Phase 1 (under the lock): evaluate conditions, pull out the triggered
  // registrations, deregister one-shots. Conditions are NF-state
  // predicates; they must not re-enter the event table.
  std::vector<EventRegistration> fired;
  {
    const std::lock_guard lock(mutex_);
    const auto it = events_.find(fid);
    if (it == events_.end()) return 0;
    auto& list = it->second;
    for (std::size_t i = 0; i < list.size();) {
      ++checks_;
      if (list[i].condition && list[i].condition()) {
        ++triggers_;
        fired.push_back(list[i]);
        if (list[i].one_shot) {
          list.erase(list.begin() + static_cast<std::ptrdiff_t>(i));
          continue;  // next event shifted into slot i
        }
      }
      ++i;
    }
    if (list.empty()) events_.erase(it);
  }

  // Phase 2 (outside the lock): compute updates and notify — the callback
  // re-consolidates the flow, which reads this table again.
  for (const EventRegistration& event : fired) {
    EventUpdate update = event.update ? event.update() : EventUpdate{};
    on_trigger(event, std::move(update));
  }
  return fired.size();
}

}  // namespace speedybox::core
