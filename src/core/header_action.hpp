// Header actions (§IV-A1) and the consolidation algebra (§V-B).
//
// SpeedyBox standardizes five header actions — Forward, Drop, Modify, Encap,
// Decap — and consolidates the ordered list an initial packet accumulates
// across the chain into a single equivalent action:
//
//   * Drop dominates: one drop anywhere makes the flow's consolidated
//     action a drop, enabling early drop at the head of the chain (R2).
//   * Encap/Decap are simulated on a header stack; an encap immediately
//     undone by a matching decap cancels out.
//   * Modifies merge: same field — the later write wins; different fields —
//     combined into one pass. The paper expresses the combination as
//     P0 ⊕ [(P0⊕P1) | (P0⊕P2)]; we compile the merged field writes into a
//     byte-level mask/value patch (BytePatch) applied in a single sweep,
//     which is exactly that XOR/OR composition.
//   * Dependent fields (checksums) are fixed once, at the end (§V-B).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/fields.hpp"
#include "net/packet.hpp"

namespace speedybox::core {

enum class HeaderActionType : std::uint8_t {
  kForward,
  kDrop,
  kModify,
  kEncap,
  kDecap,
};

std::string_view header_action_type_name(HeaderActionType type) noexcept;

/// Parameters of an Encap action (and the kind tag a Decap matches on).
struct EncapSpec {
  net::EncapKind kind = net::EncapKind::kAh;
  std::uint32_t spi = 0;              // AH only
  net::Ipv4Addr tunnel_src;           // IPIP only
  net::Ipv4Addr tunnel_dst;           // IPIP only

  friend bool operator==(const EncapSpec&, const EncapSpec&) = default;
};

/// One header action as recorded by an NF into its Local MAT. A Modify
/// carries exactly one field write (an NF records several Modifies to
/// rewrite several fields, as in Fig. 1's modify(DPort)).
struct HeaderAction {
  HeaderActionType type = HeaderActionType::kForward;
  net::HeaderField field = net::HeaderField::kSrcIp;  // kModify
  std::uint32_t value = 0;                            // kModify
  EncapSpec encap;                                    // kEncap / kDecap

  static HeaderAction forward() noexcept { return {}; }
  static HeaderAction drop() noexcept {
    HeaderAction a;
    a.type = HeaderActionType::kDrop;
    return a;
  }
  static HeaderAction modify(net::HeaderField field,
                             std::uint32_t value) noexcept {
    HeaderAction a;
    a.type = HeaderActionType::kModify;
    a.field = field;
    a.value = value;
    return a;
  }
  static HeaderAction encap_ah(std::uint32_t spi) noexcept {
    HeaderAction a;
    a.type = HeaderActionType::kEncap;
    a.encap.kind = net::EncapKind::kAh;
    a.encap.spi = spi;
    return a;
  }
  static HeaderAction encap_ipip(net::Ipv4Addr src,
                                 net::Ipv4Addr dst) noexcept {
    HeaderAction a;
    a.type = HeaderActionType::kEncap;
    a.encap.kind = net::EncapKind::kIpIp;
    a.encap.tunnel_src = src;
    a.encap.tunnel_dst = dst;
    return a;
  }
  static HeaderAction decap(net::EncapKind kind) noexcept {
    HeaderAction a;
    a.type = HeaderActionType::kDecap;
    a.encap.kind = kind;
    return a;
  }

  friend bool operator==(const HeaderAction&, const HeaderAction&) = default;

  std::string to_string() const;
};

/// The result of consolidating an ordered header-action list.
struct ConsolidatedAction {
  bool drop = false;

  /// Residual per-field writes (last-writer-wins), indexed by HeaderField.
  std::array<std::optional<std::uint32_t>, net::kHeaderFieldCount>
      field_writes{};

  /// Residual decaps of headers the packet arrived with (applied first,
  /// outermost-in order), then residual encaps (applied in push order).
  std::vector<net::EncapKind> leading_decaps;
  std::vector<EncapSpec> trailing_encaps;

  bool has_field_writes() const noexcept {
    for (const auto& w : field_writes) {
      if (w) return true;
    }
    return false;
  }
  bool is_pure_forward() const noexcept {
    return !drop && !has_field_writes() && leading_decaps.empty() &&
           trailing_encaps.empty();
  }

  std::string to_string() const;
};

/// §V-B consolidation: ordered action list -> one equivalent action.
ConsolidatedAction consolidate(std::span<const HeaderAction> actions);

/// Byte-level compiled form of the field writes: one masked write over a
/// window of the header bytes. Offsets depend on the packet's parse shape
/// (inner L3/L4 offsets), which is constant across a flow's packets; the
/// Global MAT caches the compiled patch per rule and recompiles if the
/// shape ever differs.
class BytePatch {
 public:
  BytePatch() = default;

  /// Compile the field writes of `action` against the offsets in `parsed`.
  static BytePatch compile(const ConsolidatedAction& action,
                           const net::ParsedPacket& parsed);

  /// True if this patch was compiled for the same parse shape.
  bool matches_shape(const net::ParsedPacket& parsed) const noexcept {
    return inner_l3_ == parsed.inner_l3_offset && l4_ == parsed.l4_offset;
  }

  bool empty() const noexcept { return length_ == 0; }

  /// Apply: packet[base+i] = (packet[base+i] & ~mask[i]) | value[i].
  void apply(net::Packet& packet) const noexcept;

 private:
  static constexpr std::size_t kMaxWindow = 64;

  std::size_t inner_l3_ = 0;
  std::size_t l4_ = 0;
  std::size_t base_offset_ = 0;
  std::size_t length_ = 0;
  std::array<std::uint8_t, kMaxWindow> mask_{};
  std::array<std::uint8_t, kMaxWindow> value_{};
};

/// Apply a single header action the way a baseline NF does: field write plus
/// immediate incremental checksum fix-up. This is the reference semantics
/// the property tests compare consolidation against, and the helper the
/// baseline NF implementations use on the original path.
void apply_action_baseline(const HeaderAction& action, net::Packet& packet);

/// Apply a consolidated action on the fast path: leading decaps, one byte
/// patch, trailing encaps, then a single checksum fix-up. Marks the packet
/// dropped instead when action.drop is set.
void apply_consolidated(const ConsolidatedAction& action, BytePatch& patch,
                        net::Packet& packet);

}  // namespace speedybox::core
