#include "core/classifier.hpp"

#include "net/checksum.hpp"
#include "util/cycle_clock.hpp"

namespace speedybox::core {

std::optional<PacketClassifier::Classification> PacketClassifier::classify(
    net::Packet& packet) {
  // Parse and validate once for the whole chain; the fast path never
  // re-parses or re-validates (R1 amortization).
  const auto parsed = net::parse_packet(packet);
  if (!parsed || !net::verify_ipv4_checksum(packet, parsed->l3_offset)) {
    return std::nullopt;
  }
  return classify(packet, &*parsed);
}

std::optional<PacketClassifier::Classification> PacketClassifier::classify(
    net::Packet& packet, const net::ParsedPacket* pre_parsed) {
  if (pre_parsed == nullptr) return std::nullopt;
  const net::ParsedPacket& parsed = *pre_parsed;

  Classification result;
  result.parsed = parsed;
  result.teardown = parsed.is_tcp() && parsed.has_fin_or_rst();

  // Hash once; the same value serves the lookup, the insert and FID
  // assignment (FID = low 20 bits of this hash).
  const auto flow = HashedTuple::of(net::extract_five_tuple(packet, parsed));
  const net::FiveTuple& tuple = flow.tuple;
  const std::uint64_t stamp = packet.arrival_cycle() != 0
                                  ? packet.arrival_cycle()
                                  : util::CycleClock::now();
  if (FlowRecord* record = by_tuple_.find(tuple, flow.hash)) {
    result.path = Path::kSubsequent;
    result.fid = record->fid;
    record->last_seen_cycles = stamp;
    ++subsequent_count_;
  } else {
    result.path = Path::kInitial;
    result.fid = assign_fid(flow.hash);
    by_tuple_.try_emplace(tuple, flow.hash, FlowRecord{result.fid, stamp});
    by_fid_.try_emplace(result.fid, tuple);
    ++initial_count_;
  }

  packet.set_fid(result.fid);
  packet.set_initial(result.path == Path::kInitial);
  return result;
}

std::uint32_t PacketClassifier::assign_fid(FlowHash hash) {
  std::uint32_t fid = static_cast<std::uint32_t>(hash.value) & net::kFidMask;
  // Linear probe past FIDs held by other live flows.
  while (by_fid_.contains(fid)) {
    fid = (fid + 1) & net::kFidMask;
  }
  return fid;
}

void PacketClassifier::release_flow(std::uint32_t fid) {
  const net::FiveTuple* tuple = by_fid_.find(fid);
  if (tuple == nullptr) return;
  by_tuple_.erase(*tuple);
  by_fid_.erase(fid);
}

std::vector<PacketClassifier::ActiveFlow> PacketClassifier::active_tuples()
    const {
  std::vector<ActiveFlow> flows;
  flows.reserve(by_tuple_.size());
  by_tuple_.for_each(
      [&flows](const net::FiveTuple& tuple, const FlowRecord& record) {
        flows.push_back({tuple, record.fid, record.last_seen_cycles});
      });
  return flows;
}

std::uint32_t PacketClassifier::adopt_flow(const net::FiveTuple& tuple,
                                           std::uint64_t last_seen_cycles) {
  const std::uint32_t fid = assign_fid(FlowHash{tuple.hash()});
  by_tuple_.try_emplace(tuple, FlowRecord{fid, last_seen_cycles});
  by_fid_.try_emplace(fid, tuple);
  return fid;
}

std::vector<std::uint32_t> PacketClassifier::collect_idle(
    std::uint64_t now_cycles, std::uint64_t max_age_cycles) const {
  std::vector<std::uint32_t> idle;
  by_tuple_.for_each([&](const net::FiveTuple&, const FlowRecord& record) {
    if (now_cycles - record.last_seen_cycles > max_age_cycles) {
      idle.push_back(record.fid);
    }
  });
  return idle;
}

void PacketClassifier::clear() {
  by_tuple_.clear();
  by_fid_.clear();
}

}  // namespace speedybox::core
