// State functions (§IV-A2): the recordable form of an NF's stateful work —
// payload inspection, counter updates, connection tracking. Each state
// function is a callable handler plus a payload-access class
// (WRITE/READ/IGNORE) that drives the Table-I parallelism analysis.
//
// Handlers are closures capturing the NF's internal state; invoking the
// handler on the fast path is exactly the paper's "executes the state
// functions by invoking the function handlers as recorded".
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/packet.hpp"

namespace speedybox::core {

/// Payload access classes, ordered by priority (§V-C2:
/// WRITE > READ > IGNORE determines a batch's class).
enum class PayloadAccess : std::uint8_t { kIgnore = 0, kRead = 1, kWrite = 2 };

std::string_view payload_access_name(PayloadAccess access) noexcept;

using StateFunctionHandler =
    std::function<void(net::Packet&, const net::ParsedPacket&)>;

struct StateFunction {
  StateFunctionHandler handler;
  PayloadAccess access = PayloadAccess::kIgnore;
  std::string name;  // diagnostics / equivalence audits
};

/// All state functions one NF recorded for a flow (§V-C1: "we define all
/// state functions of a rule as a state function batch"). Functions within
/// a batch always execute in recorded order.
struct StateFunctionBatch {
  std::size_t nf_index = 0;      // position of the owning NF in the chain
  std::string nf_name;
  std::vector<StateFunction> functions;

  /// Batch access class = highest-priority member access (§V-C2).
  PayloadAccess access() const noexcept {
    PayloadAccess max = PayloadAccess::kIgnore;
    for (const auto& fn : functions) {
      if (static_cast<int>(fn.access) > static_cast<int>(max)) {
        max = fn.access;
      }
    }
    return max;
  }

  bool empty() const noexcept { return functions.empty(); }

  void execute(net::Packet& packet, const net::ParsedPacket& parsed) const {
    for (const auto& fn : functions) fn.handler(packet, parsed);
  }
};

inline std::string_view payload_access_name(PayloadAccess access) noexcept {
  switch (access) {
    case PayloadAccess::kIgnore: return "ignore";
    case PayloadAccess::kRead: return "read";
    case PayloadAccess::kWrite: return "write";
  }
  return "?";
}

}  // namespace speedybox::core
