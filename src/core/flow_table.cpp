#include "core/flow_table.hpp"

namespace speedybox::core {

SlabArena::SlabArena(std::size_t record_size) noexcept
    : record_size_(record_size == 0 ? 1 : record_size) {}

std::uint32_t SlabArena::allocate() {
  std::uint32_t index;
  if (!free_.empty()) {
    index = free_.back();
    free_.pop_back();
  } else {
    // With an empty free list every carved record is live, so the live
    // count is exactly the next fresh index.
    if (live_ == chunks_.size() * kRecordsPerChunk) {
      chunks_.push_back(
          std::make_unique<std::byte[]>(kRecordsPerChunk * record_size_));
    }
    index = static_cast<std::uint32_t>(live_);
  }
  // Zero-fill so record padding bytes are deterministic: migration export
  // can memcpy the record image and byte-equivalence holds across
  // export → import → export round trips.
  std::memset(data(index), 0, record_size_);
  ++live_;
  return index;
}

void SlabArena::release(std::uint32_t index) noexcept {
  free_.push_back(index);
  --live_;
}

void SlabArena::clear() noexcept {
  chunks_.clear();
  free_.clear();
  live_ = 0;
}

}  // namespace speedybox::core
