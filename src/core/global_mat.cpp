#include "core/global_mat.hpp"

#include "util/cycle_clock.hpp"
#include "util/logging.hpp"

namespace speedybox::core {

void GlobalMat::consolidate_flow(std::uint32_t fid) {
  std::vector<HeaderAction> all_actions;
  std::vector<StateFunctionBatch> batches;

  for (const LocalMat* mat : chain_) {
    std::optional<LocalRule> rule = mat->snapshot(fid);
    if (!rule) continue;
    all_actions.insert(all_actions.end(), rule->header_actions.begin(),
                       rule->header_actions.end());
    if (!rule->state_functions.empty()) {
      StateFunctionBatch batch;
      batch.nf_index = mat->nf_index();
      batch.nf_name = mat->nf_name();
      batch.functions = std::move(rule->state_functions);
      batches.push_back(std::move(batch));
    }
  }

  // A fresh rule object per consolidation: in-flight holders of the old
  // snapshot stay consistent; the table points new packets at the new rule.
  auto rule = std::make_shared<ConsolidatedRule>();
  const auto* existing = rules_.find(fid);
  rule->version = (existing != nullptr ? (*existing)->version : 0) + 1;
  rule->action = consolidate(all_actions);
  rule->schedule = build_schedule(batches);
  rule->batches = std::move(batches);
  rule->check_events = events_.has_events(fid);
  ++consolidations_;

  SB_LOG_DEBUG("global_mat", "consolidated fid=%u v=%llu: %s", fid,
               static_cast<unsigned long long>(rule->version),
               rule->action.to_string().c_str());
  rules_.insert_or_assign(fid, std::move(rule));
}

ConsolidatedRule* GlobalMat::apply_header_phase(
    net::Packet& packet, bool* dropped, std::size_t* events_triggered) {
  const std::uint32_t fid = packet.fid();
  const auto* cell = rules_.find(fid);
  if (cell == nullptr) return nullptr;
  // Borrowed pointer, no refcount traffic on the per-packet path. An event
  // below installs (and frees) a *new* rule object, so re-fetch afterwards
  // to process this packet against the updated rule.
  ConsolidatedRule* rule_ref = cell->get();

  // 1. Event check (§V-A Observation 2): decide whether the consolidated
  //    result can be reused before reusing it. Flows without registered
  //    events skip the Event Table entirely (check_events is refreshed at
  //    every consolidation).
  if (rule_ref->check_events) {
    *events_triggered = events_.check(
        fid, [this, fid](const EventRegistration& event, EventUpdate update) {
          if (event.nf_index < chain_.size()) {
            LocalMat* mat = chain_[event.nf_index];
            if (update.header_actions) {
              mat->replace_header_actions(fid,
                                          std::move(*update.header_actions));
            }
            if (update.state_functions) {
              mat->replace_state_functions(fid,
                                           std::move(*update.state_functions));
            }
          }
          SB_LOG_INFO("event_table", "event '%s' triggered for fid=%u",
                      event.name.c_str(), fid);
          consolidate_flow(fid);
        });
    if (*events_triggered > 0) {
      const auto* updated = rules_.find(fid);
      if (updated == nullptr) return nullptr;
      rule_ref = updated->get();
    }
  }

  // 2. Consolidated header action.
  apply_consolidated(rule_ref->action, rule_ref->patch, packet);
  *dropped = packet.dropped();
  return rule_ref;
}

GlobalMat::FastHeaderResult GlobalMat::process_header(net::Packet& packet) {
  FastHeaderResult result;
  const ConsolidatedRule* rule = apply_header_phase(
      packet, &result.dropped, &result.events_triggered);
  result.rule_hit = rule != nullptr;
  if (rule != nullptr) {
    result.degraded_rule = rule->degraded_default;
    // Threaded callers need an owning pin: the descriptor outlives this
    // call and must survive a concurrent re-consolidation.
    result.rule = find_shared(packet.fid());
  }
  return result;
}

GlobalMat::FastPathResult GlobalMat::process(
    net::Packet& packet, bool measure_batches,
    const net::ParsedPacket* parsed_hint) {
  FastPathResult result;
  auto rule_ref = apply_header_phase(packet, &result.dropped,
                                     &result.events_triggered);
  if (rule_ref == nullptr) return result;
  result.rule_hit = true;
  result.degraded_rule = rule_ref->degraded_default;
  if (result.dropped) {
    return result;  // early drop: no state function runs for dropped flows
  }
  ConsolidatedRule& rule = *rule_ref;

  // 3. State-function batches. Execution is in chain order (correctness);
  //    the parallel schedule provides the modeled critical-path latency the
  //    platforms account for (§V-C2). The classifier's parse is reused
  //    unless the consolidated action restructured the header chain.
  if (!rule.batches.empty()) {
    const bool layout_intact = parsed_hint != nullptr &&
                               rule.action.leading_decaps.empty() &&
                               rule.action.trailing_encaps.empty();
    std::optional<net::ParsedPacket> reparsed;
    if (!layout_intact) {
      reparsed = net::parse_packet(packet);
      if (!reparsed) return result;
    }
    const net::ParsedPacket& parsed =
        layout_intact ? *parsed_hint : *reparsed;

    if (measure_batches) {
      for (const auto& group : rule.schedule.groups) {
        if (group.size() > 1) ++result.multi_batch_groups;
      }
      if (rule.cost_samples < ConsolidatedRule::kCostSampleWindow) {
        // Sampling phase: one timer pair per batch to learn the Table-I
        // critical-path fraction of this rule's schedule.
        std::vector<std::uint64_t> costs(rule.batches.size(), 0);
        result.timer_pairs =
            static_cast<std::uint32_t>(rule.batches.size());
        for (std::size_t i = 0; i < rule.batches.size(); ++i) {
          const std::uint64_t b0 = util::CycleClock::now();
          rule.batches[i].execute(packet, parsed);
          costs[i] = util::CycleClock::segment(b0, util::CycleClock::now());
        }
        for (const std::uint64_t cost : costs) {
          result.sf_total_cycles += cost;
        }
        result.sf_critical_path_cycles = rule.schedule.critical_path(costs);
        const double fraction =
            result.sf_total_cycles > 0
                ? static_cast<double>(result.sf_critical_path_cycles) /
                      static_cast<double>(result.sf_total_cycles)
                : 1.0;
        // Running mean of the fraction over the sample window.
        rule.critical_fraction =
            (rule.critical_fraction * rule.cost_samples + fraction) /
            (rule.cost_samples + 1);
        ++rule.cost_samples;
      } else {
        // Steady state: one timer pair regardless of batch count.
        result.timer_pairs = 1;
        const std::uint64_t t0 = util::CycleClock::now();
        for (const auto& batch : rule.batches) {
          batch.execute(packet, parsed);
        }
        result.sf_total_cycles =
            util::CycleClock::segment(t0, util::CycleClock::now());
        result.sf_critical_path_cycles = static_cast<std::uint64_t>(
            static_cast<double>(result.sf_total_cycles) *
            rule.critical_fraction);
      }
    } else if (executor_ != nullptr) {
      executor_->execute(rule.schedule, rule.batches, packet, parsed);
    } else {
      for (const auto& batch : rule.batches) {
        batch.execute(packet, parsed);
      }
    }
  }
  return result;
}

void GlobalMat::install_default_rule(std::uint32_t fid) {
  auto rule = std::make_shared<ConsolidatedRule>();
  const auto* existing = rules_.find(fid);
  rule->version = (existing != nullptr ? (*existing)->version : 0) + 1;
  rule->degraded_default = true;
  SB_LOG_DEBUG("global_mat", "degraded default rule for fid=%u", fid);
  rules_.insert_or_assign(fid, std::move(rule));
}

void GlobalMat::erase_flow(std::uint32_t fid, bool run_hooks) {
  rules_.erase(fid);
  events_.erase_flow(fid);
  for (LocalMat* mat : chain_) {
    if (run_hooks) mat->run_teardown_hooks(fid);
    mat->erase_flow(fid);
  }
}

void GlobalMat::clear() {
  rules_.clear();
  events_.clear();
  for (LocalMat* mat : chain_) mat->clear();
}

}  // namespace speedybox::core
