// The Packet Classifier (§III, §VI-B): front door of the SpeedyBox data
// path. For every arriving packet it
//
//   1. parses the header chain once (the fast path never re-parses),
//   2. hashes the five-tuple to a 20-bit FID and attaches it as descriptor
//      metadata — the FID stays consistent along the chain even if an NF
//      rewrites the five-tuple,
//   3. dispatches: unseen flow -> initial path (original chain, recording);
//      known flow -> subsequent path (Global MAT),
//   4. tracks flow state: a FIN or RST marks the flow for teardown so the
//      rules in the Global and Local MATs can be freed.
//
// FID collisions (two live tuples hashing to the same 20-bit value) are
// resolved by linear probing in FID space, keeping the FID↔flow mapping
// one-to-one among active flows.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/flow_table.hpp"
#include "net/packet.hpp"

namespace speedybox::core {

class PacketClassifier {
 public:
  enum class Path : std::uint8_t { kInitial, kSubsequent };

  struct Classification {
    Path path = Path::kInitial;
    std::uint32_t fid = net::kInvalidFid;
    bool teardown = false;  // FIN/RST seen on this packet
    net::ParsedPacket parsed;
  };

  /// Parse + FID assignment + dispatch decision. Attaches FID and the
  /// initial/subsequent flag to the packet metadata. Returns nullopt for
  /// malformed packets (caller drops them).
  std::optional<Classification> classify(net::Packet& packet);

  /// Batched front end: `pre_parsed` is this packet's parse from the batch
  /// pre-pass, already checksum-validated — the lookup/FID half runs
  /// without re-parsing. Passing nullptr means the pre-pass found the
  /// packet malformed: the classification fails exactly as the parsing
  /// overload's would.
  std::optional<Classification> classify(
      net::Packet& packet, const net::ParsedPacket* pre_parsed);

  /// Side-effect-free lookup: the FID of a known flow, nullopt for an
  /// unseen tuple. No counters move, no FID is assigned, last-seen stays
  /// untouched. The slo-early-drop ingress gate uses this to ask "is this
  /// flow already doomed?" before spending any classify/record work.
  std::optional<std::uint32_t> peek(const net::FiveTuple& tuple) const {
    const FlowRecord* record = by_tuple_.find(tuple);
    if (record == nullptr) return std::nullopt;
    return record->fid;
  }

  /// Free the FID after the teardown packet has been fully processed.
  void release_flow(std::uint32_t fid);

  /// An active flow as seen by migration: its tuple, FID and last-seen
  /// stamp (preserved across shards so idle expiry keeps its clock).
  struct ActiveFlow {
    net::FiveTuple tuple;
    std::uint32_t fid = net::kInvalidFid;
    std::uint64_t last_seen_cycles = 0;
  };

  /// Snapshot of every active flow — what live resharding enumerates to
  /// decide which flows leave this shard.
  std::vector<ActiveFlow> active_tuples() const;

  /// Admit a flow migrated from another shard: assigns a FID (same probing
  /// as classify) and installs the tuple with its original last-seen stamp.
  /// Unlike classify this does NOT count an initial packet — the flow is
  /// established, and its next packet must take the subsequent path.
  std::uint32_t adopt_flow(const net::FiveTuple& tuple,
                           std::uint64_t last_seen_cycles);

  /// FIDs of flows whose last packet is older than `max_age_cycles` before
  /// `now`. FIN/RST covers TCP teardown (§VI-B); idle expiry is the
  /// complementary garbage collection for UDP and abandoned connections.
  /// The caller tears each flow down (Global MAT erase + release_flow).
  std::vector<std::uint32_t> collect_idle(std::uint64_t now_cycles,
                                          std::uint64_t max_age_cycles) const;

  std::size_t active_flows() const noexcept { return by_fid_.size(); }
  std::uint64_t initial_count() const noexcept { return initial_count_; }
  std::uint64_t subsequent_count() const noexcept { return subsequent_count_; }

  /// Flow-table telemetry, both directions merged (tuple->record plus
  /// fid->tuple).
  FlowTableStats table_stats() const {
    FlowTableStats stats = by_tuple_.stats();
    stats.merge_from(by_fid_.stats());
    return stats;
  }

  void clear();

 private:
  struct FlowRecord {
    std::uint32_t fid = net::kInvalidFid;
    std::uint64_t last_seen_cycles = 0;
  };

  std::uint32_t assign_fid(FlowHash hash);

  /// Flow table: the single per-packet lookup. The tuple is hashed once in
  /// classify() and the hash reused for the lookup, the insert and FID
  /// assignment. last-seen rides in the same record (updated in place), and
  /// the timestamp reuses the packet's arrival stamp when the caller
  /// provided one, so idle tracking adds no extra table operation or
  /// counter read to the fast path.
  FlowTable<net::FiveTuple, FlowRecord> by_tuple_;
  FlowTable<std::uint32_t, net::FiveTuple> by_fid_;
  std::uint64_t initial_count_ = 0;
  std::uint64_t subsequent_count_ = 0;
};

}  // namespace speedybox::core
