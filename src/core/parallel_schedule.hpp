// Table-I dependency analysis: which cross-NF state-function batches may
// execute in parallel on the fast path (§V-C2).
//
// The paper's rule (Table I, with batch1 preceding batch2 in chain order):
// the pair is parallelizable unless batch1 WRITEs the payload and batch2
// does not IGNORE it. Header dependencies never block parallelism because
// the Global MAT has already consolidated all header actions for the flow.
#pragma once

#include <cstddef>
#include <vector>

#include "core/state_function.hpp"

namespace speedybox::core {

/// Table-I entry for an ordered pair (batch1 before batch2).
constexpr bool parallelizable(PayloadAccess batch1,
                              PayloadAccess batch2) noexcept {
  return !(batch1 == PayloadAccess::kWrite &&
           batch2 != PayloadAccess::kIgnore);
}

/// Groups of batch indices that can run concurrently; groups execute in
/// sequence. A batch joins the current group only if it is parallelizable
/// with every batch already in the group (pairwise, in chain order).
struct ParallelSchedule {
  std::vector<std::vector<std::size_t>> groups;

  std::size_t group_count() const noexcept { return groups.size(); }

  /// Modeled critical-path cost: sum over groups of the max member cost.
  /// `costs[i]` is the measured cycle cost of batch i.
  std::uint64_t critical_path(const std::vector<std::uint64_t>& costs) const;
};

/// Build the schedule for the given batches (in chain order).
ParallelSchedule build_schedule(const std::vector<StateFunctionBatch>& batches);

}  // namespace speedybox::core
