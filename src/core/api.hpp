// SpeedyBox instrumentation APIs (§IV-B, Figure 2).
//
// An NF receives a SpeedyBoxContext while processing the *initial* packet of
// a flow on the recording path, and uses it to describe what it just did:
//
//   ctx->add_header_action(HeaderAction::modify(kDstPort, 8080));
//   ctx->add_state_function({handler, PayloadAccess::kRead, "inspect"});
//   ctx->register_event("failover", condition, update);
//
// The calls only *record* behavior — they never change the NF's own
// processing — which is why integrating an NF takes a handful of lines
// (Table II). On the baseline path and for pure observation the context is
// null and NFs behave exactly as unmodified NFs.
//
// The free functions at the bottom mirror Figure 2's C-style signatures
// one-for-one for fidelity with the paper; they are thin wrappers over the
// context methods.
#pragma once

#include <cstdint>
#include <utility>

#include "core/event_table.hpp"
#include "core/header_action.hpp"
#include "core/local_mat.hpp"
#include "core/state_function.hpp"
#include "net/packet.hpp"

namespace speedybox::core {

class SpeedyBoxContext {
 public:
  SpeedyBoxContext(LocalMat& local_mat, EventTable& events,
                   std::uint32_t fid) noexcept
      : local_mat_(&local_mat), events_(&events), fid_(fid) {}

  std::uint32_t fid() const noexcept { return fid_; }

  /// Figure 2: localmat_add_HA.
  void add_header_action(const HeaderAction& action) {
    local_mat_->add_header_action(fid_, action);
  }

  /// Figure 2: localmat_add_SF.
  void add_state_function(StateFunction fn) {
    local_mat_->add_state_function(fid_, std::move(fn));
  }

  /// Release NF-internal per-flow state when the flow is torn down. On the
  /// fast path the NF never sees the FIN/RST packet, so cleanup it would do
  /// inline runs through this hook instead.
  void on_teardown(std::function<void()> hook) {
    local_mat_->add_teardown_hook(fid_, std::move(hook));
  }

  /// Figure 2: register_event.
  void register_event(std::string name, ConditionHandler condition,
                      UpdateHandler update, bool one_shot = true) {
    EventRegistration event;
    event.fid = fid_;
    event.nf_index = local_mat_->nf_index();
    event.name = std::move(name);
    event.condition = std::move(condition);
    event.update = std::move(update);
    event.one_shot = one_shot;
    events_->register_event(std::move(event));
  }

 private:
  LocalMat* local_mat_;
  EventTable* events_;
  std::uint32_t fid_;
};

// --- Figure-2 literal surface ---------------------------------------------

/// "int nf_extract_fid(packet_descriptor*)": the FID the classifier attached
/// to the descriptor.
inline std::uint32_t nf_extract_fid(const net::Packet& packet) noexcept {
  return packet.fid();
}

/// "void localmat_add_HA(int FID, HA header_action, args* arg_list)".
inline void localmat_add_HA(SpeedyBoxContext* ctx,
                            const HeaderAction& header_action) {
  if (ctx != nullptr) ctx->add_header_action(header_action);
}

/// "void localmat_add_SF(int FID, function_handler*, int function_type,
///  args* arg_list)".
inline void localmat_add_SF(SpeedyBoxContext* ctx, StateFunctionHandler fn,
                            PayloadAccess function_type,
                            std::string name = {}) {
  if (ctx != nullptr) {
    ctx->add_state_function(
        StateFunction{std::move(fn), function_type, std::move(name)});
  }
}

/// "void register_event(int FID, condition_handler*, args* arg_list,
///  HA update_action, update_function_handler*)".
inline void register_event(SpeedyBoxContext* ctx, std::string name,
                           ConditionHandler condition, UpdateHandler update,
                           bool one_shot = true) {
  if (ctx != nullptr) {
    ctx->register_event(std::move(name), std::move(condition),
                        std::move(update), one_shot);
  }
}

}  // namespace speedybox::core
