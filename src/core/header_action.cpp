#include "core/header_action.hpp"

#include <algorithm>

#include "net/byte_order.hpp"
#include "net/checksum.hpp"

namespace speedybox::core {

std::string_view header_action_type_name(HeaderActionType type) noexcept {
  switch (type) {
    case HeaderActionType::kForward: return "forward";
    case HeaderActionType::kDrop: return "drop";
    case HeaderActionType::kModify: return "modify";
    case HeaderActionType::kEncap: return "encap";
    case HeaderActionType::kDecap: return "decap";
  }
  return "?";
}

std::string HeaderAction::to_string() const {
  std::string out{header_action_type_name(type)};
  switch (type) {
    case HeaderActionType::kModify:
      out += "(";
      out += net::field_name(field);
      out += "=" + std::to_string(value) + ")";
      break;
    case HeaderActionType::kEncap:
    case HeaderActionType::kDecap:
      out += encap.kind == net::EncapKind::kAh ? "(ah)" : "(ipip)";
      break;
    default:
      break;
  }
  return out;
}

std::string ConsolidatedAction::to_string() const {
  if (drop) return "drop";
  std::string out;
  for (const auto kind : leading_decaps) {
    out += kind == net::EncapKind::kAh ? "decap(ah);" : "decap(ipip);";
  }
  for (std::size_t i = 0; i < field_writes.size(); ++i) {
    if (field_writes[i]) {
      out += "modify(";
      out += net::field_name(static_cast<net::HeaderField>(i));
      out += "=" + std::to_string(*field_writes[i]) + ");";
    }
  }
  for (const auto& spec : trailing_encaps) {
    out += spec.kind == net::EncapKind::kAh ? "encap(ah);" : "encap(ipip);";
  }
  if (out.empty()) return "forward";
  return out;
}

ConsolidatedAction consolidate(std::span<const HeaderAction> actions) {
  ConsolidatedAction out;
  for (const HeaderAction& action : actions) {
    switch (action.type) {
      case HeaderActionType::kForward:
        break;
      case HeaderActionType::kDrop:
        // Drop dominates the entire list (§V-B): one drop anywhere means the
        // packet never needs any other processing.
        out.drop = true;
        out.field_writes = {};
        out.leading_decaps.clear();
        out.trailing_encaps.clear();
        return out;
      case HeaderActionType::kModify:
        // Last writer wins per field; distinct fields accumulate into one
        // combined write (the XOR/OR merge, compiled by BytePatch).
        out.field_writes[static_cast<std::size_t>(action.field)] =
            action.value;
        break;
      case HeaderActionType::kEncap:
        out.trailing_encaps.push_back(action.encap);
        break;
      case HeaderActionType::kDecap:
        // Stack simulation: a decap cancels the nearest pending encap of the
        // same kind; with no pending encap it strips a header the packet
        // arrived with, so it runs before the field writes.
        if (!out.trailing_encaps.empty() &&
            out.trailing_encaps.back().kind == action.encap.kind) {
          out.trailing_encaps.pop_back();
        } else {
          out.leading_decaps.push_back(action.encap.kind);
        }
        break;
    }
  }
  return out;
}

BytePatch BytePatch::compile(const ConsolidatedAction& action,
                             const net::ParsedPacket& parsed) {
  BytePatch patch;
  patch.inner_l3_ = parsed.inner_l3_offset;
  patch.l4_ = parsed.l4_offset;

  std::size_t lo = SIZE_MAX;
  std::size_t hi = 0;
  struct Write {
    std::size_t offset;
    std::size_t width;
    std::uint32_t value;
  };
  std::vector<Write> writes;
  for (std::size_t i = 0; i < action.field_writes.size(); ++i) {
    if (!action.field_writes[i]) continue;
    const auto ref =
        net::field_ref(parsed, static_cast<net::HeaderField>(i));
    if (!ref) continue;
    writes.push_back({ref->offset, ref->width, *action.field_writes[i]});
    lo = std::min(lo, ref->offset);
    hi = std::max(hi, ref->offset + ref->width);
  }
  if (writes.empty()) return patch;

  patch.base_offset_ = lo;
  patch.length_ = std::min(hi - lo, kMaxWindow);
  for (const Write& w : writes) {
    for (std::size_t b = 0; b < w.width; ++b) {
      const std::size_t rel = w.offset + b - lo;
      if (rel >= patch.length_) continue;
      patch.mask_[rel] = 0xFF;
      patch.value_[rel] = static_cast<std::uint8_t>(
          w.value >> (8 * (w.width - 1 - b)));
    }
  }
  return patch;
}

void BytePatch::apply(net::Packet& packet) const noexcept {
  auto bytes = packet.bytes();
  if (base_offset_ + length_ > bytes.size()) return;
  std::uint8_t* base = bytes.data() + base_offset_;
  for (std::size_t i = 0; i < length_; ++i) {
    base[i] = static_cast<std::uint8_t>((base[i] & ~mask_[i]) | value_[i]);
  }
}

void apply_action_baseline(const HeaderAction& action, net::Packet& packet) {
  switch (action.type) {
    case HeaderActionType::kForward:
      return;
    case HeaderActionType::kDrop:
      packet.mark_dropped();
      return;
    case HeaderActionType::kModify: {
      const auto parsed = net::parse_packet(packet);
      if (!parsed) return;
      net::set_field(packet, *parsed, action.field, action.value);
      // Baseline NFs keep the packet wire-valid after every rewrite — the
      // per-NF checksum cost the fast path amortizes to one fix-up.
      net::write_ipv4_checksum(packet, parsed->inner_l3_offset);
      net::write_l4_checksum(packet, *parsed);
      return;
    }
    case HeaderActionType::kEncap:
      if (action.encap.kind == net::EncapKind::kAh) {
        net::encap_ah(packet, action.encap.spi);
      } else {
        net::encap_ipip(packet, action.encap.tunnel_src,
                        action.encap.tunnel_dst);
      }
      return;
    case HeaderActionType::kDecap:
      if (action.encap.kind == net::EncapKind::kAh) {
        net::decap_ah(packet);
      } else {
        net::decap_ipip(packet);
      }
      return;
  }
}

void apply_consolidated(const ConsolidatedAction& action, BytePatch& patch,
                        net::Packet& packet) {
  if (action.drop) {
    packet.mark_dropped();
    return;
  }
  for (const auto kind : action.leading_decaps) {
    if (kind == net::EncapKind::kAh) {
      net::decap_ah(packet);
    } else {
      net::decap_ipip(packet);
    }
  }

  const bool structural =
      !action.leading_decaps.empty() || !action.trailing_encaps.empty();
  bool need_checksum_fix = structural;

  if (action.has_field_writes()) {
    // The compiled patch is valid as long as the parse shape (header
    // offsets) matches; for packets of one flow it almost always does.
    if (patch.empty() || structural) {
      const auto parsed = net::parse_packet(packet);
      if (!parsed) return;
      if (!patch.matches_shape(*parsed)) {
        patch = BytePatch::compile(action, *parsed);
      }
    }
    patch.apply(packet);
    need_checksum_fix = true;
  }

  for (const auto& spec : action.trailing_encaps) {
    if (spec.kind == net::EncapKind::kAh) {
      net::encap_ah(packet, spec.spi);
    } else {
      net::encap_ipip(packet, spec.tunnel_src, spec.tunnel_dst);
    }
  }

  if (need_checksum_fix) {
    const auto parsed = net::parse_packet(packet);
    if (parsed) net::fix_all_checksums(packet, *parsed);
  }
}

}  // namespace speedybox::core
