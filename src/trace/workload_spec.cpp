#include "trace/workload_spec.hpp"

#include <stdexcept>

#include "trace/payload_synth.hpp"

namespace speedybox::trace {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error("workload spec: " + message);
}

std::uint64_t integer_field(const telemetry::Json& value, const char* key,
                            std::uint64_t lo) {
  if (!value.is_integer() || value.as_integer() < lo) {
    fail(std::string("field '") + key + "' must be an integer >= " +
         std::to_string(lo));
  }
  return value.as_integer();
}

}  // namespace

telemetry::Json WorkloadSpec::to_json() const {
  using telemetry::Json;
  Json json = Json::object();
  json.set("kind", Json::string(kind));
  json.set("flows", Json::integer(flows));
  json.set("packets_per_flow", Json::integer(packets_per_flow));
  json.set("payload_size", Json::integer(payload_size));
  json.set("snort_match_fraction", Json::number(snort_match_fraction));
  json.set("seed", Json::integer(seed));
  if (repeat > 1) json.set("repeat", Json::integer(repeat));
  return json;
}

WorkloadSpec WorkloadSpec::from_json(const telemetry::Json& json) {
  if (!json.is_object()) fail("must be an object");
  WorkloadSpec spec;
  for (const auto& [key, value] : json.members()) {
    if (key == "kind") {
      if (!value.is_string()) fail("field 'kind' must be a string");
      spec.kind = value.as_string();
    } else if (key == "flows") {
      spec.flows =
          static_cast<std::size_t>(integer_field(value, "flows", 0));
    } else if (key == "packets_per_flow") {
      spec.packets_per_flow = static_cast<std::uint32_t>(
          integer_field(value, "packets_per_flow", 1));
    } else if (key == "payload_size") {
      spec.payload_size =
          static_cast<std::size_t>(integer_field(value, "payload_size", 0));
    } else if (key == "snort_match_fraction") {
      if (!value.is_number()) {
        fail("field 'snort_match_fraction' must be a number");
      }
      spec.snort_match_fraction = value.as_number();
      if (spec.snort_match_fraction < 0.0 ||
          spec.snort_match_fraction > 1.0) {
        fail("field 'snort_match_fraction' must be within [0, 1]");
      }
    } else if (key == "seed") {
      spec.seed = integer_field(value, "seed", 0);
    } else if (key == "repeat") {
      spec.repeat =
          static_cast<std::uint32_t>(integer_field(value, "repeat", 1));
    } else {
      fail("unknown field '" + key + "'");
    }
  }
  spec.validate();
  return spec;
}

void WorkloadSpec::validate() const {
  bool scenario = false;
  for (const std::string& name : named_scenarios()) {
    if (kind == name) scenario = true;
  }
  if (kind != "uniform" && kind != "datacenter" && !scenario) {
    std::string names = "uniform, datacenter";
    for (const std::string& name : named_scenarios()) names += ", " + name;
    fail("unknown kind '" + kind + "' (want one of: " + names + ")");
  }
  if (!scenario && flows == 0) fail("kind '" + kind + "' needs flows > 0");
  if (repeat == 0) fail("repeat must be >= 1");
  if (snort_match_fraction < 0.0 || snort_match_fraction > 1.0) {
    fail("snort_match_fraction must be within [0, 1]");
  }
}

Workload WorkloadSpec::build() const {
  validate();
  Workload workload;
  if (kind == "datacenter") {
    DatacenterWorkloadConfig config;
    config.flow_count = flows;
    config.payload_size = payload_size;
    config.seed = seed;
    workload = make_datacenter_workload(config);
  } else if (kind == "uniform") {
    workload =
        make_uniform_workload(flows, packets_per_flow, payload_size, seed);
  } else {
    ScenarioScale scale;
    scale.flows = flows;  // 0 keeps the scenario's default population
    scale.payload_size = payload_size;
    scale.seed = seed;
    workload = *make_named_scenario(kind, scale);
  }
  // Same planting chainsim applies: the chain may contain an IDS, and the
  // planted contents are harmless to every other NF.
  PayloadSynthConfig synth;
  synth.match_fraction = snort_match_fraction;
  synth.seed = seed ^ 0x5EED;
  plant_rule_contents(workload, default_snort_rules(), synth);
  if (repeat > 1) {
    const std::vector<TracePacket> round = workload.order;
    workload.order.reserve(round.size() * repeat);
    for (std::uint32_t r = 1; r < repeat; ++r) {
      workload.order.insert(workload.order.end(), round.begin(), round.end());
    }
  }
  return workload;
}

}  // namespace speedybox::trace
