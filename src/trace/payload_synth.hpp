// Payload synthesis (§VII-B3): "Since the payloads in the trace are null for
// anonymization, we synthesize the testing traffic with customized payloads
// according to the inspection rules in Snort."
//
// Given a Snort rule set, plants the content strings of chosen rules into a
// configurable fraction of a workload's flow payloads, so the IDS exercises
// its Pass/Alert/Log branches on realistic proportions of traffic.
#pragma once

#include <cstdint>
#include <vector>

#include "nf/snort_rule.hpp"
#include "trace/workload.hpp"

namespace speedybox::trace {

struct PayloadSynthConfig {
  /// Fraction of flows that receive the contents of some rule.
  double match_fraction = 0.2;
  std::uint64_t seed = 1234;
};

/// Mutates `workload` in place: for a `match_fraction` of flows, pick a rule
/// (round-robin over `rules`) and embed all its content strings in the flow
/// payload at deterministic offsets. Returns, per flow, the index of the
/// planted rule or -1.
std::vector<std::int32_t> plant_rule_contents(
    Workload& workload, const std::vector<nf::SnortRule>& rules,
    const PayloadSynthConfig& config);

/// The default rule set used by examples/benchmarks: pass, alert and log
/// rules covering all three Snort inspection outcomes (§VII-C-1).
std::vector<nf::SnortRule> default_snort_rules();

}  // namespace speedybox::trace
