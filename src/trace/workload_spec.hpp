// Serializable workload description (DESIGN.md §14): the generator half of
// chainsim's --workload/--flows/--packets flags as a JSON-round-trippable
// value, so documents that describe deployments (tenant host specs) can
// carry each tenant's traffic alongside its chain.
//
// A WorkloadSpec names one of the existing generators — "uniform",
// "datacenter", or a named scenario ("elephant-mice", "sync-burst",
// "flash-crowd", "syn-flood") — plus its scale knobs, and build() produces
// the same trace::Workload chainsim's in-process path would, including the
// §VII-B3 Snort-payload planting (seed ^ 0x5EED, matching chainsim).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "telemetry/json.hpp"
#include "trace/workload.hpp"

namespace speedybox::trace {

struct WorkloadSpec {
  /// "uniform", "datacenter", or a make_named_scenario name.
  std::string kind = "uniform";
  /// Flow population; 0 keeps a scenario's default population (uniform and
  /// datacenter require > 0).
  std::size_t flows = 64;
  /// Uniform generator only: packets per flow.
  std::uint32_t packets_per_flow = 16;
  std::size_t payload_size = 128;
  /// Fraction of flows that get Snort rule contents planted.
  double snort_match_fraction = 0.2;
  std::uint64_t seed = 42;
  /// Replicate the interleaved schedule this many times (>= 1): lengthens
  /// the trace without changing the flow population.
  std::uint32_t repeat = 1;

  telemetry::Json to_json() const;
  /// Strict: unknown fields and out-of-range values are errors (throws
  /// std::runtime_error naming the field).
  static WorkloadSpec from_json(const telemetry::Json& json);

  /// Throws std::runtime_error on an unknown kind or invalid scale.
  void validate() const;

  /// Materialize the described workload (validates first).
  Workload build() const;

  bool operator==(const WorkloadSpec&) const = default;
};

}  // namespace speedybox::trace
