#include "trace/payload_synth.hpp"

#include <algorithm>
#include <cstring>

#include "util/rng.hpp"

namespace speedybox::trace {

std::vector<std::int32_t> plant_rule_contents(
    Workload& workload, const std::vector<nf::SnortRule>& rules,
    const PayloadSynthConfig& config) {
  util::Rng rng{config.seed};
  std::vector<std::int32_t> planted(workload.flows.size(), -1);
  if (rules.empty()) return planted;

  std::size_t next_rule = 0;
  for (std::size_t f = 0; f < workload.flows.size(); ++f) {
    if (!rng.chance(config.match_fraction)) continue;
    const std::size_t r = next_rule++ % rules.size();
    FlowSpec& flow = workload.flows[f];

    // Embed every content string back-to-back from a deterministic offset,
    // growing the payload if needed.
    std::size_t offset = flow.payload.size() / 4;
    for (const nf::ContentMatch& content : rules[r].contents) {
      // Honor positional constraints so constrained rules actually fire.
      offset = std::max(offset, content.offset);
      if (offset + content.pattern.size() > flow.payload.size()) {
        flow.payload.resize(offset + content.pattern.size(),
                            static_cast<std::uint8_t>('x'));
      }
      std::memcpy(flow.payload.data() + offset, content.pattern.data(),
                  content.pattern.size());
      offset += content.pattern.size() + 3;  // gap so contents don't merge
    }
    planted[f] = static_cast<std::int32_t>(r);
  }
  return planted;
}

std::vector<nf::SnortRule> default_snort_rules() {
  // The canonical rule set lives with the Snort parser in the nf layer so
  // the NF registry (which trace links against) can build `snort` without
  // a dependency cycle; this forwarder keeps the historical trace:: name.
  return nf::default_snort_rules();
}

}  // namespace speedybox::trace
