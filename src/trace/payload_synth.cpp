#include "trace/payload_synth.hpp"

#include <algorithm>
#include <cstring>

#include "util/rng.hpp"

namespace speedybox::trace {

std::vector<std::int32_t> plant_rule_contents(
    Workload& workload, const std::vector<nf::SnortRule>& rules,
    const PayloadSynthConfig& config) {
  util::Rng rng{config.seed};
  std::vector<std::int32_t> planted(workload.flows.size(), -1);
  if (rules.empty()) return planted;

  std::size_t next_rule = 0;
  for (std::size_t f = 0; f < workload.flows.size(); ++f) {
    if (!rng.chance(config.match_fraction)) continue;
    const std::size_t r = next_rule++ % rules.size();
    FlowSpec& flow = workload.flows[f];

    // Embed every content string back-to-back from a deterministic offset,
    // growing the payload if needed.
    std::size_t offset = flow.payload.size() / 4;
    for (const nf::ContentMatch& content : rules[r].contents) {
      // Honor positional constraints so constrained rules actually fire.
      offset = std::max(offset, content.offset);
      if (offset + content.pattern.size() > flow.payload.size()) {
        flow.payload.resize(offset + content.pattern.size(),
                            static_cast<std::uint8_t>('x'));
      }
      std::memcpy(flow.payload.data() + offset, content.pattern.data(),
                  content.pattern.size());
      offset += content.pattern.size() + 3;  // gap so contents don't merge
    }
    planted[f] = static_cast<std::int32_t>(r);
  }
  return planted;
}

std::vector<nf::SnortRule> default_snort_rules() {
  return nf::parse_snort_rules(R"(
# Alert rules: exploit signatures.
alert tcp any any -> any 80 (content:"cmd.exe"; msg:"win shell probe"; sid:1001;)
alert tcp any any -> any 80 (content:"/etc/passwd"; msg:"path traversal"; sid:1002;)
alert tcp any any -> any any (content:"SELECT"; content:"UNION"; msg:"sql injection"; sid:1003;)
alert tcp any any -> any 80 (content:"ADMIN"; nocase; msg:"admin probe"; sid:1004;)
# Log rules: suspicious but not alert-worthy.
log tcp any any -> any 80 (content:"wget http"; msg:"downloader"; sid:2001;)
log tcp any any -> any any (content:"base64,"; msg:"encoded blob"; sid:2002;)
log tcp any any -> any any (content:"POST /upload"; offset:0; depth:128; msg:"upload"; sid:2003;)
# Pass rule: whitelisted health checks.
pass tcp any any -> any 80 (content:"GET /healthz"; msg:"health check"; sid:3001;)
)");
}

}  // namespace speedybox::trace
