#include "trace/pcap.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace speedybox::trace {
namespace {

constexpr std::uint32_t kMagicMicroseconds = 0xA1B2C3D4;
constexpr std::uint32_t kLinkTypeEthernet = 1;

struct GlobalHeader {
  std::uint32_t magic = kMagicMicroseconds;
  std::uint16_t version_major = 2;
  std::uint16_t version_minor = 4;
  std::int32_t thiszone = 0;
  std::uint32_t sigfigs = 0;
  std::uint32_t snaplen = 65535;
  std::uint32_t network = kLinkTypeEthernet;
};
static_assert(sizeof(GlobalHeader) == 24);

struct RecordHeader {
  std::uint32_t ts_sec = 0;
  std::uint32_t ts_usec = 0;
  std::uint32_t incl_len = 0;
  std::uint32_t orig_len = 0;
};
static_assert(sizeof(RecordHeader) == 16);

}  // namespace

void write_pcap(const std::string& path,
                const std::vector<net::Packet>& packets) {
  std::ofstream file{path, std::ios::binary | std::ios::trunc};
  if (!file) {
    throw std::runtime_error("write_pcap: cannot open " + path);
  }
  const GlobalHeader global;
  file.write(reinterpret_cast<const char*>(&global), sizeof(global));

  std::uint64_t microseconds = 0;
  for (const net::Packet& packet : packets) {
    RecordHeader record;
    record.ts_sec = static_cast<std::uint32_t>(microseconds / 1000000);
    record.ts_usec = static_cast<std::uint32_t>(microseconds % 1000000);
    record.incl_len = static_cast<std::uint32_t>(packet.size());
    record.orig_len = record.incl_len;
    file.write(reinterpret_cast<const char*>(&record), sizeof(record));
    file.write(reinterpret_cast<const char*>(packet.bytes().data()),
               static_cast<std::streamsize>(packet.size()));
    ++microseconds;  // synthetic 1µs inter-packet gap
  }
  if (!file) {
    throw std::runtime_error("write_pcap: write failed for " + path);
  }
}

void write_pcap(const std::string& path, const Workload& workload) {
  std::vector<net::Packet> packets;
  packets.reserve(workload.packet_count());
  for (std::size_t i = 0; i < workload.packet_count(); ++i) {
    packets.push_back(workload.materialize(i));
  }
  write_pcap(path, packets);
}

std::vector<net::Packet> read_pcap(const std::string& path) {
  std::ifstream file{path, std::ios::binary};
  if (!file) {
    throw std::runtime_error("read_pcap: cannot open " + path);
  }
  GlobalHeader global;
  if (!file.read(reinterpret_cast<char*>(&global), sizeof(global))) {
    throw std::runtime_error("read_pcap: truncated global header");
  }
  if (global.magic != kMagicMicroseconds) {
    // 0xD4C3B2A1 would be a byte-swapped capture; 0xA1B23C4D nanosecond.
    throw std::runtime_error(
        "read_pcap: unsupported pcap variant (expected little-endian "
        "microsecond format)");
  }
  if (global.network != kLinkTypeEthernet) {
    throw std::runtime_error("read_pcap: unsupported link type " +
                             std::to_string(global.network));
  }

  std::vector<net::Packet> packets;
  for (;;) {
    RecordHeader record;
    if (!file.read(reinterpret_cast<char*>(&record), sizeof(record))) {
      if (file.eof() && file.gcount() == 0) break;  // clean end of file
      throw std::runtime_error("read_pcap: truncated record header");
    }
    if (record.incl_len > 256 * 1024) {
      throw std::runtime_error("read_pcap: implausible record length " +
                               std::to_string(record.incl_len));
    }
    std::vector<std::uint8_t> bytes(record.incl_len);
    if (!file.read(reinterpret_cast<char*>(bytes.data()),
                   static_cast<std::streamsize>(bytes.size()))) {
      throw std::runtime_error("read_pcap: truncated packet record");
    }
    packets.emplace_back(std::move(bytes));
  }
  return packets;
}

}  // namespace speedybox::trace
