#include "trace/workload.hpp"

#include <algorithm>
#include <cmath>

#include "util/hash.hpp"

namespace speedybox::trace {

net::Packet Workload::materialize(std::size_t index) const {
  const TracePacket& tp = order[index];
  const FlowSpec& flow = flows[tp.flow];
  net::PacketSpec spec;
  spec.tuple = flow.tuple;
  spec.tcp_flags = tp.tcp_flags;
  spec.seq = tp.seq;
  spec.payload = flow.payload;
  return net::build_packet(spec);
}

namespace {

std::uint8_t flags_for(const FlowSpec& flow, std::uint32_t seq) {
  std::uint8_t flags = net::kTcpFlagAck;
  if (seq == 0 && flow.open_with_syn) flags |= net::kTcpFlagSyn;
  if (seq + 1 == flow.packet_count && flow.close_with_fin &&
      flow.packet_count > 1) {
    flags |= net::kTcpFlagFin;
  }
  return flags;
}

/// Interleave flows round-robin with a randomized start offset per flow —
/// cheap stand-in for the temporal overlap of concurrent datacenter flows.
void build_schedule(Workload* workload, util::Rng* rng) {
  struct Cursor {
    std::uint32_t flow;
    std::uint32_t next_seq = 0;
  };
  std::vector<Cursor> cursors;
  cursors.reserve(workload->flows.size());
  for (std::uint32_t i = 0; i < workload->flows.size(); ++i) {
    cursors.push_back({i});
  }
  // Shuffle flow order so flow start times are interleaved deterministically.
  for (std::size_t i = cursors.size(); i > 1; --i) {
    std::swap(cursors[i - 1], cursors[rng->below(i)]);
  }

  std::size_t total = 0;
  for (const auto& flow : workload->flows) total += flow.packet_count;
  workload->order.reserve(total);

  // Weighted round-robin: at each step pick a random live cursor.
  std::vector<std::size_t> live(cursors.size());
  for (std::size_t i = 0; i < cursors.size(); ++i) live[i] = i;
  while (!live.empty()) {
    const std::size_t pick = rng->below(live.size());
    Cursor& cursor = cursors[live[pick]];
    const FlowSpec& flow = workload->flows[cursor.flow];
    workload->order.push_back(
        {cursor.flow, cursor.next_seq, flags_for(flow, cursor.next_seq)});
    if (++cursor.next_seq >= flow.packet_count) {
      live[pick] = live.back();
      live.pop_back();
    }
  }
}

}  // namespace

Workload make_datacenter_workload(const DatacenterWorkloadConfig& config) {
  util::Rng rng{config.seed};
  Workload workload;
  workload.flows.reserve(config.flow_count);

  for (std::size_t i = 0; i < config.flow_count; ++i) {
    FlowSpec flow;
    flow.tuple.src_ip = net::Ipv4Addr{
        config.src_base.value +
        static_cast<std::uint32_t>(rng.below(1 << 16))};
    flow.tuple.dst_ip = net::Ipv4Addr{
        config.dst_base.value +
        static_cast<std::uint32_t>(rng.below(1 << 12))};
    flow.tuple.src_port = static_cast<std::uint16_t>(rng.range(1024, 65535));
    flow.tuple.dst_port =
        config.randomize_dst_port
            ? static_cast<std::uint16_t>(rng.range(1, 1023))
            : config.dst_port;
    flow.tuple.proto = static_cast<std::uint8_t>(net::IpProto::kTcp);

    const double size = rng.lognormal(config.flow_size_mu,
                                      config.flow_size_sigma);
    flow.packet_count = static_cast<std::uint32_t>(std::clamp(
        size, 1.0, static_cast<double>(config.max_flow_packets)));

    flow.payload.resize(config.payload_size);
    for (auto& byte : flow.payload) {
      // Printable filler; payload_synth plants rule content over this.
      byte = static_cast<std::uint8_t>('a' + rng.below(26));
    }
    workload.flows.push_back(std::move(flow));
  }

  build_schedule(&workload, &rng);
  return workload;
}

Workload make_uniform_workload(std::size_t flow_count,
                               std::uint32_t packets_per_flow,
                               std::size_t payload_size, std::uint64_t seed) {
  util::Rng rng{seed};
  Workload workload;
  workload.flows.reserve(flow_count);
  for (std::size_t i = 0; i < flow_count; ++i) {
    FlowSpec flow;
    flow.tuple.src_ip = net::Ipv4Addr{0xC0A80000u +
                                      static_cast<std::uint32_t>(i + 2)};
    flow.tuple.dst_ip = net::Ipv4Addr{10, 1, 0, 1};
    flow.tuple.src_port = static_cast<std::uint16_t>(10000 + (i % 50000));
    flow.tuple.dst_port = 80;
    flow.tuple.proto = static_cast<std::uint8_t>(net::IpProto::kTcp);
    flow.packet_count = packets_per_flow;
    flow.payload.assign(payload_size,
                        static_cast<std::uint8_t>('a' + (i % 26)));
    workload.flows.push_back(std::move(flow));
  }
  build_schedule(&workload, &rng);
  return workload;
}

namespace {

/// Shared flow-template helper for the scenario generators: TCP five-tuple
/// drawn under `rng` from the same address pools the datacenter generator
/// uses, with a repeated-letter payload the synthesizer can overwrite.
FlowSpec scenario_flow(util::Rng& rng, std::uint32_t packet_count,
                       std::size_t payload_size) {
  FlowSpec flow;
  flow.tuple.src_ip = net::Ipv4Addr{
      0xC0A80000u + static_cast<std::uint32_t>(rng.below(1 << 16))};
  flow.tuple.dst_ip = net::Ipv4Addr{
      0x0A010000u + static_cast<std::uint32_t>(rng.below(1 << 12))};
  flow.tuple.src_port = static_cast<std::uint16_t>(rng.range(1024, 65535));
  flow.tuple.dst_port = 80;
  flow.tuple.proto = static_cast<std::uint8_t>(net::IpProto::kTcp);
  flow.packet_count = packet_count;
  flow.payload.resize(payload_size);
  for (auto& byte : flow.payload) {
    byte = static_cast<std::uint8_t>('a' + rng.below(26));
  }
  return flow;
}

}  // namespace

Workload make_elephant_mice_workload(const ElephantMiceConfig& config) {
  util::Rng rng{config.seed};
  Workload workload;
  workload.flows.reserve(config.elephant_count + config.mice_count);
  for (std::size_t i = 0; i < config.elephant_count; ++i) {
    workload.flows.push_back(
        scenario_flow(rng, config.elephant_packets, config.payload_size));
  }
  for (std::size_t i = 0; i < config.mice_count; ++i) {
    workload.flows.push_back(
        scenario_flow(rng, config.mice_packets, config.payload_size));
  }
  build_schedule(&workload, &rng);
  return workload;
}

Workload make_sync_burst_workload(const SyncBurstConfig& config) {
  util::Rng rng{config.seed};
  Workload workload;
  const std::uint32_t per_flow = config.rounds * config.burst_len;
  workload.flows.reserve(config.flow_count);
  for (std::size_t i = 0; i < config.flow_count; ++i) {
    workload.flows.push_back(
        scenario_flow(rng, per_flow, config.payload_size));
  }
  // Round-major schedule: within a round every flow emits its whole burst
  // back to back; the flow order reshuffles per round so no flow owns the
  // head of every burst.
  workload.order.reserve(
      static_cast<std::size_t>(per_flow) * config.flow_count);
  std::vector<std::uint32_t> flow_order(workload.flows.size());
  for (std::uint32_t i = 0; i < flow_order.size(); ++i) flow_order[i] = i;
  for (std::uint32_t round = 0; round < config.rounds; ++round) {
    for (std::size_t i = flow_order.size(); i > 1; --i) {
      std::swap(flow_order[i - 1], flow_order[rng.below(i)]);
    }
    for (const std::uint32_t flow : flow_order) {
      for (std::uint32_t b = 0; b < config.burst_len; ++b) {
        const std::uint32_t seq = round * config.burst_len + b;
        workload.order.push_back(
            {flow, seq, flags_for(workload.flows[flow], seq)});
      }
    }
  }
  return workload;
}

Workload make_flash_crowd_workload(const FlashCrowdConfig& config) {
  util::Rng rng{config.seed};
  Workload workload;
  workload.flows.reserve(config.baseline_flows + config.crowd_flows);
  for (std::size_t i = 0; i < config.baseline_flows; ++i) {
    workload.flows.push_back(
        scenario_flow(rng, config.baseline_packets, config.payload_size));
  }
  for (std::size_t i = 0; i < config.crowd_flows; ++i) {
    workload.flows.push_back(
        scenario_flow(rng, config.crowd_packets, config.payload_size));
  }

  std::vector<std::uint32_t> next_seq(workload.flows.size(), 0);
  const auto emit = [&](std::uint32_t flow) {
    const std::uint32_t seq = next_seq[flow]++;
    workload.order.push_back(
        {flow, seq, flags_for(workload.flows[flow], seq)});
  };
  const auto baseline_sweep = [&] {
    for (std::uint32_t f = 0; f < config.baseline_flows; ++f) {
      if (next_seq[f] < workload.flows[f].packet_count) emit(f);
    }
  };

  // Phase 1 — calm: the baseline flows run alone for half their packets.
  for (std::uint32_t r = 0; r < config.baseline_packets / 2; ++r) {
    baseline_sweep();
  }
  // Phase 2 — the crowd arrives in doubling waves (1, 2, 4, ... new flows
  // per wave), one baseline sweep between waves; arrived crowd flows keep
  // emitting round-robin until they finish.
  std::uint32_t arrived = 0;
  std::size_t wave = 1;
  while (arrived < config.crowd_flows) {
    const std::uint32_t wave_size = static_cast<std::uint32_t>(std::min(
        wave, static_cast<std::size_t>(config.crowd_flows - arrived)));
    for (std::uint32_t i = 0; i < wave_size; ++i) {
      emit(static_cast<std::uint32_t>(config.baseline_flows + arrived + i));
    }
    arrived += wave_size;
    wave *= 2;
    baseline_sweep();
    for (std::uint32_t c = 0; c < arrived; ++c) {
      const std::uint32_t flow =
          static_cast<std::uint32_t>(config.baseline_flows + c);
      if (next_seq[flow] < workload.flows[flow].packet_count) emit(flow);
    }
  }
  // Phase 3 — drain everything still live round-robin.
  bool live = true;
  while (live) {
    live = false;
    for (std::uint32_t f = 0; f < workload.flows.size(); ++f) {
      if (next_seq[f] < workload.flows[f].packet_count) {
        emit(f);
        live = true;
      }
    }
  }
  return workload;
}

Workload make_syn_flood_workload(const SynFloodConfig& config) {
  util::Rng rng{config.seed};
  Workload workload;
  workload.flows.reserve(config.benign_flows + config.attack_flows);
  for (std::size_t i = 0; i < config.benign_flows; ++i) {
    workload.flows.push_back(
        scenario_flow(rng, config.benign_packets, config.payload_size));
  }
  const net::Ipv4Addr victim{10, 1, 0, 1};
  for (std::size_t i = 0; i < config.attack_flows; ++i) {
    FlowSpec flow =
        scenario_flow(rng, config.syns_per_attack_flow, config.payload_size);
    flow.tuple.dst_ip = victim;  // all attackers hammer one service
    flow.close_with_fin = false;  // half-open: the flood never completes
    workload.flows.push_back(std::move(flow));
  }
  build_schedule(&workload, &rng);
  // Attack flows retransmit SYN on every packet (same five-tuple), which is
  // what drives nf::DosPrevention's per-flow SYN counter past its
  // threshold. Rewrite their flags after scheduling.
  for (TracePacket& tp : workload.order) {
    if (tp.flow >= config.benign_flows) {
      tp.tcp_flags = net::kTcpFlagSyn;
    }
  }
  return workload;
}

std::optional<Workload> make_named_scenario(std::string_view name,
                                            const ScenarioScale& scale) {
  if (name == "elephant-mice") {
    ElephantMiceConfig config;
    config.payload_size = scale.payload_size;
    config.seed = scale.seed;
    if (scale.flows > 0) {
      // Keep the 1:49 elephant:mice ratio of the defaults.
      config.elephant_count = std::max<std::size_t>(1, scale.flows / 50);
      config.mice_count = scale.flows - config.elephant_count;
    }
    return make_elephant_mice_workload(config);
  }
  if (name == "sync-burst") {
    SyncBurstConfig config;
    config.payload_size = scale.payload_size;
    config.seed = scale.seed;
    if (scale.flows > 0) config.flow_count = scale.flows;
    return make_sync_burst_workload(config);
  }
  if (name == "flash-crowd") {
    FlashCrowdConfig config;
    config.payload_size = scale.payload_size;
    config.seed = scale.seed;
    if (scale.flows > 0) {
      config.baseline_flows = std::max<std::size_t>(1, scale.flows / 7);
      config.crowd_flows = scale.flows - config.baseline_flows;
    }
    return make_flash_crowd_workload(config);
  }
  if (name == "syn-flood") {
    SynFloodConfig config;
    config.payload_size = scale.payload_size;
    config.seed = scale.seed;
    if (scale.flows > 0) {
      config.benign_flows = std::max<std::size_t>(1, scale.flows / 4);
      config.attack_flows = scale.flows - config.benign_flows;
    }
    return make_syn_flood_workload(config);
  }
  return std::nullopt;
}

std::vector<std::string> named_scenarios() {
  return {"elephant-mice", "sync-burst", "flash-crowd", "syn-flood"};
}

std::vector<Workload> partition_by_flow(const Workload& workload,
                                        std::size_t shard_count) {
  if (shard_count == 0) shard_count = 1;
  std::vector<Workload> shards(shard_count);

  // Assign flows to shards, remembering each flow's index in its shard.
  std::vector<std::size_t> shard_of(workload.flows.size());
  std::vector<std::uint32_t> local_index(workload.flows.size());
  for (std::size_t i = 0; i < workload.flows.size(); ++i) {
    const std::size_t shard = util::shard_index(
        workload.flows[i].tuple.symmetric_hash(), shard_count);
    shard_of[i] = shard;
    local_index[i] = static_cast<std::uint32_t>(shards[shard].flows.size());
    shards[shard].flows.push_back(workload.flows[i]);
  }

  for (const TracePacket& tp : workload.order) {
    Workload& shard = shards[shard_of[tp.flow]];
    shard.order.push_back({local_index[tp.flow], tp.seq, tp.tcp_flags});
  }
  return shards;
}

}  // namespace speedybox::trace
