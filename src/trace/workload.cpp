#include "trace/workload.hpp"

#include <algorithm>
#include <cmath>

#include "util/hash.hpp"

namespace speedybox::trace {

net::Packet Workload::materialize(std::size_t index) const {
  const TracePacket& tp = order[index];
  const FlowSpec& flow = flows[tp.flow];
  net::PacketSpec spec;
  spec.tuple = flow.tuple;
  spec.tcp_flags = tp.tcp_flags;
  spec.seq = tp.seq;
  spec.payload = flow.payload;
  return net::build_packet(spec);
}

namespace {

std::uint8_t flags_for(const FlowSpec& flow, std::uint32_t seq) {
  std::uint8_t flags = net::kTcpFlagAck;
  if (seq == 0 && flow.open_with_syn) flags |= net::kTcpFlagSyn;
  if (seq + 1 == flow.packet_count && flow.close_with_fin &&
      flow.packet_count > 1) {
    flags |= net::kTcpFlagFin;
  }
  return flags;
}

/// Interleave flows round-robin with a randomized start offset per flow —
/// cheap stand-in for the temporal overlap of concurrent datacenter flows.
void build_schedule(Workload* workload, util::Rng* rng) {
  struct Cursor {
    std::uint32_t flow;
    std::uint32_t next_seq = 0;
  };
  std::vector<Cursor> cursors;
  cursors.reserve(workload->flows.size());
  for (std::uint32_t i = 0; i < workload->flows.size(); ++i) {
    cursors.push_back({i});
  }
  // Shuffle flow order so flow start times are interleaved deterministically.
  for (std::size_t i = cursors.size(); i > 1; --i) {
    std::swap(cursors[i - 1], cursors[rng->below(i)]);
  }

  std::size_t total = 0;
  for (const auto& flow : workload->flows) total += flow.packet_count;
  workload->order.reserve(total);

  // Weighted round-robin: at each step pick a random live cursor.
  std::vector<std::size_t> live(cursors.size());
  for (std::size_t i = 0; i < cursors.size(); ++i) live[i] = i;
  while (!live.empty()) {
    const std::size_t pick = rng->below(live.size());
    Cursor& cursor = cursors[live[pick]];
    const FlowSpec& flow = workload->flows[cursor.flow];
    workload->order.push_back(
        {cursor.flow, cursor.next_seq, flags_for(flow, cursor.next_seq)});
    if (++cursor.next_seq >= flow.packet_count) {
      live[pick] = live.back();
      live.pop_back();
    }
  }
}

}  // namespace

Workload make_datacenter_workload(const DatacenterWorkloadConfig& config) {
  util::Rng rng{config.seed};
  Workload workload;
  workload.flows.reserve(config.flow_count);

  for (std::size_t i = 0; i < config.flow_count; ++i) {
    FlowSpec flow;
    flow.tuple.src_ip = net::Ipv4Addr{
        config.src_base.value +
        static_cast<std::uint32_t>(rng.below(1 << 16))};
    flow.tuple.dst_ip = net::Ipv4Addr{
        config.dst_base.value +
        static_cast<std::uint32_t>(rng.below(1 << 12))};
    flow.tuple.src_port = static_cast<std::uint16_t>(rng.range(1024, 65535));
    flow.tuple.dst_port =
        config.randomize_dst_port
            ? static_cast<std::uint16_t>(rng.range(1, 1023))
            : config.dst_port;
    flow.tuple.proto = static_cast<std::uint8_t>(net::IpProto::kTcp);

    const double size = rng.lognormal(config.flow_size_mu,
                                      config.flow_size_sigma);
    flow.packet_count = static_cast<std::uint32_t>(std::clamp(
        size, 1.0, static_cast<double>(config.max_flow_packets)));

    flow.payload.resize(config.payload_size);
    for (auto& byte : flow.payload) {
      // Printable filler; payload_synth plants rule content over this.
      byte = static_cast<std::uint8_t>('a' + rng.below(26));
    }
    workload.flows.push_back(std::move(flow));
  }

  build_schedule(&workload, &rng);
  return workload;
}

Workload make_uniform_workload(std::size_t flow_count,
                               std::uint32_t packets_per_flow,
                               std::size_t payload_size, std::uint64_t seed) {
  util::Rng rng{seed};
  Workload workload;
  workload.flows.reserve(flow_count);
  for (std::size_t i = 0; i < flow_count; ++i) {
    FlowSpec flow;
    flow.tuple.src_ip = net::Ipv4Addr{0xC0A80000u +
                                      static_cast<std::uint32_t>(i + 2)};
    flow.tuple.dst_ip = net::Ipv4Addr{10, 1, 0, 1};
    flow.tuple.src_port = static_cast<std::uint16_t>(10000 + (i % 50000));
    flow.tuple.dst_port = 80;
    flow.tuple.proto = static_cast<std::uint8_t>(net::IpProto::kTcp);
    flow.packet_count = packets_per_flow;
    flow.payload.assign(payload_size,
                        static_cast<std::uint8_t>('a' + (i % 26)));
    workload.flows.push_back(std::move(flow));
  }
  build_schedule(&workload, &rng);
  return workload;
}

std::vector<Workload> partition_by_flow(const Workload& workload,
                                        std::size_t shard_count) {
  if (shard_count == 0) shard_count = 1;
  std::vector<Workload> shards(shard_count);

  // Assign flows to shards, remembering each flow's index in its shard.
  std::vector<std::size_t> shard_of(workload.flows.size());
  std::vector<std::uint32_t> local_index(workload.flows.size());
  for (std::size_t i = 0; i < workload.flows.size(); ++i) {
    const std::size_t shard = util::shard_index(
        workload.flows[i].tuple.symmetric_hash(), shard_count);
    shard_of[i] = shard;
    local_index[i] = static_cast<std::uint32_t>(shards[shard].flows.size());
    shards[shard].flows.push_back(workload.flows[i]);
  }

  for (const TracePacket& tp : workload.order) {
    Workload& shard = shards[shard_of[tp.flow]];
    shard.order.push_back({local_index[tp.flow], tp.seq, tp.tcp_flags});
  }
  return shards;
}

}  // namespace speedybox::trace
