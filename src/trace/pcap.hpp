// Classic pcap (libpcap tcpdump format) import/export.
//
// Lets the workload generator's traffic be inspected with standard tools
// (tcpdump/wireshark) and lets real captures drive the evaluation chains —
// the interop a trace-driven NFV harness needs. Only the classic
// microsecond little-endian format with Ethernet link type is supported
// (what tcpdump writes by default).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "trace/workload.hpp"

namespace speedybox::trace {

/// Write packets to `path`. Timestamps are synthetic (1µs apart) unless the
/// packet carries an arrival cycle, which is converted. Throws
/// std::runtime_error on I/O failure.
void write_pcap(const std::string& path,
                const std::vector<net::Packet>& packets);

/// Materialize a workload's schedule and write it as a pcap.
void write_pcap(const std::string& path, const Workload& workload);

/// Read all packets from a pcap file. Throws std::runtime_error on I/O
/// failure or malformed input (bad magic, truncated records). Packets that
/// do not parse as Ethernet/IPv4 are still returned (the chains drop them).
std::vector<net::Packet> read_pcap(const std::string& path);

}  // namespace speedybox::trace
