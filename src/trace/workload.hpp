// Workload generation — the in-memory substitute for the paper's DPDK
// packet generator + datacenter trace (Benson et al., IMC'10 [11]).
//
// A workload is a sequence of packets drawn from a set of flows. Flow sizes
// follow the heavy-tailed (lognormal) distribution characteristic of
// datacenter traffic: most flows are a few packets, a small fraction carry
// most of the bytes. Packets of concurrent flows are interleaved.
// The trace payloads in [11] are null (anonymized); like the paper, payloads
// are synthesized — see payload_synth.hpp for planting Snort-rule content.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "net/packet_builder.hpp"
#include "util/rng.hpp"

namespace speedybox::trace {

/// One flow of the workload.
struct FlowSpec {
  net::FiveTuple tuple;
  std::uint32_t packet_count = 1;
  std::vector<std::uint8_t> payload;  // per-packet payload template
  bool close_with_fin = true;         // last packet carries FIN
  bool open_with_syn = true;          // first packet carries SYN
};

/// Index of one packet in the interleaved trace.
struct TracePacket {
  std::uint32_t flow = 0;     // index into flows
  std::uint32_t seq = 0;      // packet number within the flow (0-based)
  std::uint8_t tcp_flags = net::kTcpFlagAck;
};

struct Workload {
  std::vector<FlowSpec> flows;
  std::vector<TracePacket> order;  // interleaved schedule

  std::size_t packet_count() const noexcept { return order.size(); }

  /// Materialize packet i of the schedule (fresh wire bytes each call, so a
  /// run can never leak modifications into the next packet).
  net::Packet materialize(std::size_t index) const;
};

struct DatacenterWorkloadConfig {
  std::size_t flow_count = 200;
  /// Lognormal parameters of flow size in packets (mu/sigma in log space);
  /// defaults give a median ~8-packet flow with a heavy tail.
  double flow_size_mu = 2.1;
  double flow_size_sigma = 1.0;
  std::uint32_t max_flow_packets = 2000;
  std::size_t payload_size = 256;
  /// Source addresses drawn from this /16 (matches MazuNAT's internal
  /// prefix default).
  net::Ipv4Addr src_base{192, 168, 0, 0};
  net::Ipv4Addr dst_base{10, 1, 0, 0};
  std::uint16_t dst_port = 80;
  bool randomize_dst_port = false;
  std::uint64_t seed = 42;
};

/// Heavy-tailed datacenter-style workload with interleaved flows.
Workload make_datacenter_workload(const DatacenterWorkloadConfig& config);

/// Simple workload: `flow_count` flows of exactly `packets_per_flow`
/// packets each, uniform payloads. Used by the microbenchmarks.
Workload make_uniform_workload(std::size_t flow_count,
                               std::uint32_t packets_per_flow,
                               std::size_t payload_size,
                               std::uint64_t seed = 7);

/// Split a workload into `shard_count` sub-workloads by the symmetric
/// five-tuple hash — the same steering the sharded runtime's dispatcher
/// applies, so sub-workload k is exactly the traffic shard k would see.
/// Every flow lands whole in one sub-workload; the packet order within each
/// sub-workload is the original interleaving restricted to its flows.
std::vector<Workload> partition_by_flow(const Workload& workload,
                                        std::size_t shard_count);

}  // namespace speedybox::trace
