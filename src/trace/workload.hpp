// Workload generation — the in-memory substitute for the paper's DPDK
// packet generator + datacenter trace (Benson et al., IMC'10 [11]).
//
// A workload is a sequence of packets drawn from a set of flows. Flow sizes
// follow the heavy-tailed (lognormal) distribution characteristic of
// datacenter traffic: most flows are a few packets, a small fraction carry
// most of the bytes. Packets of concurrent flows are interleaved.
// The trace payloads in [11] are null (anonymized); like the paper, payloads
// are synthesized — see payload_synth.hpp for planting Snort-rule content.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/packet.hpp"
#include "net/packet_builder.hpp"
#include "util/rng.hpp"

namespace speedybox::trace {

/// One flow of the workload.
struct FlowSpec {
  net::FiveTuple tuple;
  std::uint32_t packet_count = 1;
  std::vector<std::uint8_t> payload;  // per-packet payload template
  bool close_with_fin = true;         // last packet carries FIN
  bool open_with_syn = true;          // first packet carries SYN
};

/// Index of one packet in the interleaved trace.
struct TracePacket {
  std::uint32_t flow = 0;     // index into flows
  std::uint32_t seq = 0;      // packet number within the flow (0-based)
  std::uint8_t tcp_flags = net::kTcpFlagAck;
};

struct Workload {
  std::vector<FlowSpec> flows;
  std::vector<TracePacket> order;  // interleaved schedule

  std::size_t packet_count() const noexcept { return order.size(); }

  /// Materialize packet i of the schedule (fresh wire bytes each call, so a
  /// run can never leak modifications into the next packet).
  net::Packet materialize(std::size_t index) const;
};

struct DatacenterWorkloadConfig {
  std::size_t flow_count = 200;
  /// Lognormal parameters of flow size in packets (mu/sigma in log space);
  /// defaults give a median ~8-packet flow with a heavy tail.
  double flow_size_mu = 2.1;
  double flow_size_sigma = 1.0;
  std::uint32_t max_flow_packets = 2000;
  std::size_t payload_size = 256;
  /// Source addresses drawn from this /16 (matches MazuNAT's internal
  /// prefix default).
  net::Ipv4Addr src_base{192, 168, 0, 0};
  net::Ipv4Addr dst_base{10, 1, 0, 0};
  std::uint16_t dst_port = 80;
  bool randomize_dst_port = false;
  std::uint64_t seed = 42;
};

/// Heavy-tailed datacenter-style workload with interleaved flows.
Workload make_datacenter_workload(const DatacenterWorkloadConfig& config);

/// Simple workload: `flow_count` flows of exactly `packets_per_flow`
/// packets each, uniform payloads. Used by the microbenchmarks.
Workload make_uniform_workload(std::size_t flow_count,
                               std::uint32_t packets_per_flow,
                               std::size_t payload_size,
                               std::uint64_t seed = 7);

// -- Adversarial / skewed scenario generators (benchmark matrix, DESIGN.md
//    §11). All four reuse the Workload shape, so partition_by_flow, the
//    payload synthesizer and every executor drive them unchanged.

/// Elephant/mice skew: a handful of elephant flows carry almost all the
/// packets while a large mice population contributes flow-arrival churn —
/// the worst case for per-flow-fair shedding and for recording-path storms.
struct ElephantMiceConfig {
  std::size_t elephant_count = 4;
  std::size_t mice_count = 196;
  std::uint32_t elephant_packets = 1000;
  std::uint32_t mice_packets = 3;
  std::size_t payload_size = 128;
  std::uint64_t seed = 1301;
};
Workload make_elephant_mice_workload(const ElephantMiceConfig& config);

/// Synchronized bursts: every flow emits `burst_len` back-to-back packets
/// in each of `rounds` rounds, and all flows burst inside the same round —
/// the arrival pattern that maximizes instantaneous queue depth without
/// changing the average load.
struct SyncBurstConfig {
  std::size_t flow_count = 64;
  std::uint32_t rounds = 16;
  std::uint32_t burst_len = 8;
  std::size_t payload_size = 128;
  std::uint64_t seed = 1302;
};
Workload make_sync_burst_workload(const SyncBurstConfig& config);

/// Flash crowd: steady baseline traffic, then an accelerating ramp of
/// short-lived new flows (arrival waves double in size) — a recording-path
/// surge that keeps growing until the crowd is fully arrived.
struct FlashCrowdConfig {
  std::size_t baseline_flows = 32;
  std::uint32_t baseline_packets = 64;
  std::size_t crowd_flows = 192;
  std::uint32_t crowd_packets = 3;
  std::size_t payload_size = 128;
  std::uint64_t seed = 1303;
};
Workload make_flash_crowd_workload(const FlashCrowdConfig& config);

/// SYN flood: benign long-lived flows plus attack flows that retransmit
/// SYN on the same five-tuple over and over — the per-flow SYN counter of
/// nf::DosPrevention crosses its threshold and the Event Table rewrites the
/// flow to drop (Fig. 3). On chains without a DoS NF it is still a harsh
/// many-tiny-flows workload.
struct SynFloodConfig {
  std::size_t benign_flows = 32;
  std::uint32_t benign_packets = 24;
  std::size_t attack_flows = 96;
  std::uint32_t syns_per_attack_flow = 24;
  std::size_t payload_size = 64;
  std::uint64_t seed = 1304;
};
Workload make_syn_flood_workload(const SynFloodConfig& config);

/// Uniform knobs for the named-scenario dispatch below: `flows` scales each
/// scenario's flow population (keeping its internal ratios), the rest map
/// directly onto the per-scenario configs.
struct ScenarioScale {
  std::size_t flows = 0;  // 0 = the scenario's default population
  std::size_t payload_size = 128;
  std::uint64_t seed = 42;
};

/// Build one of the named scenarios ("elephant-mice", "sync-burst",
/// "flash-crowd", "syn-flood") — the spelling chainsim's --workload flag
/// and bench_matrix use. Returns std::nullopt for an unknown name.
std::optional<Workload> make_named_scenario(std::string_view name,
                                            const ScenarioScale& scale = {});

/// The four scenario names accepted by make_named_scenario.
std::vector<std::string> named_scenarios();

/// Split a workload into `shard_count` sub-workloads by the symmetric
/// five-tuple hash — the same steering the sharded runtime's dispatcher
/// applies, so sub-workload k is exactly the traffic shard k would see.
/// Every flow lands whole in one sub-workload; the packet order within each
/// sub-workload is the original interleaving restricted to its flows.
std::vector<Workload> partition_by_flow(const Workload& workload,
                                        std::size_t shard_count);

}  // namespace speedybox::trace
