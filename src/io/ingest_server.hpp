// Event-driven UDP/TCP ingestion front-end (DESIGN.md §11): real wire
// bytes in, net::Packet descriptors out, batches staged to an
// IngestExecutor sink.
//
//   epoll (level-triggered, io::EventLoop)
//     UDP socket    one datagram = one Ethernet frame; drained up to
//                   rx_budget frames per wakeup (fairness against TCP)
//     TCP listener  accepts; each connection carries 4-byte-BE
//                   length-prefixed frames (io::StreamFramer reassembles)
//   decode_frame() validates every frame (malformed → parse_errors, never
//                   a crash — see frame.hpp), stages survivors into a
//                   batch of batch_size, submits whole batches to the sink
//   idle timeout   serve() returns after idle_timeout_ms with no traffic
//                   (partial batches flush on every idle wakeup first, so
//                   trickle traffic is never held hostage to the batch)
//
// Backpressure contract with the overload controller: the front-end never
// drops a decoded frame itself. Admission/shedding is the wrapped
// executor's ingress gate (DESIGN.md §9) — a sharded sink's dispatcher
// sheds on ring watermarks, a runner sink's token bucket sheds at
// admission — so the conservation identity the closed-loop smoke checks is
//   sent == admitted + shed + parse_errors + socket_drops
// with socket_drops the kernel's receive-queue overflow count (the only
// loss the process cannot refuse: the wire outran the event loop).
//
// Threads: serve() blocks the calling thread (which thereby becomes the
// dispatcher of a sharded sink). stop() is safe from any thread.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/event_loop.hpp"
#include "io/frame.hpp"
#include "io/ingest_executor.hpp"
#include "io/socket.hpp"
#include "telemetry/metrics.hpp"

namespace speedybox::io {

enum class IngestProto : std::uint8_t { kUdp, kTcp, kBoth };

const char* ingest_proto_name(IngestProto proto) noexcept;

struct IngestConfig {
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral; the bound port(s) are reported by udp_port()/tcp_port().
  std::uint16_t port = 0;
  IngestProto proto = IngestProto::kUdp;
  /// Max frames drained from one socket per epoll wakeup. Bounds the time
  /// one hot socket can hold the loop (and with it the staging latency of
  /// every other socket's frames).
  std::size_t rx_budget = 64;
  /// serve() returns after this long without receiving anything.
  int idle_timeout_ms = 1000;
  /// Frames staged per sink submission (the rx burst size).
  std::size_t batch_size = 32;
  /// Kernel receive buffer for the UDP socket (0 = system default). The
  /// deeper this is, the burstier the wire can be before socket_drops.
  int rcvbuf_bytes = 1 << 22;
  /// Drain the UDP socket with batched recvmmsg() — up to rx_budget
  /// datagrams per syscall instead of one recvmsg() each. Same frame
  /// accounting (the conservation smoke passes either way); fewer
  /// syscalls per wakeup under load.
  bool use_recvmmsg = false;
};

/// Counters of one serve() run (also mirrored into telemetry when
/// attached; see ShardMetrics rx_*).
struct IngestStats {
  std::uint64_t rx_bytes = 0;      // wire bytes read (UDP payload + TCP
                                   // stream bytes, prefixes included)
  std::uint64_t rx_frames = 0;     // frames decoded successfully
  std::uint64_t rx_batches = 0;    // sink submissions
  std::uint64_t parse_errors = 0;  // frames decode_frame rejected
  std::uint64_t socket_drops = 0;  // kernel receive-queue overflow (UDP)
  std::uint64_t tcp_connections = 0;
  std::uint64_t poisoned_streams = 0;  // TCP conns killed by a bad prefix
  /// Busy window: serve() entry to the last observed wire activity, the
  /// idle-timeout tail excluded. rx_frames / drive_seconds is the ingest
  /// rate bench_ingest gates on.
  double drive_seconds = 0.0;
  /// rx_frames + parse_errors: everything that reached the process.
  std::uint64_t frames_seen() const noexcept {
    return rx_frames + parse_errors;
  }
};

class IngestServer {
 public:
  /// Binds the socket(s) eagerly — construction failure is loud
  /// (std::system_error), and the bound ports are known before serve().
  explicit IngestServer(IngestConfig config);
  ~IngestServer();
  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  std::uint16_t udp_port() const noexcept { return udp_port_; }
  std::uint16_t tcp_port() const noexcept { return tcp_port_; }

  /// Create this server's metric cell in `registry` (null detaches). Must
  /// be called before serve(). Counters land under "<label>" (rx_bytes,
  /// rx_frames, rx_batches, parse_errors, socket_drops + ingest_cycles).
  void attach_telemetry(telemetry::Registry* registry,
                        const std::string& label);

  /// Run the event loop, feeding `sink`, until stop() or the idle timeout.
  /// Returns the run's counters (the final socket_drops read included).
  /// One-shot, like Executor::run. Does NOT call sink.finish() — the
  /// caller owns the executor lifecycle.
  IngestStats serve(IngestExecutor& sink);

  /// End serve() from any thread.
  void stop() noexcept { loop_.stop(); }

  const IngestStats& stats() const noexcept { return stats_; }

 private:
  struct TcpConn {
    Fd fd;
    StreamFramer framer;
  };

  void drain_udp();
  void accept_tcp();
  void drain_tcp(TcpConn& conn, std::uint32_t events);
  /// Decode one frame; stage on success, count on failure.
  void ingest_frame(std::span<const std::uint8_t> bytes);
  void flush_staged(IngestExecutor& sink);
  void close_conn(int fd);

  IngestConfig config_;
  EventLoop loop_;
  Fd udp_;
  Fd tcp_listener_;
  std::uint16_t udp_port_ = 0;
  std::uint16_t tcp_port_ = 0;
  std::vector<std::unique_ptr<TcpConn>> conns_;
  IngestExecutor* sink_ = nullptr;  // valid inside serve()
  std::vector<net::Packet> staged_;
  std::vector<std::uint64_t> staged_recv_cycle_;
  std::vector<std::uint8_t> recv_buffer_;
  /// recvmmsg scratch (use_recvmmsg only): slot i at offset i*stride, plus
  /// the per-datagram byte counts the kernel fills in.
  std::vector<std::uint8_t> mmsg_buffer_;
  std::vector<std::size_t> mmsg_lengths_;
  IngestStats stats_;
  telemetry::ShardMetrics* metrics_ = nullptr;
  /// Baseline of the kernel's cumulative drop counter at serve() entry
  /// (the socket may be reused across runs in tests).
  std::uint64_t drop_baseline_ = 0;
  /// Latest cumulative SO_RXQ_OVFL value seen in ancillary data — the
  /// fallback when the /proc/net/udp row is unreadable at serve() exit.
  std::uint64_t cmsg_drops_ = 0;
  bool served_ = false;
};

}  // namespace speedybox::io
