// recvmmsg()/mmsghdr are GNU extensions; the build is -std=c++20 strict,
// so the feature macro must come before the first libc header.
#ifndef _GNU_SOURCE
#define _GNU_SOURCE
#endif

#include "io/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <system_error>

namespace speedybox::io {
namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

sockaddr_in make_addr(const std::string& address, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    throw std::system_error(EINVAL, std::generic_category(),
                            "inet_pton(" + address + ")");
  }
  return addr;
}

std::uint16_t bound_port_of(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw_errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

}  // namespace

void Fd::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

Fd make_udp_receiver(const std::string& address, std::uint16_t port,
                     int rcvbuf_bytes, std::uint16_t* bound_port) {
  Fd fd{::socket(AF_INET, SOCK_DGRAM, 0)};
  if (!fd.valid()) throw_errno("socket(UDP)");
  const int on = 1;
  // Count receive-queue overflow per delivered datagram (ancillary data);
  // udp_socket_drops() reads the authoritative total at shutdown.
  if (setsockopt(fd.get(), SOL_SOCKET, SO_RXQ_OVFL, &on, sizeof on) != 0) {
    throw_errno("setsockopt(SO_RXQ_OVFL)");
  }
  if (rcvbuf_bytes > 0 &&
      setsockopt(fd.get(), SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                 sizeof rcvbuf_bytes) != 0) {
    throw_errno("setsockopt(SO_RCVBUF)");
  }
  const sockaddr_in addr = make_addr(address, port);
  if (bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
           sizeof addr) != 0) {
    throw_errno("bind(UDP)");
  }
  set_nonblocking(fd.get());
  if (bound_port != nullptr) *bound_port = bound_port_of(fd.get());
  return fd;
}

Fd make_tcp_listener(const std::string& address, std::uint16_t port,
                     std::uint16_t* bound_port, int backlog) {
  Fd fd{::socket(AF_INET, SOCK_STREAM, 0)};
  if (!fd.valid()) throw_errno("socket(TCP)");
  const int on = 1;
  if (setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &on, sizeof on) != 0) {
    throw_errno("setsockopt(SO_REUSEADDR)");
  }
  const sockaddr_in addr = make_addr(address, port);
  if (bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
           sizeof addr) != 0) {
    throw_errno("bind(TCP)");
  }
  if (listen(fd.get(), backlog) != 0) throw_errno("listen");
  set_nonblocking(fd.get());
  if (bound_port != nullptr) *bound_port = bound_port_of(fd.get());
  return fd;
}

Fd accept_connection(int listener_fd) {
  const int conn = ::accept(listener_fd, nullptr, nullptr);
  if (conn < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Fd{};
    throw_errno("accept");
  }
  Fd fd{conn};
  set_nonblocking(fd.get());
  return fd;
}

RecvResult recv_some(int fd, std::span<std::uint8_t> buffer) {
  iovec iov{buffer.data(), buffer.size()};
  alignas(cmsghdr) char control[CMSG_SPACE(sizeof(std::uint32_t))];
  msghdr msg{};
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = control;
  msg.msg_controllen = sizeof control;

  RecvResult result;
  const ssize_t n = recvmsg(fd, &msg, 0);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      return result;  // bytes = -1: nothing available
    }
    throw_errno("recvmsg");
  }
  result.bytes = static_cast<long>(n);
  for (cmsghdr* cmsg = CMSG_FIRSTHDR(&msg); cmsg != nullptr;
       cmsg = CMSG_NXTHDR(&msg, cmsg)) {
    if (cmsg->cmsg_level == SOL_SOCKET && cmsg->cmsg_type == SO_RXQ_OVFL) {
      std::uint32_t dropped = 0;
      std::memcpy(&dropped, CMSG_DATA(cmsg), sizeof dropped);
      result.rxq_dropped = dropped;
      result.has_drop_count = true;
    }
  }
  return result;
}

RecvManyResult recv_many(int fd, std::span<std::uint8_t> buffer,
                         std::size_t stride, std::span<std::size_t> lengths) {
  constexpr std::size_t kMaxBatch = 64;
  RecvManyResult result;
  const std::size_t by_buffer = stride == 0 ? 0 : buffer.size() / stride;
  const std::size_t want =
      std::min({lengths.size(), by_buffer, kMaxBatch});
  if (want == 0) return result;

  mmsghdr msgs[kMaxBatch];
  iovec iovs[kMaxBatch];
  alignas(cmsghdr) char controls[kMaxBatch]
                               [CMSG_SPACE(sizeof(std::uint32_t))];
  std::memset(msgs, 0, want * sizeof(mmsghdr));
  for (std::size_t i = 0; i < want; ++i) {
    iovs[i] = {buffer.data() + i * stride, stride};
    msgs[i].msg_hdr.msg_iov = &iovs[i];
    msgs[i].msg_hdr.msg_iovlen = 1;
    msgs[i].msg_hdr.msg_control = controls[i];
    msgs[i].msg_hdr.msg_controllen = sizeof controls[i];
  }

  const int n = recvmmsg(fd, msgs, static_cast<unsigned int>(want),
                         MSG_DONTWAIT, nullptr);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      return result;  // nothing available
    }
    throw_errno("recvmmsg");
  }
  result.messages = static_cast<std::size_t>(n);
  for (std::size_t i = 0; i < result.messages; ++i) {
    lengths[i] = msgs[i].msg_len;
    for (cmsghdr* cmsg = CMSG_FIRSTHDR(&msgs[i].msg_hdr); cmsg != nullptr;
         cmsg = CMSG_NXTHDR(&msgs[i].msg_hdr, cmsg)) {
      if (cmsg->cmsg_level == SOL_SOCKET &&
          cmsg->cmsg_type == SO_RXQ_OVFL) {
        std::uint32_t dropped = 0;
        std::memcpy(&dropped, CMSG_DATA(cmsg), sizeof dropped);
        result.rxq_dropped = dropped;
        result.has_drop_count = true;
      }
    }
  }
  return result;
}

std::optional<std::uint64_t> udp_socket_drops(int fd) {
  struct stat st{};
  if (fstat(fd, &st) != 0) return std::nullopt;
  const unsigned long long inode = st.st_ino;

  std::FILE* file = std::fopen("/proc/net/udp", "r");
  if (file == nullptr) return std::nullopt;
  char line[512];
  std::optional<std::uint64_t> drops;
  // Header, then one row per socket:
  //   sl local rem st queues tr retrnsmt uid timeout inode ref ptr drops
  while (std::fgets(line, sizeof line, file) != nullptr) {
    unsigned long long row_inode = 0, row_drops = 0;
    // The leading fields vary in width; scan from the uid column on.
    int matched = std::sscanf(
        line,
        " %*d: %*64[0-9A-Fa-f:] %*64[0-9A-Fa-f:] %*x %*x:%*x %*x:%*x %*x "
        "%*d %*d %llu %*d %*x %llu",
        &row_inode, &row_drops);
    if (matched == 2 && row_inode == inode) {
      drops = row_drops;
      break;
    }
  }
  std::fclose(file);
  return drops;
}

Fd make_udp_sender(const std::string& address, std::uint16_t port) {
  Fd fd{::socket(AF_INET, SOCK_DGRAM, 0)};
  if (!fd.valid()) throw_errno("socket(UDP)");
  const sockaddr_in addr = make_addr(address, port);
  if (connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
              sizeof addr) != 0) {
    throw_errno("connect(UDP)");
  }
  return fd;
}

Fd make_tcp_sender(const std::string& address, std::uint16_t port) {
  Fd fd{::socket(AF_INET, SOCK_STREAM, 0)};
  if (!fd.valid()) throw_errno("socket(TCP)");
  const sockaddr_in addr = make_addr(address, port);
  if (connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
              sizeof addr) != 0) {
    throw_errno("connect(TCP)");
  }
  const int on = 1;
  if (setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &on, sizeof on) != 0) {
    throw_errno("setsockopt(TCP_NODELAY)");
  }
  return fd;
}

bool send_all(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace speedybox::io
