#include "io/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <system_error>

namespace speedybox::io {

EventLoop::EventLoop() {
  epoll_ = Fd{epoll_create1(0)};
  if (!epoll_.valid()) {
    throw std::system_error(errno, std::generic_category(), "epoll_create1");
  }
  wakeup_ = Fd{eventfd(0, EFD_NONBLOCK)};
  if (!wakeup_.valid()) {
    throw std::system_error(errno, std::generic_category(), "eventfd");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wakeup_.get();
  if (epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, wakeup_.get(), &ev) != 0) {
    throw std::system_error(errno, std::generic_category(),
                            "epoll_ctl(wakeup)");
  }
}

EventLoop::~EventLoop() = default;

void EventLoop::add(int fd, std::uint32_t events, Callback callback) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw std::system_error(errno, std::generic_category(), "epoll_ctl(add)");
  }
  callbacks_[fd] = std::move(callback);
}

void EventLoop::remove(int fd) {
  epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, fd, nullptr);
  callbacks_.erase(fd);
}

int EventLoop::poll_once(int timeout_ms) {
  if (stopped()) return -1;
  std::array<epoll_event, 32> events;
  const int ready = epoll_wait(epoll_.get(), events.data(),
                               static_cast<int>(events.size()), timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return 0;
    throw std::system_error(errno, std::generic_category(), "epoll_wait");
  }
  int dispatched = 0;
  for (int i = 0; i < ready; ++i) {
    const int fd = events[static_cast<std::size_t>(i)].data.fd;
    if (fd == wakeup_.get()) {
      std::uint64_t token = 0;
      [[maybe_unused]] const ssize_t n =
          read(wakeup_.get(), &token, sizeof token);
      continue;  // stop() rang the bell; the check below sees the flag
    }
    // The callback may remove() fds — other ones or its own (a TCP close
    // removes the connection being drained) — so re-look-up instead of
    // holding an iterator across the dispatch, and invoke a copy so the
    // erase cannot destroy the std::function mid-call.
    const auto it = callbacks_.find(fd);
    if (it == callbacks_.end()) continue;
    const Callback callback = it->second;
    callback(events[static_cast<std::size_t>(i)].events);
    ++dispatched;
  }
  if (stopped()) return -1;
  return dispatched;
}

void EventLoop::stop() noexcept {
  stop_.store(true, std::memory_order_release);
  const std::uint64_t token = 1;
  [[maybe_unused]] const ssize_t n =
      write(wakeup_.get(), &token, sizeof token);
}

}  // namespace speedybox::io
