// Loopback load generator — the wire-side counterpart of the trace::
// workload generators. Replays a workload's materialized frames over a
// real UDP or TCP socket at a target rate, so `chainsim --listen` (and the
// CI closed-loop smoke) exercise the full socket → epoll → parse → chain
// path with the exact same packets the in-process drive would use.
//
// UDP: one datagram per frame (the natural framing). TCP: frames carry
// the 4-byte length prefix of io::append_framed. Pacing is absolute-
// schedule (frame i is due at start + i/rate), so a slow send does not
// push every later frame late.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "io/ingest_server.hpp"
#include "net/packet.hpp"
#include "trace/workload.hpp"

namespace speedybox::io {

struct LoadgenConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// kUdp or kTcp (a sender speaks exactly one; kBoth is a config error).
  IngestProto proto = IngestProto::kUdp;
  /// Target send rate in packets/s; 0 = unpaced (as fast as send() takes).
  double rate_pps = 0.0;
  /// Replay the frame sequence this many times back to back.
  std::size_t repeat = 1;
};

struct LoadgenReport {
  std::uint64_t sent = 0;         // frames handed to the kernel
  std::uint64_t bytes = 0;        // wire bytes sent (TCP prefixes included)
  std::uint64_t send_errors = 0;  // send() failures (frame NOT counted sent)
  double elapsed_s = 0.0;
  double achieved_pps = 0.0;
};

/// Replay pre-materialized frames (the shape chainsim's build_packets
/// yields, planted payloads included).
LoadgenReport replay_packets(const std::vector<net::Packet>& packets,
                             const LoadgenConfig& config);

/// Materialize and replay `workload` in schedule order.
LoadgenReport replay_workload(const trace::Workload& workload,
                              const LoadgenConfig& config);

/// Multi-tenant fan-out (the sender half of `chainsim --tenancy --listen`).
struct MultiTenantConfig {
  std::string host = "127.0.0.1";
  /// One destination port per tenant.
  std::vector<std::uint16_t> ports;
  IngestProto proto = IngestProto::kUdp;
  /// Per-tenant pacing: rates_pps[i] paces tenant i on its own absolute
  /// schedule. One entry broadcasts to every tenant; empty = unpaced.
  std::vector<double> rates_pps;
  std::size_t repeat = 1;
};

struct TenantLoadReport {
  std::uint16_t port = 0;
  LoadgenReport report;
  /// Non-empty when this tenant's sender died (e.g. connect refused);
  /// the other tenants' sends are unaffected.
  std::string error;
};

/// Fan ONE workload across N tenants: every tenant receives the full frame
/// sequence on its own socket, concurrently (one sender thread per
/// tenant), each paced independently. Results come back in port order.
std::vector<TenantLoadReport> replay_multi_tenant(
    const trace::Workload& workload, const MultiTenantConfig& config);

}  // namespace speedybox::io
