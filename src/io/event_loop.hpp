// Minimal epoll reactor for the ingestion front-end.
//
// One thread owns the loop and calls poll_once() in a loop; each readiness
// event dispatches to the callback registered for its fd. stop() may be
// called from any thread — it rings an eventfd so a blocked poll wakes
// immediately (the only cross-thread entry point; everything else is
// owner-thread only).
//
// The loop is deliberately level-triggered: the ingest server drains each
// socket up to its rx budget and relies on the next poll to resume, which
// keeps one hot socket from starving the others (fairness is the budget's
// job, not the trigger mode's).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <unordered_map>

#include "io/socket.hpp"

namespace speedybox::io {

class EventLoop {
 public:
  /// `events` is the epoll readiness mask (EPOLLIN | EPOLLHUP | ...).
  using Callback = std::function<void(std::uint32_t events)>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Register `fd` for level-triggered readiness on `events`. The loop
  /// borrows the fd; the caller keeps ownership and must remove() before
  /// closing it.
  void add(int fd, std::uint32_t events, Callback callback);
  void remove(int fd);

  /// Wait up to `timeout_ms` (-1 = forever) and dispatch every ready
  /// callback. Returns the number of fd events dispatched (0 on timeout).
  /// Returns -1 immediately — without waiting — once stop() was called.
  int poll_once(int timeout_ms);

  /// Make poll_once return -1 from now on; safe from any thread.
  void stop() noexcept;
  bool stopped() const noexcept {
    return stop_.load(std::memory_order_acquire);
  }

 private:
  Fd epoll_;
  Fd wakeup_;  // eventfd; readable once stop() rang it
  std::atomic<bool> stop_{false};
  std::unordered_map<int, Callback> callbacks_;
};

}  // namespace speedybox::io
