#include "io/ingest_executor.hpp"

#include <stdexcept>
#include <utility>

#include "net/packet_batch.hpp"
#include "runtime/sharded_runtime.hpp"
#include "util/cycle_clock.hpp"

namespace speedybox::io {

IngestExecutor::IngestExecutor(runtime::Executor& executor,
                               bool capture_outputs)
    : executor_(executor),
      runner_(dynamic_cast<runtime::ChainRunner*>(&executor)),
      sharded_(dynamic_cast<runtime::ShardedRuntime*>(&executor)),
      capture_outputs_(capture_outputs) {}

std::string_view IngestExecutor::mode() const noexcept {
  if (runner_ != nullptr) return "stream-batch";
  if (sharded_ != nullptr) return "stream-push";
  return "deferred";
}

void IngestExecutor::submit(std::vector<net::Packet>&& batch) {
  if (finished_) {
    throw std::logic_error("IngestExecutor::submit after finish");
  }
  if (gate_) {
    // Host-boundary admission: shed packets compact out of the batch here,
    // so `submitted_` (and everything downstream) counts only the
    // survivors that actually reached the executor.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (gate_(batch[i])) {
        if (kept != i) batch[kept] = std::move(batch[i]);
        ++kept;
      } else {
        ++gate_shed_;
      }
    }
    batch.resize(kept);
  }
  submitted_ += batch.size();
  if (sharded_ != nullptr) {
    for (net::Packet& packet : batch) {
      packet.set_arrival_cycle(util::CycleClock::now());
      sharded_->push(std::move(packet));
    }
    return;
  }
  if (runner_ != nullptr) {
    // Mirror ChainRunner::run_packets' inner loop: one PacketBatch per
    // submitted batch, drops masked in place, outputs in arrival order.
    net::PacketBatch staged{batch.size()};
    for (net::Packet& packet : batch) {
      packet.set_arrival_cycle(util::CycleClock::now());
      staged.push(&packet);
    }
    runner_->process_batch(staged, outcomes_scratch_);
    if (capture_outputs_) {
      for (net::Packet& packet : batch) {
        outputs_.push_back(std::move(packet));
      }
    }
    return;
  }
  pending_.insert(pending_.end(), std::make_move_iterator(batch.begin()),
                  std::make_move_iterator(batch.end()));
}

const runtime::RunStats& IngestExecutor::finish() {
  if (finished_) {
    throw std::logic_error("IngestExecutor::finish is one-shot");
  }
  finished_ = true;
  if (sharded_ != nullptr) {
    runtime::ShardedRunResult result = sharded_->finish();
    if (capture_outputs_) outputs_ = std::move(result.packets);
    sharded_stats_ = std::move(result.stats);
    return sharded_stats_;
  }
  if (runner_ != nullptr) {
    return runner_->stats();
  }
  const runtime::RunStats& stats =
      executor_.run(pending_, capture_outputs_ ? &outputs_ : nullptr);
  pending_.clear();
  return stats;
}

}  // namespace speedybox::io
