// IngestExecutor — adapts the one-shot runtime::Executor interface to the
// streaming arrival pattern of the live front-end (DESIGN.md §11).
//
// The executor shapes split by their natural feeding mode:
//   ChainRunner      stream-batch: each staged batch runs through
//                    process_batch() inline on the ingest thread (exactly
//                    the run_packets() inner loop, batch by batch)
//   ShardedRuntime   stream-push: packets push() through the dispatcher's
//                    burst SPSC staging onto the shard rings; workers
//                    process concurrently with socket reads
//   anything else    deferred: packets buffer and one Executor::run()
//                    fires at finish() (the pipelines are one-shot — their
//                    worker threads stop inside run())
//
// Overload control and telemetry compose unchanged: both are installed on
// the wrapped executor before serving, and the ingress gate sees live
// arrivals exactly as it sees trace-driven ones.
//
// Thread contract: submit() and finish() are ingest-thread only (the
// ingest thread IS the dispatcher for a sharded sink). finish() is
// one-shot, mirroring Executor::run().
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "net/packet.hpp"
#include "runtime/runner.hpp"

namespace speedybox::runtime {
class ShardedRuntime;
}

namespace speedybox::io {

class IngestExecutor {
 public:
  /// `capture_outputs` keeps every post-chain packet (arrival order for
  /// the streaming modes) — the equivalence tests compare them
  /// byte-for-byte against the in-process trace:: path.
  explicit IngestExecutor(runtime::Executor& executor,
                          bool capture_outputs = false);

  /// "stream-batch" | "stream-push" | "deferred".
  std::string_view mode() const noexcept;

  /// A host-boundary admission hook (multi-tenant hosting, DESIGN.md §14):
  /// called per staged packet on the ingest thread BEFORE the hand-off.
  /// Returning false sheds the packet at the host gate — it never reaches
  /// the wrapped executor and counts in gate_shed() instead of the
  /// executor's own offered/admitted. The hook runs at a packet boundary
  /// of a sharded sink's dispatcher, so it may also apply control-plane
  /// actions (e.g. a pending reshard). Install before serving.
  using GateHook = std::function<bool(const net::Packet&)>;
  void set_gate(GateHook gate) { gate_ = std::move(gate); }
  std::uint64_t gate_shed() const noexcept { return gate_shed_; }

  /// Hand one staged batch of decoded packets to the data path. Packets
  /// arrive with reset metadata; arrival timestamps are (re)stamped here,
  /// at the hand-off, so queueing inside the front-end never inflates the
  /// chain's latency accounting.
  void submit(std::vector<net::Packet>&& batch);

  /// Drain the data path and return the final stats (one-shot).
  const runtime::RunStats& finish();

  std::uint64_t submitted() const noexcept { return submitted_; }
  /// Post-chain packets (capture_outputs only; valid after finish()).
  const std::vector<net::Packet>& outputs() const noexcept {
    return outputs_;
  }
  runtime::Executor& executor() noexcept { return executor_; }

 private:
  runtime::Executor& executor_;
  /// Set when the wrapped executor supports the respective streaming mode.
  runtime::ChainRunner* runner_ = nullptr;
  runtime::ShardedRuntime* sharded_ = nullptr;
  bool capture_outputs_ = false;
  bool finished_ = false;
  std::uint64_t submitted_ = 0;
  GateHook gate_;
  std::uint64_t gate_shed_ = 0;
  /// Deferred mode: arrivals buffered until finish().
  std::vector<net::Packet> pending_;
  std::vector<net::Packet> outputs_;
  std::vector<runtime::PacketOutcome> outcomes_scratch_;
  /// stream-push: stats merged at finish() (ShardedRuntime::finish()
  /// returns a value; a stable reference must live here).
  runtime::RunStats sharded_stats_;
};

}  // namespace speedybox::io
