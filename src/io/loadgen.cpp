#include "io/loadgen.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>

#include "io/frame.hpp"
#include "io/socket.hpp"

namespace speedybox::io {
namespace {

LoadgenReport replay(const std::vector<net::Packet>& packets,
                     const trace::Workload* workload,
                     const LoadgenConfig& config) {
  if (config.proto == IngestProto::kBoth) {
    throw std::invalid_argument("loadgen speaks one protocol per socket");
  }
  const bool tcp = config.proto == IngestProto::kTcp;
  Fd sock = tcp ? make_tcp_sender(config.host, config.port)
                : make_udp_sender(config.host, config.port);

  const std::size_t frame_count =
      workload != nullptr ? workload->packet_count() : packets.size();
  LoadgenReport report;
  std::vector<std::uint8_t> tcp_buffer;
  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  std::uint64_t scheduled = 0;
  for (std::size_t round = 0; round < config.repeat; ++round) {
    for (std::size_t i = 0; i < frame_count; ++i, ++scheduled) {
      if (config.rate_pps > 0.0) {
        // Absolute schedule: frame k is due at start + k/rate. sleep_until
        // (not sleep_for) so send-time jitter never accumulates.
        const auto due =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(
                            static_cast<double>(scheduled) / config.rate_pps));
        std::this_thread::sleep_until(due);
      }
      std::span<const std::uint8_t> frame;
      net::Packet materialized;
      if (workload != nullptr) {
        materialized = workload->materialize(i);
        frame = materialized.bytes();
      } else {
        frame = packets[i].bytes();
      }
      bool ok;
      std::size_t wire_bytes;
      if (tcp) {
        tcp_buffer.clear();
        append_framed(tcp_buffer, frame);
        wire_bytes = tcp_buffer.size();
        ok = send_all(sock.get(), tcp_buffer);
      } else {
        wire_bytes = frame.size();
        ok = send_all(sock.get(), frame);
      }
      if (ok) {
        ++report.sent;
        report.bytes += wire_bytes;
      } else {
        ++report.send_errors;
      }
    }
  }
  const std::chrono::duration<double> elapsed = Clock::now() - start;
  report.elapsed_s = elapsed.count();
  report.achieved_pps = report.elapsed_s > 0.0
                            ? static_cast<double>(report.sent) /
                                  report.elapsed_s
                            : 0.0;
  return report;
}

}  // namespace

LoadgenReport replay_packets(const std::vector<net::Packet>& packets,
                             const LoadgenConfig& config) {
  return replay(packets, nullptr, config);
}

LoadgenReport replay_workload(const trace::Workload& workload,
                              const LoadgenConfig& config) {
  return replay({}, &workload, config);
}

std::vector<TenantLoadReport> replay_multi_tenant(
    const trace::Workload& workload, const MultiTenantConfig& config) {
  if (config.ports.empty()) {
    throw std::invalid_argument("loadgen: no tenant ports");
  }
  if (config.rates_pps.size() > 1 &&
      config.rates_pps.size() != config.ports.size()) {
    throw std::invalid_argument(
        "loadgen: per-tenant rates must match the tenant count (or be one "
        "broadcast rate)");
  }
  std::vector<TenantLoadReport> results(config.ports.size());
  std::vector<std::thread> senders;
  senders.reserve(config.ports.size());
  for (std::size_t i = 0; i < config.ports.size(); ++i) {
    results[i].port = config.ports[i];
    senders.emplace_back([&, i] {
      LoadgenConfig single;
      single.host = config.host;
      single.port = config.ports[i];
      single.proto = config.proto;
      single.rate_pps = config.rates_pps.empty()
                            ? 0.0
                            : config.rates_pps.size() == 1
                                  ? config.rates_pps[0]
                                  : config.rates_pps[i];
      single.repeat = config.repeat;
      try {
        results[i].report = replay({}, &workload, single);
      } catch (const std::exception& error) {
        results[i].error = error.what();
      }
    });
  }
  for (std::thread& sender : senders) sender.join();
  return results;
}

}  // namespace speedybox::io
