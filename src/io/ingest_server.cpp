#include "io/ingest_server.hpp"

#include <sys/epoll.h>

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "util/cycle_clock.hpp"

namespace speedybox::io {
namespace {

/// Cap on one poll wait: bounds how long a partial batch can sit staged
/// under trickle traffic (the flush-on-idle-wakeup in serve()).
constexpr int kFlushIntervalMs = 5;

/// recv scratch: one max-size UDP datagram / one TCP read chunk.
constexpr std::size_t kRecvBufferBytes = 64 * 1024;

/// Per-datagram slot in the recvmmsg scratch: a jumbo Ethernet frame fits,
/// so batched mode never truncates anything the single-recv mode accepts.
constexpr std::size_t kMmsgStride = 9216;

}  // namespace

const char* ingest_proto_name(IngestProto proto) noexcept {
  switch (proto) {
    case IngestProto::kUdp:
      return "udp";
    case IngestProto::kTcp:
      return "tcp";
    case IngestProto::kBoth:
      return "both";
  }
  return "unknown";
}

IngestServer::IngestServer(IngestConfig config) : config_(std::move(config)) {
  if (config_.batch_size == 0) config_.batch_size = 1;
  if (config_.rx_budget == 0) config_.rx_budget = 1;
  if (config_.proto == IngestProto::kUdp || config_.proto == IngestProto::kBoth) {
    udp_ = make_udp_receiver(config_.bind_address, config_.port,
                             config_.rcvbuf_bytes, &udp_port_);
  }
  if (config_.proto == IngestProto::kTcp || config_.proto == IngestProto::kBoth) {
    tcp_listener_ =
        make_tcp_listener(config_.bind_address, config_.port, &tcp_port_);
  }
  recv_buffer_.resize(kRecvBufferBytes);
  if (config_.use_recvmmsg && udp_.valid()) {
    const std::size_t slots = std::min<std::size_t>(config_.rx_budget, 64);
    mmsg_buffer_.resize(slots * kMmsgStride);
    mmsg_lengths_.resize(slots);
  }
  staged_.reserve(config_.batch_size);
  staged_recv_cycle_.reserve(config_.batch_size);
}

IngestServer::~IngestServer() = default;

void IngestServer::attach_telemetry(telemetry::Registry* registry,
                                    const std::string& label) {
  metrics_ = registry != nullptr ? &registry->create_shard(label) : nullptr;
}

IngestStats IngestServer::serve(IngestExecutor& sink) {
  if (served_) {
    throw std::logic_error("IngestServer::serve is one-shot");
  }
  served_ = true;
  sink_ = &sink;
  stats_ = IngestStats{};
  if (udp_.valid()) {
    drop_baseline_ = udp_socket_drops(udp_.get()).value_or(0);
    loop_.add(udp_.get(), EPOLLIN, [this](std::uint32_t) { drain_udp(); });
  }
  if (tcp_listener_.valid()) {
    loop_.add(tcp_listener_.get(), EPOLLIN,
              [this](std::uint32_t) { accept_tcp(); });
  }

  using Clock = std::chrono::steady_clock;
  const Clock::time_point serve_start = Clock::now();
  Clock::time_point last_activity = serve_start;
  // "Activity" = anything arriving from the wire; frames, raw bytes and
  // new connections all reset the idle clock.
  auto activity_mark = [this] {
    return stats_.rx_bytes + stats_.tcp_connections;
  };
  std::uint64_t last_mark = activity_mark();

  while (!loop_.stopped()) {
    const auto idle_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                             Clock::now() - last_activity)
                             .count();
    const int remaining =
        config_.idle_timeout_ms - static_cast<int>(idle_ms);
    if (remaining <= 0) break;
    const int dispatched =
        loop_.poll_once(std::min(remaining, kFlushIntervalMs));
    if (dispatched < 0) break;  // stop() was called
    const std::uint64_t mark = activity_mark();
    if (mark != last_mark) {
      last_mark = mark;
      last_activity = Clock::now();
    } else {
      // Idle wakeup: anything staged has waited kFlushIntervalMs already —
      // push the partial batch rather than holding it against the timeout.
      flush_staged(sink);
    }
  }

  flush_staged(sink);
  stats_.drive_seconds =
      std::chrono::duration<double>(last_activity - serve_start).count();

  // Tear down loop registrations (the fds outlive serve(); a test may
  // inspect the sockets afterwards, and the destructor closes them).
  if (udp_.valid()) {
    // Authoritative drop count. SO_RXQ_OVFL ancillary data misses drops
    // after the last *delivered* datagram, so prefer the /proc row; the
    // in-loop ancillary counter is the (lower-bound) fallback when the row
    // is unreadable.
    const std::optional<std::uint64_t> authoritative =
        udp_socket_drops(udp_.get());
    const std::uint64_t cumulative =
        authoritative.has_value() ? *authoritative : cmsg_drops_;
    stats_.socket_drops =
        cumulative >= drop_baseline_ ? cumulative - drop_baseline_ : 0;
    if (metrics_ != nullptr && stats_.socket_drops > 0) {
      metrics_->socket_drops.add(stats_.socket_drops);
    }
    loop_.remove(udp_.get());
  }
  if (tcp_listener_.valid()) loop_.remove(tcp_listener_.get());
  for (const std::unique_ptr<TcpConn>& conn : conns_) {
    loop_.remove(conn->fd.get());
  }
  conns_.clear();
  sink_ = nullptr;
  return stats_;
}

void IngestServer::drain_udp() {
  if (config_.use_recvmmsg) {
    // Batched drain: up to rx_budget datagrams per wakeup, but one syscall
    // per slot-capacity batch instead of one per datagram. Frame
    // accounting is identical to the scalar path below.
    std::size_t drained = 0;
    while (drained < config_.rx_budget) {
      const std::size_t want =
          std::min(config_.rx_budget - drained, mmsg_lengths_.size());
      const RecvManyResult result =
          recv_many(udp_.get(), mmsg_buffer_, kMmsgStride,
                    std::span<std::size_t>(mmsg_lengths_.data(), want));
      if (result.has_drop_count) cmsg_drops_ = result.rxq_dropped;
      if (result.messages == 0) break;  // would-block
      for (std::size_t i = 0; i < result.messages; ++i) {
        stats_.rx_bytes += mmsg_lengths_[i];
        if (metrics_ != nullptr) metrics_->rx_bytes.add(mmsg_lengths_[i]);
        ingest_frame(std::span<const std::uint8_t>(
            mmsg_buffer_.data() + i * kMmsgStride, mmsg_lengths_[i]));
      }
      drained += result.messages;
      if (result.messages < want) break;  // socket drained dry
    }
    return;
  }
  for (std::size_t i = 0; i < config_.rx_budget; ++i) {
    const RecvResult result = recv_some(udp_.get(), recv_buffer_);
    if (result.has_drop_count) cmsg_drops_ = result.rxq_dropped;
    if (result.bytes <= 0) break;  // would-block (UDP never EOFs)
    stats_.rx_bytes += static_cast<std::uint64_t>(result.bytes);
    if (metrics_ != nullptr) {
      metrics_->rx_bytes.add(static_cast<std::uint64_t>(result.bytes));
    }
    ingest_frame(std::span<const std::uint8_t>(
        recv_buffer_.data(), static_cast<std::size_t>(result.bytes)));
  }
}

void IngestServer::accept_tcp() {
  while (true) {
    Fd conn_fd = accept_connection(tcp_listener_.get());
    if (!conn_fd.valid()) break;
    ++stats_.tcp_connections;
    auto conn = std::make_unique<TcpConn>();
    conn->fd = std::move(conn_fd);
    TcpConn* raw = conn.get();
    conns_.push_back(std::move(conn));
    loop_.add(raw->fd.get(), EPOLLIN | EPOLLRDHUP,
              [this, raw](std::uint32_t events) { drain_tcp(*raw, events); });
  }
}

void IngestServer::drain_tcp(TcpConn& conn, std::uint32_t events) {
  (void)events;  // level-triggered EPOLLIN covers the RDHUP drain too
  bool closed = false;
  // Budget the raw reads (the fairness unit for a stream), then pop every
  // complete frame the reassembler holds — a frame already buffered in
  // user space must not wait for more wire bytes to be dispatched.
  for (std::size_t i = 0; i < config_.rx_budget; ++i) {
    const RecvResult result = recv_some(conn.fd.get(), recv_buffer_);
    if (result.bytes < 0) break;  // would-block
    if (result.bytes == 0) {      // orderly EOF
      closed = true;
      break;
    }
    stats_.rx_bytes += static_cast<std::uint64_t>(result.bytes);
    if (metrics_ != nullptr) {
      metrics_->rx_bytes.add(static_cast<std::uint64_t>(result.bytes));
    }
    conn.framer.feed(std::span<const std::uint8_t>(
        recv_buffer_.data(), static_cast<std::size_t>(result.bytes)));
  }
  while (std::optional<std::vector<std::uint8_t>> frame = conn.framer.next()) {
    ingest_frame(*frame);
  }
  if (conn.framer.poisoned()) {
    // Frame boundaries are lost; everything further on this stream is
    // garbage. Kill the connection, count the event.
    ++stats_.poisoned_streams;
    closed = true;
  }
  if (closed) {
    if (conn.framer.buffered() > 0) {
      // The peer closed mid-frame: the tail can never complete. Count it
      // as a parse error so the bytes are not silently unaccounted.
      ++stats_.parse_errors;
      if (metrics_ != nullptr) metrics_->parse_errors.add(1);
    }
    close_conn(conn.fd.get());
  }
}

void IngestServer::ingest_frame(std::span<const std::uint8_t> bytes) {
  net::Packet packet;
  const FrameError error = decode_frame(bytes, packet);
  if (error != FrameError::kOk) {
    ++stats_.parse_errors;
    if (metrics_ != nullptr) metrics_->parse_errors.add(1);
    return;
  }
  ++stats_.rx_frames;
  if (metrics_ != nullptr) metrics_->rx_frames.add(1);
  staged_.push_back(std::move(packet));
  staged_recv_cycle_.push_back(util::CycleClock::now());
  if (staged_.size() >= config_.batch_size) flush_staged(*sink_);
}

void IngestServer::flush_staged(IngestExecutor& sink) {
  if (staged_.empty()) return;
  if (metrics_ != nullptr) {
    const std::uint64_t now = util::CycleClock::now();
    for (const std::uint64_t recv_cycle : staged_recv_cycle_) {
      metrics_->ingest_cycles.record(now >= recv_cycle ? now - recv_cycle : 0);
    }
  }
  ++stats_.rx_batches;
  if (metrics_ != nullptr) metrics_->rx_batches.add(1);
  sink.submit(std::move(staged_));
  staged_.clear();
  staged_.reserve(config_.batch_size);
  staged_recv_cycle_.clear();
}

void IngestServer::close_conn(int fd) {
  loop_.remove(fd);
  conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                              [fd](const std::unique_ptr<TcpConn>& conn) {
                                return conn->fd.get() == fd;
                              }),
               conns_.end());
}

}  // namespace speedybox::io
