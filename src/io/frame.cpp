#include "io/frame.hpp"

#include "net/byte_order.hpp"

namespace speedybox::io {

const char* frame_error_name(FrameError error) noexcept {
  switch (error) {
    case FrameError::kOk:
      return "ok";
    case FrameError::kRunt:
      return "runt";
    case FrameError::kOversize:
      return "oversize";
    case FrameError::kBadEtherType:
      return "bad-ethertype";
    case FrameError::kBadIpVersion:
      return "bad-ip-version";
    case FrameError::kBadIhl:
      return "bad-ihl";
    case FrameError::kBadLength:
      return "bad-length";
    case FrameError::kTruncatedL4:
      return "truncated-l4";
  }
  return "unknown";
}

FrameError decode_frame(std::span<const std::uint8_t> bytes,
                        net::Packet& out) {
  if (bytes.size() > kMaxFrameBytes) return FrameError::kOversize;
  if (bytes.size() < net::kEthHeaderLen + net::kIpv4MinHeaderLen) {
    return FrameError::kRunt;
  }
  if (net::load_be16(bytes, 12) != net::kEtherTypeIpv4) {
    return FrameError::kBadEtherType;
  }
  const std::size_t l3 = net::kEthHeaderLen;
  const std::uint8_t version_ihl = bytes[l3];
  if ((version_ihl >> 4) != 4) return FrameError::kBadIpVersion;
  const std::size_t ihl = static_cast<std::size_t>(version_ihl & 0x0F) * 4;
  if (ihl < net::kIpv4MinHeaderLen || l3 + ihl > bytes.size()) {
    return FrameError::kBadIhl;
  }
  // The declared IPv4 length must fit inside the wire bytes — an NF that
  // trusts total_length (payload scans, checksum updates) must never read
  // past the buffer. Ethernet padding (frame longer than total_length) is
  // legal and handled by the trim below.
  const std::size_t total_length = net::load_be16(bytes, l3 + 2);
  if (total_length < ihl || l3 + total_length > bytes.size()) {
    return FrameError::kBadLength;
  }
  // Trim Ethernet trailer padding so downstream parsing sees exactly the
  // declared datagram (the builders never pad, so this is usually a noop).
  net::Packet candidate{
      std::vector<std::uint8_t>(bytes.begin(),
                                bytes.begin() + static_cast<std::ptrdiff_t>(
                                                    l3 + total_length))};
  // Full header-chain walk (encap layers, TCP data offset) — anything the
  // structured checks above missed surfaces here.
  if (!net::parse_packet(candidate).has_value()) {
    return FrameError::kTruncatedL4;
  }
  out = std::move(candidate);
  out.reset_metadata();
  return FrameError::kOk;
}

void append_framed(std::vector<std::uint8_t>& stream,
                   std::span<const std::uint8_t> frame) {
  const std::uint32_t length = static_cast<std::uint32_t>(frame.size());
  stream.push_back(static_cast<std::uint8_t>(length >> 24));
  stream.push_back(static_cast<std::uint8_t>(length >> 16));
  stream.push_back(static_cast<std::uint8_t>(length >> 8));
  stream.push_back(static_cast<std::uint8_t>(length));
  stream.insert(stream.end(), frame.begin(), frame.end());
}

void StreamFramer::feed(std::span<const std::uint8_t> bytes) {
  if (poisoned_) return;
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

std::optional<std::vector<std::uint8_t>> StreamFramer::next() {
  if (poisoned_ || buffer_.size() < 4) return std::nullopt;
  const std::uint32_t length = (static_cast<std::uint32_t>(buffer_[0]) << 24) |
                               (static_cast<std::uint32_t>(buffer_[1]) << 16) |
                               (static_cast<std::uint32_t>(buffer_[2]) << 8) |
                               static_cast<std::uint32_t>(buffer_[3]);
  if (length == 0 || length > kMaxFrameBytes) {
    poisoned_ = true;
    buffer_.clear();
    return std::nullopt;
  }
  if (buffer_.size() < 4 + static_cast<std::size_t>(length)) {
    return std::nullopt;
  }
  buffer_.erase(buffer_.begin(), buffer_.begin() + 4);
  std::vector<std::uint8_t> frame(buffer_.begin(), buffer_.begin() + length);
  buffer_.erase(buffer_.begin(), buffer_.begin() + length);
  return frame;
}

}  // namespace speedybox::io
