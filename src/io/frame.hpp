// Wire-frame decode + validation for the ingestion front-end, and the
// length-prefixed framing the TCP transport uses to carry Ethernet frames
// over a byte stream.
//
// decode_frame() is the single choke point between untrusted wire bytes
// and net::Packet descriptors: every malformed shape — runt frames, wrong
// EtherType, bad IP version/IHL, an IPv4 total_length longer than what is
// actually on the wire, truncated L4 headers — is rejected with a typed
// error and counted as a parse_error upstream, never handed to an NF. The
// fuzz suite (tests/unit/io/frame_test.cpp) hammers it with random byte
// strings under ASan.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "net/packet.hpp"

namespace speedybox::io {

/// Frames above this are rejected before any parsing (jumbo + slack; a
/// hostile length prefix must not make the TCP reassembler buffer GBs).
inline constexpr std::size_t kMaxFrameBytes = 10 * 1024;

enum class FrameError : std::uint8_t {
  kOk = 0,
  kRunt,            // shorter than Ethernet + minimal IPv4
  kOversize,        // longer than kMaxFrameBytes
  kBadEtherType,    // not IPv4
  kBadIpVersion,    // IP version nibble != 4
  kBadIhl,          // IHL < 20 bytes or header runs past the frame
  kBadLength,       // IPv4 total_length < IHL or > bytes on the wire
  kTruncatedL4,     // TCP/UDP/encap header chain runs past the frame
};

const char* frame_error_name(FrameError error) noexcept;

/// Validate `bytes` as one Ethernet/IPv4/(AH|IPIP)*/TCP|UDP frame and, on
/// success, copy it into `out` with reset descriptor metadata. On any
/// error `out` is untouched.
FrameError decode_frame(std::span<const std::uint8_t> bytes,
                        net::Packet& out);

// -- TCP stream framing ------------------------------------------------------
// A 4-byte big-endian frame length precedes each frame. UDP needs none of
// this (one datagram = one frame); TCP is a byte stream and must
// re-delimit.

/// Append the length prefix + frame to `stream`.
void append_framed(std::vector<std::uint8_t>& stream,
                   std::span<const std::uint8_t> frame);

/// Incremental re-delimiter for one TCP connection: feed() stream chunks
/// as they arrive, next() pops complete frames in order. A length prefix
/// above kMaxFrameBytes (or zero) poisons the stream — the connection is
/// unrecoverable since frame boundaries are lost — and next() returns
/// nothing further.
class StreamFramer {
 public:
  void feed(std::span<const std::uint8_t> bytes);
  std::optional<std::vector<std::uint8_t>> next();
  bool poisoned() const noexcept { return poisoned_; }
  std::size_t buffered() const noexcept { return buffer_.size(); }

 private:
  std::deque<std::uint8_t> buffer_;
  bool poisoned_ = false;
};

}  // namespace speedybox::io
