// Thin RAII layer over the POSIX sockets the ingestion front-end uses:
// non-blocking loopback UDP receivers with kernel drop accounting
// (SO_RXQ_OVFL + /proc/net/udp), TCP listeners/connections, and the
// blocking sender sockets the load generator drives. Everything binds to
// an explicit address (default loopback); port 0 requests an ephemeral
// port and the bound port is reported back — the pattern every test and
// the CI smoke rely on to avoid port collisions.
//
// All functions throw std::system_error on syscall failure (socket setup
// is control-plane: failing loudly beats limping without a socket); the
// per-datagram receive path reports would-block/EOF through its result
// instead of throwing.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace speedybox::io {

/// Move-only owner of a file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  /// Close now (idempotent).
  void reset() noexcept;
  /// Give up ownership without closing.
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

void set_nonblocking(int fd);

// -- Receiver side ----------------------------------------------------------

/// Non-blocking UDP socket bound to `address:port` (port 0 = ephemeral)
/// with SO_RXQ_OVFL drop accounting enabled and the receive buffer raised
/// to `rcvbuf_bytes` (0 keeps the system default). `bound_port` receives
/// the actual port.
Fd make_udp_receiver(const std::string& address, std::uint16_t port,
                     int rcvbuf_bytes, std::uint16_t* bound_port);

/// Non-blocking listening TCP socket (port 0 = ephemeral).
Fd make_tcp_listener(const std::string& address, std::uint16_t port,
                     std::uint16_t* bound_port, int backlog = 16);

/// Accept one connection off a non-blocking listener; the connection comes
/// back non-blocking too. Invalid Fd when no connection is pending.
Fd accept_connection(int listener_fd);

/// One non-blocking datagram/stream read.
struct RecvResult {
  /// Bytes read; 0 = orderly EOF (TCP), -1 = nothing available right now.
  long bytes = -1;
  /// Cumulative receive-queue overflow count the kernel attached to this
  /// datagram (SO_RXQ_OVFL ancillary data; UDP receivers only).
  std::uint32_t rxq_dropped = 0;
  bool has_drop_count = false;
};

/// recvmsg() wrapper harvesting the SO_RXQ_OVFL drop counter. Works for
/// both UDP datagrams and TCP stream chunks (the latter simply never carry
/// a drop count).
RecvResult recv_some(int fd, std::span<std::uint8_t> buffer);

/// Result of one recv_many() batch.
struct RecvManyResult {
  std::size_t messages = 0;       // datagrams filled into lengths[0..n)
  /// Latest cumulative SO_RXQ_OVFL counter seen in the batch's ancillary
  /// data (UDP receivers only).
  std::uint32_t rxq_dropped = 0;
  bool has_drop_count = false;
};

/// Batched non-blocking datagram receive via recvmmsg(): up to
/// `lengths.size()` datagrams in ONE syscall, datagram i landing at
/// buffer.subspan(i * stride, stride) with its byte count in lengths[i].
/// messages = 0 means nothing was available. SO_RXQ_OVFL ancillary data is
/// harvested per message, exactly like recv_some() — the last datagram's
/// cumulative counter wins, matching the kernel's monotonic semantics.
RecvManyResult recv_many(int fd, std::span<std::uint8_t> buffer,
                         std::size_t stride, std::span<std::size_t> lengths);

/// Authoritative kernel drop counter for a bound UDP socket, read from the
/// matching /proc/net/udp row (the SO_RXQ_OVFL ancillary counter misses
/// drops after the last delivered datagram; this one does not). nullopt
/// when the row cannot be found.
std::optional<std::uint64_t> udp_socket_drops(int fd);

// -- Sender side (load generator) -------------------------------------------

/// Blocking UDP socket connected to `address:port`.
Fd make_udp_sender(const std::string& address, std::uint16_t port);

/// Blocking TCP connection to `address:port` (TCP_NODELAY set — the load
/// generator wants its frames on the wire, not in Nagle's buffer).
Fd make_tcp_sender(const std::string& address, std::uint16_t port);

/// send() the whole buffer (loops on partial writes / EINTR). Returns
/// false on a send error (e.g. ECONNREFUSED on an unbound UDP port).
bool send_all(int fd, std::span<const std::uint8_t> bytes);

}  // namespace speedybox::io
