// Elastic control plane (DESIGN.md §10): telemetry-driven autoscaling of
// the flow-sharded runtime.
//
//   ShardedRuntime ──ScaleHook every interval_packets──► Controller::tick
//     Registry::snapshot()  ─►  window deltas  ─►  ControlSignals
//     ScalingPolicy::decide ─►  target shard count (hysteresis, ±1 step)
//     control::reshard      ─►  quiesce + migrate + resize
//
// Everything runs on the dispatcher thread at a packet boundary, so the
// control loop is deterministic with respect to the packet sequence: the
// same trace and configuration always produce the same scaling schedule —
// the property the autoscale differential-equivalence harness checks.
//
// Signals are derived exclusively from race-free sources: telemetry cells
// (single-writer relaxed atomics, snapshot-safe mid-run) and
// dispatcher-owned ring occupancy. The controller never reads a worker's
// ChainRunner state while the worker runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "control/flow_migration.hpp"
#include "runtime/sharded_runtime.hpp"
#include "telemetry/metrics.hpp"

namespace speedybox::control {

struct AutoscaleConfig {
  /// Latency objective for the per-packet p99 (fast + slow path merged),
  /// microseconds.
  double slo_us = 50.0;
  std::size_t min_shards = 1;
  std::size_t max_shards = 4;
  /// Control-loop cadence: one tick per this many dispatched packets.
  std::uint64_t interval_packets = 2048;
  /// Windows over SLO (or pressure) before scaling up.
  int up_streak = 2;
  /// Calm windows (p99 below scale_down_fraction * slo_us, no pressure)
  /// before scaling down.
  int down_streak = 4;
  /// Post-decision windows during which no further decision fires (lets
  /// the resharded system settle before it is judged again).
  int cooldown_windows = 2;
  double scale_down_fraction = 0.5;
  /// Queue-pressure escalation: worst active ring fill fraction at or
  /// above this counts as a breach even if the p99 still meets the SLO.
  double occupancy_high = 0.5;
  /// Admission-pressure escalation: window admit fraction below this
  /// (packets shed by the overload machinery) counts as a breach.
  double admit_low = 0.99;
};

/// One control window's view of the data path.
struct ControlSignals {
  double p99_latency_us = 0.0;
  double ring_occupancy = 0.0;  // worst active shard, fraction of capacity
  double admit_fraction = 1.0;  // admitted / offered within the window
  std::uint64_t window_packets = 0;
};

/// Pure, deterministic hysteresis policy: given one window's signals and
/// the current shard count, produce the target count. Never moves more
/// than one shard per decision; clamps to [min_shards, max_shards].
class ScalingPolicy {
 public:
  explicit ScalingPolicy(const AutoscaleConfig& config) : config_(config) {}

  std::size_t decide(const ControlSignals& signals, std::size_t active);

  int breach_streak() const noexcept { return breach_streak_; }
  int calm_streak() const noexcept { return calm_streak_; }

 private:
  AutoscaleConfig config_;
  int breach_streak_ = 0;
  int calm_streak_ = 0;
  int cooldown_ = 0;
};

class Controller {
 public:
  /// Registers its own metric shard (`label`) in `registry` for the
  /// control-plane cells: active_shards, scale_events, migrated_flows,
  /// migration_cycles. The registry must outlive the controller.
  Controller(AutoscaleConfig config, telemetry::Registry& registry,
             std::string label = "controller");

  /// Validate the runtime (every NF must support migration — throws
  /// std::logic_error naming the offender otherwise) and install the
  /// control loop as its scale hook at config.interval_packets.
  void attach(runtime::ShardedRuntime& runtime);

  /// One control decision: snapshot telemetry, diff against the previous
  /// window, decide, and reshard if the target moved. Runs on the
  /// dispatcher thread (the scale hook); exposed for tests.
  void tick(runtime::ShardedRuntime& runtime);

  /// Window signals from the registry's current cumulative snapshot.
  /// Stateful: advances the previous-window baseline.
  ControlSignals compute_signals(const runtime::ShardedRuntime& runtime);

  const AutoscaleConfig& config() const noexcept { return config_; }
  /// Every resharding operation executed, in order.
  const std::vector<ReshardReport>& scale_events() const noexcept {
    return events_;
  }

 private:
  AutoscaleConfig config_;
  telemetry::Registry* registry_;
  telemetry::ShardMetrics* metrics_;
  ScalingPolicy policy_;
  std::vector<ReshardReport> events_;
  // Previous-window cumulative baselines (counters are monotonic; the
  // merged histogram buckets only grow), so deltas isolate the window.
  std::uint64_t prev_packets_ = 0;
  std::uint64_t prev_admitted_ = 0;
  std::uint64_t prev_shed_ = 0;
  std::vector<std::uint64_t> prev_latency_buckets_;
  double prev_latency_sum_ = 0.0;
};

}  // namespace speedybox::control
