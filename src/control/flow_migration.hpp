// Consistent flow-state migration between shard replicas (DESIGN.md §10).
//
// Live resharding moves a flow — classifier entry, per-NF internal state,
// Local MAT records, Event Table entries, and the consolidated Global MAT
// rule — from one quiesced ServiceChain replica to another, such that the
// flow's next packet takes the identical fast path it would have taken had
// it never moved. The per-NF state crosses via the serialization API on
// nf::NetworkFunction (export_flow_state / import_flow_state); the Local
// MAT records and events are re-recorded by the import (the recorded
// closures capture source-instance pointers, so they can never be copied),
// and the destination then re-consolidates, reproducing the source's rule
// byte for byte.
//
// The engine is strictly three-phase per migration batch:
//
//   1. export  — copy every migrating flow's per-NF payloads out of the
//                source (Monitor moves its counters: a counted byte must
//                live in exactly one shard);
//   2. import  — adopt each flow at the destination (same FID probing as
//                classify, preserved last-seen stamp), replay the per-NF
//                imports with a recording context, then consolidate and
//                transplant the learned batch-cost profile;
//   3. erase   — tear the flows out of the source (teardown hooks run, so
//                NF-internal maps shed the migrated keys).
//
// The phase barrier matters: MazuNAT's two directions share the port
// mapping, and erasing the outbound flow (whose teardown hook releases the
// mapping) before the inbound sibling exports would corrupt the sibling's
// state. Both directions always migrate together (symmetric-hash shard
// affinity), and phase 1 finishes before phase 3 starts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "core/classifier.hpp"
#include "runtime/chain.hpp"
#include "runtime/sharded_runtime.hpp"

namespace speedybox::control {

/// Throws std::logic_error naming the first NF that does not implement the
/// flow-state serialization API — autoscaling setups fail loudly before
/// the first packet, never mid-migration.
void require_migratable(const runtime::ServiceChain& chain);

/// Move every flow in `flows` from `source` to `dest`. Both chains must be
/// quiesced (no worker touching them). Returns the number of flows moved.
std::size_t migrate_flows(
    runtime::ServiceChain& source, runtime::ServiceChain& dest,
    std::span<const core::PacketClassifier::ActiveFlow> flows);

/// One resharding operation, as reported to telemetry and the benches.
struct ReshardReport {
  std::size_t from_shards = 0;
  std::size_t to_shards = 0;
  std::size_t migrated_flows = 0;
  std::uint64_t migration_cycles = 0;
};

/// Live-reshard a running ShardedRuntime to `new_count` active shards:
/// quiesce, start/restart destination workers, migrate every flow whose
/// Lemire shard index changes under the new count, retire surplus workers,
/// and re-open dispatch. Dispatcher thread only, at a packet boundary
/// (ShardedRuntime::ScaleHook is exactly that). A no-op (beyond the
/// report) when new_count already matches.
ReshardReport reshard(runtime::ShardedRuntime& runtime,
                      std::size_t new_count);

}  // namespace speedybox::control
