#include "control/flow_migration.hpp"

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/api.hpp"
#include "core/global_mat.hpp"
#include "core/header_action.hpp"
#include "core/local_mat.hpp"
#include "net/fields.hpp"
#include "net/five_tuple.hpp"
#include "util/cycle_clock.hpp"
#include "util/hash.hpp"

namespace speedybox::control {

namespace {

/// Per-NF exported payload, keyed by the tuple the NF actually observed
/// (upstream modifies applied).
struct ExportedNf {
  std::size_t nf_index = 0;
  net::FiveTuple observed;
  std::vector<std::uint8_t> payload;
};

struct ExportedFlow {
  net::FiveTuple tuple;  // pre-chain tuple (classifier key)
  std::uint32_t source_fid = net::kInvalidFid;
  std::uint64_t last_seen_cycles = 0;
  std::vector<ExportedNf> states;
  // Consolidated-rule handoff (values copied: the source rule dies with
  // the phase-3 erase).
  bool had_rule = false;
  bool degraded_default = false;
  std::uint32_t cost_samples = 0;
  double critical_fraction = 1.0;
};

/// Evolve `tuple` through the header actions NF `record` applied, so the
/// next NF's export is keyed by the tuple it observed. Absent or
/// non-modify records leave the tuple untouched; a recorded drop does not
/// stop the walk (downstream NFs may hold state from packets that flowed
/// before the drop was installed — e.g. a DoS blacklist flipping the rule
/// mid-flow — and NFs that truly never saw the flow export nothing).
void evolve_tuple(const core::LocalRule& record, net::FiveTuple& tuple) {
  for (const core::HeaderAction& action : record.header_actions) {
    if (action.type != core::HeaderActionType::kModify) continue;
    switch (action.field) {
      case net::HeaderField::kSrcIp:
        tuple.src_ip = net::Ipv4Addr{action.value};
        break;
      case net::HeaderField::kDstIp:
        tuple.dst_ip = net::Ipv4Addr{action.value};
        break;
      case net::HeaderField::kSrcPort:
        tuple.src_port = static_cast<std::uint16_t>(action.value);
        break;
      case net::HeaderField::kDstPort:
        tuple.dst_port = static_cast<std::uint16_t>(action.value);
        break;
      default:
        break;  // TTL/TOS rewrites don't change the flow identity
    }
  }
}

ExportedFlow export_flow(runtime::ServiceChain& source,
                         const core::PacketClassifier::ActiveFlow& flow) {
  ExportedFlow exported;
  exported.tuple = flow.tuple;
  exported.source_fid = flow.fid;
  exported.last_seen_cycles = flow.last_seen_cycles;

  net::FiveTuple observed = flow.tuple;
  for (std::size_t i = 0; i < source.size(); ++i) {
    auto payload = source.nf(i).export_flow_state(observed);
    if (payload) {
      exported.states.push_back({i, observed, std::move(*payload)});
    }
    if (const auto record = source.local_mat(i).snapshot(flow.fid)) {
      evolve_tuple(*record, observed);
    }
  }

  if (const core::ConsolidatedRule* rule =
          source.global_mat().find(flow.fid)) {
    exported.had_rule = true;
    exported.degraded_default = rule->degraded_default;
    exported.cost_samples = rule->cost_samples;
    exported.critical_fraction = rule->critical_fraction;
  }
  return exported;
}

void import_flow(runtime::ServiceChain& dest, const ExportedFlow& flow) {
  const std::uint32_t fid =
      dest.classifier().adopt_flow(flow.tuple, flow.last_seen_cycles);
  for (const ExportedNf& state : flow.states) {
    // The context records straight into the destination's Local MAT and
    // Event Table — the import is a replay of what the NF recorded for
    // this flow's initial packet, minus already-fired one-shot events.
    core::SpeedyBoxContext ctx{dest.local_mat(state.nf_index),
                               dest.global_mat().event_table(), fid};
    dest.nf(state.nf_index)
        .import_flow_state(state.observed, state.payload, &ctx);
  }
  if (flow.had_rule && flow.degraded_default) {
    // The flow was admitted under graceful degradation and never recorded:
    // hand it the same pre-consolidated default rule, not a real one.
    dest.global_mat().install_default_rule(fid);
    return;
  }
  dest.global_mat().consolidate_flow(fid);
  if (flow.had_rule) {
    dest.global_mat().transfer_cost_profile(fid, flow.cost_samples,
                                            flow.critical_fraction);
  }
}

}  // namespace

void require_migratable(const runtime::ServiceChain& chain) {
  for (std::size_t i = 0; i < chain.size(); ++i) {
    if (!chain.nf(i).supports_flow_migration()) {
      throw std::logic_error("NetworkFunction '" +
                             std::string(chain.nf(i).name()) +
                             "' does not support flow migration");
    }
  }
}

std::size_t migrate_flows(
    runtime::ServiceChain& source, runtime::ServiceChain& dest,
    std::span<const core::PacketClassifier::ActiveFlow> flows) {
  // Phase 1: copy everything out of the source. No source mutation beyond
  // Monitor's move-on-export, so sibling flows (NAT's two directions)
  // still see consistent shared state whatever the iteration order.
  std::vector<ExportedFlow> exported;
  exported.reserve(flows.size());
  for (const auto& flow : flows) {
    exported.push_back(export_flow(source, flow));
  }
  // Phase 2: adopt + replay at the destination.
  for (const ExportedFlow& flow : exported) {
    import_flow(dest, flow);
  }
  // Phase 3: tear the flows out of the source. run_hooks=true so each
  // NF's teardown hook sheds its internal entry for the migrated key —
  // the cross-shard union of NF state stays a partition.
  for (const ExportedFlow& flow : exported) {
    source.global_mat().erase_flow(flow.source_fid, /*run_hooks=*/true);
    source.classifier().release_flow(flow.source_fid);
  }
  return exported.size();
}

ReshardReport reshard(runtime::ShardedRuntime& runtime,
                      std::size_t new_count) {
  ReshardReport report;
  report.from_shards = runtime.active_shard_count();
  report.to_shards = new_count == 0 ? 1 : new_count;
  if (report.to_shards == report.from_shards) return report;

  const std::uint64_t start = util::CycleClock::now();
  runtime.quiesce();
  // Scale-up: destination workers must exist (and be registered with
  // telemetry/overload) before their chains receive state.
  if (report.to_shards > report.from_shards) {
    runtime.ensure_worker_shards(report.to_shards);
  }
  // Every shard ever started may hold flows whose Lemire index changes
  // under the new count — any pair of shards can exchange flows, not just
  // the tail (shard_index is multiply-shift, not modulo).
  for (std::size_t s = 0; s < runtime.shard_count(); ++s) {
    runtime::ServiceChain& chain = runtime.shard_chain(s);
    const auto flows = chain.classifier().active_tuples();
    // Bucket by destination shard: shard indices are small and dense, so a
    // flat vector indexed by shard beats an ordered map of buckets.
    std::vector<std::vector<core::PacketClassifier::ActiveFlow>> moves(
        report.to_shards);
    for (const auto& flow : flows) {
      const std::size_t target = util::shard_index(
          flow.tuple.symmetric_hash(), report.to_shards);
      if (target != s) moves[target].push_back(flow);
    }
    for (std::size_t target = 0; target < moves.size(); ++target) {
      if (moves[target].empty()) continue;
      report.migrated_flows +=
          migrate_flows(chain, runtime.shard_chain(target), moves[target]);
    }
  }
  if (report.to_shards < report.from_shards) {
    runtime.retire_worker_shards(report.to_shards);
  }
  runtime.set_active_shard_count(report.to_shards);
  report.migration_cycles = util::CycleClock::now() - start;
  return report;
}

}  // namespace speedybox::control
