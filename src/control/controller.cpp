#include "control/controller.hpp"

#include <algorithm>
#include <utility>

#include "util/cycle_clock.hpp"
#include "util/histogram.hpp"

namespace speedybox::control {

std::size_t ScalingPolicy::decide(const ControlSignals& signals,
                                  std::size_t active) {
  const std::size_t floor = std::max<std::size_t>(1, config_.min_shards);
  const std::size_t ceiling = std::max(floor, config_.max_shards);
  const std::size_t clamped = std::clamp(active, floor, ceiling);
  if (clamped != active) return clamped;  // out-of-band: correct first

  // Streaks advance every window, cooldown or not, so pressure building
  // during the settle period still counts toward the next decision.
  const bool breach = signals.p99_latency_us > config_.slo_us ||
                      signals.ring_occupancy >= config_.occupancy_high ||
                      signals.admit_fraction < config_.admit_low;
  const bool calm =
      !breach && signals.window_packets > 0 &&
      signals.p99_latency_us <
          config_.slo_us * config_.scale_down_fraction;
  if (breach) {
    ++breach_streak_;
    calm_streak_ = 0;
  } else if (calm) {
    ++calm_streak_;
    breach_streak_ = 0;
  } else {
    breach_streak_ = 0;
    calm_streak_ = 0;
  }

  if (cooldown_ > 0) {
    --cooldown_;
    return active;
  }
  if (breach_streak_ >= config_.up_streak && active < ceiling) {
    breach_streak_ = 0;
    calm_streak_ = 0;
    cooldown_ = config_.cooldown_windows;
    return active + 1;
  }
  if (calm_streak_ >= config_.down_streak && active > floor) {
    breach_streak_ = 0;
    calm_streak_ = 0;
    cooldown_ = config_.cooldown_windows;
    return active - 1;
  }
  return active;
}

Controller::Controller(AutoscaleConfig config, telemetry::Registry& registry,
                       std::string label)
    : config_(config),
      registry_(&registry),
      metrics_(&registry.create_shard(std::move(label))),
      policy_(config) {}

void Controller::attach(runtime::ShardedRuntime& runtime) {
  require_migratable(runtime.shard_chain(0));
  metrics_->active_shards.set(runtime.active_shard_count());
  runtime.set_scale_hook(
      [this](runtime::ShardedRuntime& rt) { tick(rt); },
      config_.interval_packets);
}

ControlSignals Controller::compute_signals(
    const runtime::ShardedRuntime& runtime) {
  const telemetry::ShardSnapshot total = registry_->snapshot().aggregate();

  std::uint64_t packets = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  for (const auto& [name, value] : total.counters) {
    if (name == "packets") packets = value;
    else if (name == "admitted") admitted = value;
    else if (name == "shed_admission" || name == "shed_watermark" ||
             name == "shed_early_drop") {
      shed += value;
    }
  }

  // Per-packet latency = fast-path and slow-path cycle histograms merged;
  // the window's distribution is the bucket-wise delta of the cumulative
  // snapshot against the previous tick's.
  std::vector<std::uint64_t> buckets(
      static_cast<std::size_t>(util::LogHistogram::raw_bucket_count()), 0);
  double sum = 0.0;
  for (const auto& [name, hist] : total.histograms) {
    if (name != "fastpath_cycles" && name != "slowpath_cycles") continue;
    const auto& counts = hist.raw_bucket_counts();
    for (std::size_t i = 0; i < counts.size() && i < buckets.size(); ++i) {
      buckets[i] += counts[i];
    }
    sum += hist.sum();
  }
  std::vector<std::uint64_t> window = buckets;
  double window_sum = sum;
  if (!prev_latency_buckets_.empty()) {
    for (std::size_t i = 0; i < window.size(); ++i) {
      window[i] -= prev_latency_buckets_[i];
    }
    window_sum -= prev_latency_sum_;
  }
  const util::LogHistogram window_hist = util::LogHistogram::from_raw(
      window.data(), static_cast<int>(window.size()), window_sum);

  ControlSignals signals;
  signals.window_packets = packets - prev_packets_;
  signals.p99_latency_us = util::CycleClock::to_us(
      static_cast<std::uint64_t>(window_hist.percentile(99.0)));
  signals.ring_occupancy = runtime.max_ring_occupancy();
  const std::uint64_t window_admitted = admitted - prev_admitted_;
  const std::uint64_t window_shed = shed - prev_shed_;
  const std::uint64_t offered = window_admitted + window_shed;
  signals.admit_fraction =
      offered == 0 ? 1.0
                   : static_cast<double>(window_admitted) /
                         static_cast<double>(offered);

  prev_packets_ = packets;
  prev_admitted_ = admitted;
  prev_shed_ = shed;
  prev_latency_buckets_ = std::move(buckets);
  prev_latency_sum_ = sum;
  return signals;
}

void Controller::tick(runtime::ShardedRuntime& runtime) {
  const ControlSignals signals = compute_signals(runtime);
  const std::size_t active = runtime.active_shard_count();
  const std::size_t target = policy_.decide(signals, active);
  if (target == active) {
    metrics_->active_shards.set(active);
    return;
  }
  const ReshardReport report = reshard(runtime, target);
  events_.push_back(report);
  metrics_->scale_events.add(1);
  metrics_->migrated_flows.add(report.migrated_flows);
  metrics_->migration_cycles.record(report.migration_cycles);
  metrics_->active_shards.set(report.to_shards);
}

}  // namespace speedybox::control
