// Platform cost model: the per-NF hand-off/framework overheads of the two
// NFV execution environments (§VI-A).
//
//   BESS       — the whole chain is one process on a dedicated core; per
//                module a packet pays an indirect call plus the module
//                framework (batch buffer management, per-packet metadata,
//                scheduler share).
//   OpenNetVM  — each NF runs on its own core; per NF a packet pays a
//                shared-memory descriptor ring enqueue/dequeue, a
//                cross-core cache-line transfer, and the NF-side wrapper
//                (mbuf metadata, RX/TX queue bookkeeping).
//
// All NF *work* is really executed and cycle-measured; the hand-off /
// framework overheads are modeled because this container has a single core
// (see DESIGN.md §1). What can be measured honestly is measured at startup
// (the indirect call and the SPSC enqueue/dequeue pair); the remaining
// components are documented constants:
//
//   * cross-core cache-coherence transfer: typical L2→LLC→L2 latency on
//     Xeon-class parts is 40–70ns ≈ 100–150 cycles; we use 120.
//   * per-module/per-NF framework share: BESS-style run-to-completion
//     frameworks cost ~tens of cycles per module per packet for batch and
//     metadata management; ONVM's NF-side wrapper is similar. We use 75.
//   * fork/join of one parallel state-function group onto spinning worker
//     cores: one cache-line handoff each way plus wakeup, ~150 cycles.
//   * per-burst rx fixed cost: one rx-burst poll (descriptor-ring scan and
//     refill, doorbell write) costs a DPDK-class driver a few hundred
//     cycles regardless of how many packets the burst returns; we use 600.
//     Each packet pays its burst's share — the amortization that makes
//     vector I/O pay off (DESIGN.md §8).
#pragma once

#include <cstdint>

namespace speedybox::platform {

enum class PlatformKind : std::uint8_t { kBess, kOnvm };

constexpr const char* platform_name(PlatformKind kind) noexcept {
  return kind == PlatformKind::kBess ? "BESS" : "ONVM";
}

/// Cross-core cache-coherence transfer penalty (documented constant).
inline constexpr std::uint64_t kCrossCorePenaltyCycles = 120;

/// Per-module / per-NF framework share (documented constant).
inline constexpr std::uint64_t kPerNfFrameworkCycles = 75;

/// Fork/join cost of dispatching one parallel state-function group
/// (documented constant; spinning workers).
inline constexpr std::uint64_t kForkJoinCycles = 150;

/// Fixed cost of one rx-burst poll at the pipeline entry (documented
/// constant), paid once per burst and shared by the packets in it.
inline constexpr std::uint64_t kRxBurstFixedCycles = 600;

struct PlatformCosts {
  /// Per-module hand-off inside the BESS process:
  /// measured indirect call + framework share.
  std::uint64_t bess_hop_cycles = 30 + kPerNfFrameworkCycles;
  /// Per-NF hand-off on ONVM: measured descriptor ring enqueue+dequeue +
  /// cross-core penalty + framework share.
  std::uint64_t onvm_ring_hop_cycles =
      130 + kCrossCorePenaltyCycles + kPerNfFrameworkCycles;
  /// Fork/join overhead per parallel state-function group.
  std::uint64_t fork_join_cycles = kForkJoinCycles;
  /// Per-burst rx fixed cost; each packet is charged
  /// rx_burst_fixed_cycles / burst-occupancy at the pipeline entry.
  std::uint64_t rx_burst_fixed_cycles = kRxBurstFixedCycles;

  /// Calibrated-once singleton (measures ring + call costs at first use).
  static const PlatformCosts& calibrated();

  /// Raw calibration (no caching) — used by the calibration unit test.
  static PlatformCosts measure();
};

}  // namespace speedybox::platform
