// Threaded OpenNetVM-style pipeline: each NF stage runs on its own thread,
// stages are connected by SPSC shared-memory descriptor rings, exactly the
// ONVM execution discipline (§VI-A: "runs each NF on one dedicated core,
// and interconnects NFs leveraging RX/TX queues that deliver shared memory
// packet descriptors").
//
// On a multi-core host this gives real pipeline overlap; on the single-core
// evaluation container threads still interleave correctly (the integration
// tests verify ordering and output equivalence), while the *performance*
// accounting for benchmarks uses the deterministic cost model in
// runtime/runner.hpp. See DESIGN.md §1.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "nf/network_function.hpp"
#include "util/spsc_ring.hpp"

namespace speedybox::platform {

class OnvmPipeline {
 public:
  /// NFs are borrowed and must outlive the pipeline. Processing starts
  /// immediately; packets pushed before stop() flow through every stage in
  /// FIFO order. Each stage drains its ring in bursts of up to
  /// `batch_size` descriptors and hands them to the NF's process_batch
  /// (DESIGN.md §8); 1 degenerates to descriptor-at-a-time.
  OnvmPipeline(std::vector<nf::NetworkFunction*> stages,
               std::size_t ring_capacity = 1024,
               std::size_t batch_size = net::kDefaultBatchSize);
  ~OnvmPipeline();

  OnvmPipeline(const OnvmPipeline&) = delete;
  OnvmPipeline& operator=(const OnvmPipeline&) = delete;

  /// Feed a packet into the first stage (blocking while rings are full).
  void push(net::Packet packet);

  /// Stop accepting input, drain all stages, join the workers, and return
  /// every packet that reached the end of the chain (dropped packets are
  /// filtered out), in arrival order.
  std::vector<net::Packet> stop_and_collect();

  // -- ingress-gate hooks (runtime::OnvmExecutor; the runtime layer sits
  // -- above this one and gates before push()) --
  /// Producer-side watermark hysteresis over the first ring. Only valid
  /// from the pushing thread.
  void set_ingress_watermarks(std::size_t high, std::size_t low) noexcept {
    rings_.front()->set_watermarks(high, low);
  }
  bool ingress_pressured() noexcept {
    return rings_.front()->over_watermark();
  }
  std::size_t ingress_depth() const noexcept {
    return rings_.front()->size();
  }
  std::size_t ingress_capacity() const noexcept {
    return rings_.front()->capacity();
  }
  /// In-chain packet losses, split by cause (relaxed counters, exact once
  /// the workers are joined). Faulted = an injected NF failure marked the
  /// packet (net::Packet::faulted()); disjoint from drops.
  std::uint64_t drops() const noexcept {
    return drops_.load(std::memory_order_relaxed);
  }
  std::uint64_t faulted() const noexcept {
    return faulted_.load(std::memory_order_relaxed);
  }

 private:
  void worker(std::size_t stage);

  std::vector<nf::NetworkFunction*> stages_;
  std::size_t batch_size_;
  std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> faulted_{0};
  /// Ring i feeds stage i. The last stage appends to the (unbounded) sink
  /// under a mutex, so the pipeline can never deadlock on a full tail ring.
  std::vector<std::unique_ptr<util::SpscRing<net::Packet*>>> rings_;
  std::vector<std::thread> workers_;
  /// stop_flags_[i] is raised only after stage i-1 has fully drained and
  /// joined, so stage i never exits with an upstream packet in flight.
  std::vector<std::unique_ptr<std::atomic<bool>>> stop_flags_;
  std::mutex sink_mutex_;
  std::vector<net::Packet> sink_;
  bool stopped_ = false;
};

}  // namespace speedybox::platform
