#include "platform/costs.hpp"

#include <algorithm>

#include "util/cycle_clock.hpp"
#include "util/spsc_ring.hpp"

namespace speedybox::platform {
namespace {

/// Measured cost of one SPSC enqueue+dequeue pair (same core; the
/// cross-core penalty is added separately).
std::uint64_t measure_ring_pair() {
  util::SpscRing<void*> ring{1024};
  int dummy = 0;
  constexpr int kIters = 20000;
  // Warm-up.
  for (int i = 0; i < 1000; ++i) {
    ring.try_push(&dummy);
    (void)ring.try_pop();
  }
  const std::uint64_t t0 = util::CycleClock::now();
  for (int i = 0; i < kIters; ++i) {
    ring.try_push(&dummy);
    (void)ring.try_pop();
  }
  const std::uint64_t elapsed = util::CycleClock::now() - t0;
  return std::max<std::uint64_t>(1, elapsed / kIters);
}

struct CallProbe {
  virtual ~CallProbe() = default;
  virtual std::uint64_t step(std::uint64_t x) = 0;
};
struct CallProbeImpl final : CallProbe {
  std::uint64_t step(std::uint64_t x) override { return x * 2654435761u + 1; }
};

/// Measured cost of one indirect (virtual) call — the BESS module hop.
std::uint64_t measure_indirect_call() {
  CallProbeImpl impl;
  CallProbe* probe = &impl;
  constexpr int kIters = 50000;
  volatile std::uint64_t sink = 1;
  const std::uint64_t t0 = util::CycleClock::now();
  std::uint64_t acc = sink;
  for (int i = 0; i < kIters; ++i) acc = probe->step(acc);
  const std::uint64_t elapsed = util::CycleClock::now() - t0;
  sink = acc;
  return std::max<std::uint64_t>(1, elapsed / kIters);
}

}  // namespace

PlatformCosts PlatformCosts::measure() {
  PlatformCosts costs;
  costs.bess_hop_cycles = measure_indirect_call() + kPerNfFrameworkCycles;
  costs.onvm_ring_hop_cycles =
      measure_ring_pair() + kCrossCorePenaltyCycles + kPerNfFrameworkCycles;
  costs.fork_join_cycles = kForkJoinCycles;
  costs.rx_burst_fixed_cycles = kRxBurstFixedCycles;
  return costs;
}

const PlatformCosts& PlatformCosts::calibrated() {
  static const PlatformCosts costs = measure();
  return costs;
}

}  // namespace speedybox::platform
