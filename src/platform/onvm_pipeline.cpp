#include "platform/onvm_pipeline.hpp"

#include <span>

#include "net/packet_batch.hpp"

namespace speedybox::platform {

OnvmPipeline::OnvmPipeline(std::vector<nf::NetworkFunction*> stages,
                           std::size_t ring_capacity,
                           std::size_t batch_size)
    : stages_(std::move(stages)),
      batch_size_(batch_size == 0 ? 1 : batch_size) {
  rings_.reserve(stages_.size());
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    rings_.push_back(
        std::make_unique<util::SpscRing<net::Packet*>>(ring_capacity));
  }
  workers_.reserve(stages_.size());
  stop_flags_.reserve(stages_.size());
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    stop_flags_.push_back(std::make_unique<std::atomic<bool>>(false));
  }
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    workers_.emplace_back([this, i] { worker(i); });
  }
}

OnvmPipeline::~OnvmPipeline() {
  if (!stopped_) stop_and_collect();
}

void OnvmPipeline::push(net::Packet packet) {
  auto* descriptor = new net::Packet(std::move(packet));
  while (!rings_.front()->try_push(descriptor)) {
    std::this_thread::yield();
  }
}

void OnvmPipeline::worker(std::size_t stage) {
  util::SpscRing<net::Packet*>& in = *rings_[stage];
  const bool last = stage + 1 == stages_.size();
  // Burst discipline (DESIGN.md §8): one try_pop_burst fills a PacketBatch,
  // the NF processes the whole vector (dropped packets are masked in place,
  // never compacted, so slot order == arrival order), and the survivors
  // forward downstream with one burst push. Stage semantics are identical
  // to the descriptor-at-a-time loop.
  std::vector<net::Packet*> descriptors(batch_size_);
  std::vector<net::Packet*> survivors;
  survivors.reserve(batch_size_);
  net::PacketBatch batch{batch_size_};
  for (;;) {
    const std::size_t popped =
        in.try_pop_burst(std::span<net::Packet*>{descriptors});
    if (popped == 0) {
      if (stop_flags_[stage]->load(std::memory_order_acquire) && in.empty()) {
        return;
      }
      std::this_thread::yield();
      continue;
    }
    batch.clear();
    for (std::size_t i = 0; i < popped; ++i) {
      batch.push(descriptors[i]);
    }
    stages_[stage]->process_batch(batch, {});
    survivors.clear();
    for (std::size_t i = 0; i < popped; ++i) {
      net::Packet* packet = descriptors[i];
      if (packet->dropped()) {
        (packet->faulted() ? faulted_ : drops_)
            .fetch_add(1, std::memory_order_relaxed);
        delete packet;  // slot masked in the batch: packet memory released
        continue;
      }
      survivors.push_back(packet);
    }
    if (survivors.empty()) continue;
    if (last) {
      const std::lock_guard lock(sink_mutex_);
      for (net::Packet* packet : survivors) {
        sink_.push_back(std::move(*packet));
        delete packet;
      }
    } else {
      util::SpscRing<net::Packet*>& out = *rings_[stage + 1];
      std::span<net::Packet*> pending{survivors};
      while (!pending.empty()) {
        pending = pending.subspan(out.try_push_burst(pending));
        if (!pending.empty()) std::this_thread::yield();
      }
    }
  }
}

std::vector<net::Packet> OnvmPipeline::stop_and_collect() {
  if (!stopped_) {
    // Stop stage by stage in chain order: stage i is told to stop only once
    // stage i-1 has drained and joined, so by induction every in-flight
    // packet reaches the sink.
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      stop_flags_[i]->store(true, std::memory_order_release);
      workers_[i].join();
    }
    stopped_ = true;
  }
  const std::lock_guard lock(sink_mutex_);
  return std::move(sink_);
}

}  // namespace speedybox::platform
