#include "platform/onvm_pipeline.hpp"

namespace speedybox::platform {

OnvmPipeline::OnvmPipeline(std::vector<nf::NetworkFunction*> stages,
                           std::size_t ring_capacity)
    : stages_(std::move(stages)) {
  rings_.reserve(stages_.size());
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    rings_.push_back(
        std::make_unique<util::SpscRing<net::Packet*>>(ring_capacity));
  }
  workers_.reserve(stages_.size());
  stop_flags_.reserve(stages_.size());
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    stop_flags_.push_back(std::make_unique<std::atomic<bool>>(false));
  }
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    workers_.emplace_back([this, i] { worker(i); });
  }
}

OnvmPipeline::~OnvmPipeline() {
  if (!stopped_) stop_and_collect();
}

void OnvmPipeline::push(net::Packet packet) {
  auto* descriptor = new net::Packet(std::move(packet));
  while (!rings_.front()->try_push(descriptor)) {
    std::this_thread::yield();
  }
}

void OnvmPipeline::worker(std::size_t stage) {
  util::SpscRing<net::Packet*>& in = *rings_[stage];
  const bool last = stage + 1 == stages_.size();
  for (;;) {
    auto descriptor = in.try_pop();
    if (!descriptor) {
      if (stop_flags_[stage]->load(std::memory_order_acquire) && in.empty()) {
        return;
      }
      std::this_thread::yield();
      continue;
    }
    net::Packet* packet = *descriptor;
    stages_[stage]->process(*packet, nullptr);
    if (packet->dropped()) {
      delete packet;  // descriptor set to nil: packet memory released
      continue;
    }
    if (last) {
      const std::lock_guard lock(sink_mutex_);
      sink_.push_back(std::move(*packet));
      delete packet;
    } else {
      util::SpscRing<net::Packet*>& out = *rings_[stage + 1];
      while (!out.try_push(packet)) {
        std::this_thread::yield();
      }
    }
  }
}

std::vector<net::Packet> OnvmPipeline::stop_and_collect() {
  if (!stopped_) {
    // Stop stage by stage in chain order: stage i is told to stop only once
    // stage i-1 has drained and joined, so by induction every in-flight
    // packet reaches the sink.
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      stop_flags_[i]->store(true, std::memory_order_release);
      workers_[i].join();
    }
    stopped_ = true;
  }
  const std::lock_guard lock(sink_mutex_);
  return std::move(sink_);
}

}  // namespace speedybox::platform
