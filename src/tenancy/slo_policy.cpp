#include "tenancy/slo_policy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace speedybox::tenancy {

SloEnforcementPolicy::SloEnforcementPolicy(const EnforcementConfig& config,
                                           std::size_t tenant_count)
    : config_(config), states_(tenant_count) {
  config_.validate();
  if (tenant_count == 0) {
    throw std::logic_error("SloEnforcementPolicy: no tenants");
  }
}

TenantDecision SloEnforcementPolicy::decision_of(
    const TenantState& state) const {
  TenantDecision decision;
  decision.admission_budget = state.budget;
  decision.gate_policy = state.escalation >= 2
                             ? runtime::DropPolicy::kPerFlowFair
                             : runtime::DropPolicy::kTailDrop;
  decision.escalation = state.escalation;
  return decision;
}

std::vector<TenantDecision> SloEnforcementPolicy::tick(
    const std::vector<TenantInput>& tenants, std::size_t pool_shards) {
  if (tenants.size() != states_.size()) {
    throw std::logic_error(
        "SloEnforcementPolicy: tenant count changed between ticks");
  }

  // Streaks advance every window, cooldown or not (pressure building during
  // the settle period counts toward the next action) — the same discipline
  // control::ScalingPolicy applies.
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const TenantInput& tenant = tenants[i];
    TenantState& state = states_[i];
    const bool active = tenant.signals.window_offered > 0;
    const bool breach =
        active && tenant.signals.p99_latency_us > tenant.slo_us;
    // An idle tenant counts as calm: whatever it was punished for, it is
    // not doing it any more, and its gate should eventually relax.
    const bool calm =
        !breach && (!active || tenant.signals.p99_latency_us <
                                   tenant.slo_us * config_.calm_fraction);
    if (breach) {
      ++state.breach_streak;
      state.calm_streak = 0;
    } else if (calm) {
      ++state.calm_streak;
      state.breach_streak = 0;
    } else {
      state.breach_streak = 0;
      state.calm_streak = 0;
    }
  }

  std::vector<TenantDecision> decisions(tenants.size());
  const auto render = [&] {
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      const int delta = decisions[i].shard_delta;
      decisions[i] = decision_of(states_[i]);
      decisions[i].shard_delta = delta;
    }
  };

  if (cooldown_ > 0) {
    --cooldown_;
    render();
    return decisions;
  }

  // Victim: longest qualifying breach streak (ties -> lowest index).
  std::size_t victim = tenants.size();
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    if (states_[i].breach_streak < config_.breach_streak) continue;
    if (victim == tenants.size() ||
        states_[i].breach_streak > states_[victim].breach_streak) {
      victim = i;
    }
  }

  if (victim == tenants.size()) {
    // No breach: one ladder step down for every sufficiently calm tenant.
    bool acted = false;
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      TenantState& state = states_[i];
      if (state.escalation == 0 ||
          state.calm_streak < config_.calm_streak) {
        continue;
      }
      state.escalation = config_.tighten_admission ? state.escalation - 1 : 0;
      if (state.escalation == 0 || state.budget == kUnlimitedBudget) {
        state.budget = kUnlimitedBudget;
      } else {
        state.budget = static_cast<std::uint64_t>(
            std::ceil(static_cast<double>(state.budget) /
                      config_.tighten_factor));
      }
      state.calm_streak = 0;
      acted = true;
    }
    if (acted) cooldown_ = config_.cooldown_windows;
    render();
    return decisions;
  }

  // Offender: highest offered-load-per-weight among the other tenants —
  // but only if it out-offers the victim per weight. A self-inflicted
  // breach (the victim is its own heaviest load) never tightens an
  // innocent neighbour; the victim can still claim pool headroom.
  std::size_t offender = tenants.size();
  double offender_score = 0.0;
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    if (i == victim || tenants[i].signals.window_offered == 0) continue;
    const double score =
        static_cast<double>(tenants[i].signals.window_offered) /
        tenants[i].weight;
    if (offender == tenants.size() || score > offender_score) {
      offender = i;
      offender_score = score;
    }
  }
  const double victim_score =
      static_cast<double>(tenants[victim].signals.window_offered) /
      tenants[victim].weight;
  if (offender != tenants.size() && offender_score <= victim_score) {
    offender = tenants.size();
  }

  bool acted = false;

  // Free pool headroom first: a shard nobody owns costs nobody anything.
  if (config_.reallocate_shards && tenants[victim].sharded) {
    std::size_t allocated = 0;
    for (const TenantInput& tenant : tenants) {
      if (tenant.sharded) allocated += tenant.active_shards;
    }
    if (allocated < pool_shards) {
      decisions[victim].shard_delta = +1;
      acted = true;
    }
  }

  if (offender != tenants.size()) {
    TenantState& state = states_[offender];
    // Without admission tightening the ladder's only rung with teeth is
    // L3, so the offender jumps straight to it.
    const int next = config_.tighten_admission
                         ? std::min(state.escalation + 1, 3)
                         : 3;
    state.escalation = next;
    if (config_.tighten_admission) {
      const double base =
          state.budget == kUnlimitedBudget
              ? static_cast<double>(
                    tenants[offender].signals.window_offered)
              : static_cast<double>(state.budget);
      state.budget = std::max<std::uint64_t>(
          config_.min_budget,
          static_cast<std::uint64_t>(base * config_.tighten_factor));
    }
    if (next >= 3 && config_.reallocate_shards &&
        decisions[victim].shard_delta == 0 && tenants[victim].sharded &&
        tenants[offender].sharded && tenants[offender].active_shards > 1) {
      decisions[offender].shard_delta = -1;
      decisions[victim].shard_delta = +1;
    }
    state.calm_streak = 0;
    acted = true;
  }

  if (acted) {
    states_[victim].breach_streak = 0;
    cooldown_ = config_.cooldown_windows;
  }
  render();
  return decisions;
}

}  // namespace speedybox::tenancy
