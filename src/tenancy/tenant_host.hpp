// TenantHost (DESIGN.md §14): hosts several independent tenant chains
// concurrently on one shared shard pool, with an SLO enforcement loop
// arbitrating between them.
//
// Two drive modes, mirroring chainsim's:
//
//   run()    in-process — each tenant's trace::WorkloadSpec materializes,
//            the host interleaves the tenants' packet sequences
//            proportionally (deterministic: pick the tenant with the
//            lowest sent/total ratio, ties to the lowest index) and drives
//            every executor from ONE host thread. That thread is the
//            dispatcher of every sharded tenant, so enforcement actions —
//            including shard reallocation through control::reshard — land
//            at packet boundaries and the whole run is deterministic.
//
//   serve()  live — one io::IngestServer per tenant (the tenant's listener
//            port classifies wire traffic), each on its own ingest thread,
//            plus an enforcement thread polling telemetry. Budget/policy
//            updates publish through atomics; shard deltas queue per
//            tenant and the tenant's own ingest thread applies them at a
//            packet boundary (it is that runtime's dispatcher).
//
// The admission gate sits at the host boundary, before the tenant's own
// executor (and before its overload gate, when it has one):
//
//   offered == gate_shed + forwarded                    (host gate)
//   forwarded == executor offered                       (hand-off)
//   admitted == delivered + drops + faulted             (executor)
//
// — the per-tenant halves of the conservation identity the property suite
// checks under the adversarial-tenant scenario.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/ingest_server.hpp"
#include "runtime/plan.hpp"
#include "runtime/runner.hpp"
#include "runtime/sharded_runtime.hpp"
#include "telemetry/metrics.hpp"
#include "tenancy/slo_policy.hpp"
#include "tenancy/tenant_spec.hpp"

namespace speedybox::tenancy {

/// Deterministic per-tenant admission gate at the host boundary. Single
/// writer per instance (the tenant's drive thread); the arbiter publishes
/// budget/policy through relaxed atomics.
class TenantGate {
 public:
  /// Arbiter side: publish a new window's budget/policy. `last_offered`
  /// sizes the per-flow-fair surviving band (budget / offered, in 1024ths).
  void configure(std::uint64_t budget, runtime::DropPolicy policy,
                 std::uint64_t last_offered) noexcept;

  /// Drive side: offer one packet; true admits. `flow_hash` must be the
  /// flow's symmetric hash so per-flow-fair sheds whole flows (both
  /// directions land in the same band).
  bool offer(std::uint64_t flow_hash) noexcept;

  /// Drive side: reset the in-window arrival count (window boundary).
  void reset_window() noexcept { window_count_ = 0; }

  std::uint64_t offered() const noexcept {
    return offered_.load(std::memory_order_relaxed);
  }
  std::uint64_t shed() const noexcept {
    return shed_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> budget_{kUnlimitedBudget};
  /// Surviving hash band for per-flow-fair, out of 1024 (1024 = admit all).
  std::atomic<std::uint32_t> band_{1024};
  std::atomic<bool> flow_fair_{false};
  /// Arbiter -> drive: bump to restart the drive-side window count (live
  /// mode, where the arbiter owns the window clock).
  std::atomic<std::uint64_t> window_epoch_{0};
  // Drive-thread local.
  std::uint64_t window_count_ = 0;
  std::uint64_t seen_epoch_ = 0;
  // Single-writer cumulative counters, readable from the arbiter.
  std::atomic<std::uint64_t> offered_{0};
  std::atomic<std::uint64_t> shed_{0};
};

/// One tenant's outcome of an in-process run().
struct TenantResult {
  std::string id;
  std::uint64_t offered = 0;    // host-gate arrivals
  std::uint64_t gate_shed = 0;  // shed at the host gate
  std::uint64_t forwarded = 0;  // entered the tenant's executor
  /// Executor-side stats (RunStats.packets == executor-admitted).
  runtime::RunStats stats;
  /// Post-chain packets in tenant input order, dropped ones included —
  /// what the differential-equivalence harness compares against solo runs.
  std::vector<net::Packet> outputs;
  std::size_t realloc_events = 0;  // reshard operations touching this tenant
  std::size_t final_shards = 0;    // 0 for runner tenants
  int max_escalation = 0;          // highest ladder position reached
  double worst_window_p99_us = 0.0;
  double last_window_p99_us = 0.0;

  /// Delivered packets counted from the actual outputs, never a counter.
  std::uint64_t delivered() const noexcept;
};

struct HostRunResult {
  std::vector<TenantResult> tenants;  // spec order
  double wall_seconds = 0.0;
  std::uint64_t enforcement_ticks = 0;
};

/// Live-mode knobs (serve()).
struct ServeOptions {
  std::string bind_address = "127.0.0.1";
  io::IngestProto proto = io::IngestProto::kUdp;
  int idle_timeout_ms = 1000;
  std::size_t rx_budget = 64;
  std::size_t batch_size = 32;
  bool use_recvmmsg = false;
  /// Enforcement-loop poll period.
  int enforce_interval_ms = 20;
};

/// One tenant's outcome of a live serve().
struct TenantServeResult {
  std::string id;
  std::uint16_t udp_port = 0;
  std::uint16_t tcp_port = 0;
  io::IngestStats ingest;
  std::uint64_t gate_offered = 0;
  std::uint64_t gate_shed = 0;
  std::uint64_t forwarded = 0;
  runtime::RunStats stats;
  std::size_t realloc_events = 0;
  std::size_t final_shards = 0;
  int max_escalation = 0;
};

class TenantHost {
 public:
  /// Validates the spec and builds every tenant's executor via
  /// plan::build(). When `registry` is null the host owns a private one
  /// (the enforcement loop needs telemetry for its latency signals).
  /// Telemetry for tenant executors registers under the tenant's id, with
  /// the tenant label stamped via telemetry::TenantScope.
  explicit TenantHost(HostSpec spec,
                      telemetry::Registry* registry = nullptr);
  ~TenantHost();

  TenantHost(const TenantHost&) = delete;
  TenantHost& operator=(const TenantHost&) = delete;

  /// In-process drive (one-shot): materialize every tenant's workload,
  /// interleave proportionally, enforce every
  /// enforcement.window_packets host arrivals.
  HostRunResult run();

  /// Live drive (one-shot): bind one listener per tenant (listen_port, 0 =
  /// ephemeral), serve until every tenant hits the idle timeout. Call
  /// bind_listeners() first if the ports must be known before traffic.
  std::vector<TenantServeResult> serve(const ServeOptions& options);

  /// Bind the listeners eagerly (idempotent; serve() does it lazily).
  /// Returns one (udp_port, tcp_port) pair per tenant, spec order.
  std::vector<std::pair<std::uint16_t, std::uint16_t>> bind_listeners(
      const ServeOptions& options);

  const HostSpec& spec() const noexcept { return spec_; }
  telemetry::Registry& registry() noexcept { return *registry_; }

 private:
  struct Tenant;

  /// Per-tenant windowed latency p99 from telemetry bucket deltas
  /// (tenant-labelled shards only) — the per-tenant analogue of
  /// control::Controller::compute_signals.
  double window_p99_us(Tenant& tenant,
                       const telemetry::MetricsSnapshot& snapshot);
  /// One enforcement decision: signals -> policy -> gates + reallocation.
  /// `apply_resharding` false defers shard deltas to the tenants' own
  /// dispatcher threads (live mode).
  void enforcement_tick(bool apply_resharding);
  /// Apply one shard delta to a tenant (caller must be that runtime's
  /// dispatcher thread, at a packet boundary).
  void apply_shard_delta(Tenant& tenant, int delta);

  HostSpec spec_;
  std::unique_ptr<telemetry::Registry> owned_registry_;
  telemetry::Registry* registry_ = nullptr;
  std::vector<std::unique_ptr<Tenant>> tenants_;
  SloEnforcementPolicy policy_;
  std::uint64_t ticks_ = 0;
  bool listeners_bound_ = false;
};

}  // namespace speedybox::tenancy
