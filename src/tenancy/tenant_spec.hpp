// Multi-tenant hosting specs (DESIGN.md §14): several independent chains
// (tenants) described as one serializable document, hosted concurrently on
// a shared shard pool with per-tenant latency SLOs.
//
// A TenantSpec extends the PR 8 deployment-plan data model with the policy
// identity the arbiter needs: tenant id, SLO target, contention weight, the
// tenant's traffic (a trace::WorkloadSpec for in-process drive), and the
// listener port that classifies wire traffic to it in --listen mode. A
// HostSpec groups the tenants, fixes the shared shard budget, and carries
// the enforcement-loop knobs. Both round-trip through strict JSON (unknown
// fields are errors), the same contract DeploymentPlan set.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/overload.hpp"
#include "runtime/plan.hpp"
#include "telemetry/json.hpp"
#include "trace/workload_spec.hpp"

namespace speedybox::tenancy {

/// Malformed tenant/host spec; messages name the offending field.
using SpecError = plan::PlanError;

struct TenantSpec {
  /// Unique within the host; becomes the telemetry tenant label.
  std::string id;
  /// The tenant's chain + executor shape. Only the streaming-capable
  /// shapes host (runner, sharded) — validate() rejects the one-shot
  /// pipeline/onvm executors loudly.
  plan::DeploymentPlan plan;
  /// Windowed p99 per-packet latency objective, microseconds.
  double slo_us = 50.0;
  /// Contention weight: under pressure the arbiter picks the offender by
  /// offered-load-per-weight, so a heavier tenant may legitimately offer
  /// proportionally more before being tightened.
  double weight = 1.0;
  /// Live mode: UDP/TCP listener port classifying wire traffic to this
  /// tenant (0 = ephemeral, reported at bind time).
  std::uint16_t listen_port = 0;
  /// In-process drive (chainsim --tenancy without --listen).
  trace::WorkloadSpec workload;

  telemetry::Json to_json() const;
  static TenantSpec from_json(const telemetry::Json& json);

  /// Non-empty id, valid plan restricted to runner/sharded, positive
  /// SLO/weight. Throws SpecError.
  void validate() const;

  bool operator==(const TenantSpec& other) const {
    return to_json().dump() == other.to_json().dump();
  }
};

/// SLO enforcement-loop knobs (the pure policy in slo_policy.hpp).
struct EnforcementConfig {
  /// Arbiter cadence: one tick per this many host-wide arrivals
  /// (in-process) or one per poll interval (live).
  std::uint64_t window_packets = 1024;
  /// Windows a tenant must breach its SLO before the arbiter acts.
  int breach_streak = 2;
  /// Calm windows (p99 under calm_fraction * SLO) before de-escalation.
  int calm_streak = 4;
  double calm_fraction = 0.5;
  /// Post-action settle windows during which no further action fires.
  int cooldown_windows = 2;
  /// Admission tightening: the offender's per-window budget multiplies by
  /// this on escalation (and divides on de-escalation), floored at
  /// min_budget packets per window.
  double tighten_factor = 0.5;
  std::uint64_t min_budget = 64;
  /// Escalation stages that can be disabled wholesale: admission
  /// tightening + drop-policy escalation, and shard reallocation.
  bool tighten_admission = true;
  bool reallocate_shards = true;

  telemetry::Json to_json() const;
  static EnforcementConfig from_json(const telemetry::Json& json);
  void validate() const;
};

struct HostSpec {
  std::string name = "host";
  std::vector<TenantSpec> tenants;
  /// Shared shard budget across every sharded tenant; 0 = the sum of the
  /// tenants' planned shard counts (no headroom).
  std::size_t pool_shards = 0;
  EnforcementConfig enforcement;

  telemetry::Json to_json() const;
  static HostSpec from_json(const telemetry::Json& json);
  /// from_json over parsed text. Throws SpecError on syntax errors too.
  static HostSpec parse(std::string_view text);
  std::string dump() const { return to_json().dump(); }

  /// Every tenant valid; ids unique; non-zero listener ports unique; the
  /// planned shard counts fit the pool. Throws SpecError.
  void validate() const;

  /// The effective pool budget (pool_shards, or the planned sum when 0).
  std::size_t effective_pool_shards() const noexcept;
};

}  // namespace speedybox::tenancy
