#include "tenancy/tenant_host.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "control/flow_migration.hpp"
#include "util/cycle_clock.hpp"
#include "util/histogram.hpp"

namespace speedybox::tenancy {

namespace {

std::uint64_t flow_hash_of(const net::Packet& packet) noexcept {
  const auto parsed = net::parse_packet(packet);
  if (!parsed) return 0;
  return net::extract_five_tuple(packet, *parsed).symmetric_hash();
}

}  // namespace

// -- TenantGate --------------------------------------------------------------

void TenantGate::configure(std::uint64_t budget, runtime::DropPolicy policy,
                           std::uint64_t last_offered) noexcept {
  budget_.store(budget, std::memory_order_relaxed);
  const bool fair = policy == runtime::DropPolicy::kPerFlowFair &&
                    budget != kUnlimitedBudget;
  if (fair) {
    // Surviving band sized to last window's observed arrivals: admit the
    // fraction of the flow-hash space the budget can carry.
    const std::uint64_t denom = std::max(last_offered, budget);
    const std::uint64_t band = std::max<std::uint64_t>(
        1, std::min<std::uint64_t>(1024, budget * 1024 / denom));
    band_.store(static_cast<std::uint32_t>(band),
                std::memory_order_relaxed);
  } else {
    band_.store(1024, std::memory_order_relaxed);
  }
  flow_fair_.store(fair, std::memory_order_relaxed);
  window_epoch_.fetch_add(1, std::memory_order_relaxed);
}

bool TenantGate::offer(std::uint64_t flow_hash) noexcept {
  const std::uint64_t epoch = window_epoch_.load(std::memory_order_relaxed);
  if (epoch != seen_epoch_) {
    seen_epoch_ = epoch;
    window_count_ = 0;
  }
  offered_.store(offered_.load(std::memory_order_relaxed) + 1,
                 std::memory_order_relaxed);
  const std::uint64_t budget = budget_.load(std::memory_order_relaxed);
  bool admit = true;
  if (budget != kUnlimitedBudget) {
    if (flow_fair_.load(std::memory_order_relaxed)) {
      admit = (flow_hash % 1024) <
              band_.load(std::memory_order_relaxed);
    } else {
      admit = window_count_ < budget;
    }
  }
  ++window_count_;
  if (!admit) {
    shed_.store(shed_.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
  }
  return admit;
}

std::uint64_t TenantResult::delivered() const noexcept {
  std::uint64_t count = 0;
  for (const net::Packet& packet : outputs) {
    if (!packet.dropped()) ++count;
  }
  return count;
}

// -- TenantHost --------------------------------------------------------------

struct TenantHost::Tenant {
  const TenantSpec* spec = nullptr;
  plan::BuiltDeployment built;
  runtime::ShardedRuntime* sharded = nullptr;  // null for runner tenants
  runtime::ChainRunner* runner = nullptr;      // null for sharded tenants
  TenantGate gate;

  // Windowed-signal baselines (cumulative counters/buckets at last tick).
  std::vector<std::uint64_t> prev_latency_buckets;
  double prev_latency_sum = 0.0;
  std::uint64_t offered_base = 0;
  std::uint64_t forwarded_base = 0;

  /// Arbiter-readable mirror of the sharded runtime's active shard count
  /// (the runtime's own field is dispatcher-thread-only).
  std::atomic<std::size_t> shards_view{0};
  /// Live mode: arbiter -> ingest-thread shard delta, applied by the
  /// tenant's own dispatcher at a packet boundary.
  std::atomic<int> pending_delta{0};

  std::size_t realloc_events = 0;
  int max_escalation = 0;
  double worst_p99_us = 0.0;
  double last_p99_us = 0.0;
  std::vector<net::Packet> outputs;  // runner-tenant in-process capture

  // Live mode.
  std::unique_ptr<io::IngestServer> server;
  std::unique_ptr<io::IngestExecutor> ingest;
  io::IngestStats serve_stats;
};

TenantHost::TenantHost(HostSpec spec, telemetry::Registry* registry)
    : spec_(std::move(spec)),
      policy_((spec_.validate(), spec_.enforcement), spec_.tenants.size()) {
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<telemetry::Registry>();
    registry = owned_registry_.get();
  }
  registry_ = registry;
  for (const TenantSpec& tenant_spec : spec_.tenants) {
    auto tenant = std::make_unique<Tenant>();
    tenant->spec = &tenant_spec;
    {
      // Every metric shard the executor registers — now or on a later
      // scale-up — carries the tenant as a first-class label.
      const telemetry::TenantScope scope(*registry_, tenant_spec.id);
      tenant->built = plan::build(tenant_spec.plan);
      tenant->built.executor->attach_telemetry(registry_, tenant_spec.id);
    }
    tenant->sharded = dynamic_cast<runtime::ShardedRuntime*>(
        tenant->built.executor.get());
    tenant->runner =
        dynamic_cast<runtime::ChainRunner*>(tenant->built.executor.get());
    if (tenant->sharded != nullptr) {
      tenant->shards_view.store(tenant->sharded->active_shard_count(),
                                std::memory_order_relaxed);
      if (spec_.enforcement.reallocate_shards) {
        // Fail before the first packet, never mid-migration.
        control::require_migratable(tenant->sharded->shard_chain(0));
      }
    }
    tenants_.push_back(std::move(tenant));
  }
}

TenantHost::~TenantHost() = default;

double TenantHost::window_p99_us(
    Tenant& tenant, const telemetry::MetricsSnapshot& snapshot) {
  // Per-packet latency = fast-path and slow-path cycle histograms of the
  // tenant's shards, merged; the window's distribution is the bucket-wise
  // delta against the previous tick (control::Controller::compute_signals,
  // restricted to one tenant label).
  std::vector<std::uint64_t> buckets(
      static_cast<std::size_t>(util::LogHistogram::raw_bucket_count()), 0);
  double sum = 0.0;
  for (const telemetry::ShardSnapshot& shard : snapshot.shards) {
    if (shard.tenant != tenant.spec->id) continue;
    for (const auto& [name, hist] : shard.histograms) {
      if (name != "fastpath_cycles" && name != "slowpath_cycles") continue;
      const auto& counts = hist.raw_bucket_counts();
      for (std::size_t i = 0; i < counts.size() && i < buckets.size(); ++i) {
        buckets[i] += counts[i];
      }
      sum += hist.sum();
    }
  }
  std::vector<std::uint64_t> window = buckets;
  double window_sum = sum;
  if (!tenant.prev_latency_buckets.empty()) {
    for (std::size_t i = 0; i < window.size(); ++i) {
      window[i] -= tenant.prev_latency_buckets[i];
    }
    window_sum -= tenant.prev_latency_sum;
  }
  tenant.prev_latency_buckets = std::move(buckets);
  tenant.prev_latency_sum = sum;
  const util::LogHistogram window_hist = util::LogHistogram::from_raw(
      window.data(), static_cast<int>(window.size()), window_sum);
  if (window_hist.count() == 0) return 0.0;
  return util::CycleClock::to_us(
      static_cast<std::uint64_t>(window_hist.percentile(99.0)));
}

void TenantHost::apply_shard_delta(Tenant& tenant, int delta) {
  if (tenant.sharded == nullptr || delta == 0) return;
  const std::size_t active = tenant.sharded->active_shard_count();
  std::size_t target = active;
  if (delta > 0) {
    target = active + static_cast<std::size_t>(delta);
  } else if (active > static_cast<std::size_t>(-delta)) {
    target = active - static_cast<std::size_t>(-delta);
  } else {
    target = 1;
  }
  if (target == active) return;
  // New worker shards registered by the scale-up inherit the tenant label.
  const telemetry::TenantScope scope(*registry_, tenant.spec->id);
  control::reshard(*tenant.sharded, target);
  tenant.shards_view.store(tenant.sharded->active_shard_count(),
                           std::memory_order_relaxed);
  ++tenant.realloc_events;
}

void TenantHost::enforcement_tick(bool apply_resharding) {
  ++ticks_;
  if (apply_resharding) {
    // In-process drive: this thread is every tenant's dispatcher, so the
    // shard rings can be drained before sampling — otherwise the window
    // histograms race with the workers and a lagging shard reads as an
    // idle (never-breaching) window. Live mode ticks on the arbiter
    // thread, which must not touch the rings; its windows stay
    // best-effort.
    for (const std::unique_ptr<Tenant>& tenant : tenants_) {
      if (tenant->sharded != nullptr) tenant->sharded->quiesce();
    }
  }
  const telemetry::MetricsSnapshot snapshot = registry_->snapshot();
  std::vector<TenantInput> inputs(tenants_.size());
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    Tenant& tenant = *tenants_[i];
    TenantInput& input = inputs[i];
    input.slo_us = tenant.spec->slo_us;
    input.weight = tenant.spec->weight;
    input.sharded = tenant.sharded != nullptr;
    input.active_shards =
        tenant.shards_view.load(std::memory_order_relaxed);
    const std::uint64_t offered = tenant.gate.offered();
    const std::uint64_t forwarded = offered - tenant.gate.shed();
    input.signals.window_offered = offered - tenant.offered_base;
    input.signals.window_forwarded = forwarded - tenant.forwarded_base;
    tenant.offered_base = offered;
    tenant.forwarded_base = forwarded;
    input.signals.p99_latency_us = window_p99_us(tenant, snapshot);
    if (input.signals.window_offered > 0) {
      tenant.last_p99_us = input.signals.p99_latency_us;
      tenant.worst_p99_us =
          std::max(tenant.worst_p99_us, input.signals.p99_latency_us);
    }
  }
  const std::vector<TenantDecision> decisions =
      policy_.tick(inputs, spec_.effective_pool_shards());
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    Tenant& tenant = *tenants_[i];
    tenant.gate.configure(decisions[i].admission_budget,
                          decisions[i].gate_policy,
                          inputs[i].signals.window_offered);
    tenant.max_escalation =
        std::max(tenant.max_escalation, decisions[i].escalation);
  }
  // Givers release before takers claim, so the pool budget holds at every
  // intermediate step.
  for (const int phase : {-1, +1}) {
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
      const int delta = decisions[i].shard_delta;
      if (delta == 0 || (delta < 0) != (phase < 0)) continue;
      if (apply_resharding) {
        apply_shard_delta(*tenants_[i], delta);
      } else {
        tenants_[i]->pending_delta.fetch_add(delta,
                                             std::memory_order_relaxed);
      }
    }
  }
}

HostRunResult TenantHost::run() {
  const std::size_t count = tenants_.size();
  std::vector<std::vector<net::Packet>> packets(count);
  std::vector<std::size_t> sent(count, 0);
  for (std::size_t i = 0; i < count; ++i) {
    const trace::Workload workload = tenants_[i]->spec->workload.build();
    packets[i].reserve(workload.packet_count());
    for (std::size_t p = 0; p < workload.packet_count(); ++p) {
      packets[i].push_back(workload.materialize(p));
    }
  }

  const auto start = std::chrono::steady_clock::now();
  std::uint64_t arrivals = 0;
  for (;;) {
    // Proportional interleave: the tenant with the lowest sent/total ratio
    // goes next (exact cross-multiplied comparison; ties -> lowest index),
    // so every tenant's traffic spreads evenly across the host's run
    // regardless of trace lengths.
    std::size_t next = count;
    for (std::size_t i = 0; i < count; ++i) {
      if (sent[i] >= packets[i].size()) continue;
      if (next == count) {
        next = i;
        continue;
      }
      const std::uint64_t lhs = static_cast<std::uint64_t>(sent[i] + 1) *
                                packets[next].size();
      const std::uint64_t rhs =
          static_cast<std::uint64_t>(sent[next] + 1) * packets[i].size();
      if (lhs < rhs) next = i;
    }
    if (next == count) break;  // every tenant drained

    Tenant& tenant = *tenants_[next];
    net::Packet packet = std::move(packets[next][sent[next]]);
    ++sent[next];
    if (tenant.gate.offer(flow_hash_of(packet))) {
      packet.set_arrival_cycle(util::CycleClock::now());
      if (tenant.sharded != nullptr) {
        tenant.sharded->push(std::move(packet));
      } else {
        tenant.runner->process_packet(packet);
        tenant.outputs.push_back(std::move(packet));
      }
    }
    if (++arrivals % spec_.enforcement.window_packets == 0) {
      enforcement_tick(/*apply_resharding=*/true);
    }
  }

  HostRunResult result;
  result.tenants.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    Tenant& tenant = *tenants_[i];
    TenantResult& out = result.tenants[i];
    out.id = tenant.spec->id;
    if (tenant.sharded != nullptr) {
      runtime::ShardedRunResult finished = tenant.sharded->finish();
      out.stats = std::move(finished.stats);
      out.outputs = std::move(finished.packets);
      out.final_shards = tenant.sharded->active_shard_count();
    } else {
      out.stats = tenant.runner->stats();
      out.outputs = std::move(tenant.outputs);
    }
    out.offered = tenant.gate.offered();
    out.gate_shed = tenant.gate.shed();
    out.forwarded = out.offered - out.gate_shed;
    out.realloc_events = tenant.realloc_events;
    out.max_escalation = tenant.max_escalation;
    out.worst_window_p99_us = tenant.worst_p99_us;
    out.last_window_p99_us = tenant.last_p99_us;
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.enforcement_ticks = ticks_;
  return result;
}

std::vector<std::pair<std::uint16_t, std::uint16_t>>
TenantHost::bind_listeners(const ServeOptions& options) {
  if (!listeners_bound_) {
    for (auto& tenant : tenants_) {
      io::IngestConfig config;
      config.bind_address = options.bind_address;
      config.port = tenant->spec->listen_port;
      config.proto = options.proto;
      config.rx_budget = options.rx_budget;
      config.idle_timeout_ms = options.idle_timeout_ms;
      config.batch_size = options.batch_size;
      config.use_recvmmsg = options.use_recvmmsg;
      tenant->server = std::make_unique<io::IngestServer>(config);
      const telemetry::TenantScope scope(*registry_, tenant->spec->id);
      tenant->server->attach_telemetry(registry_,
                                       tenant->spec->id + "/ingest");
    }
    listeners_bound_ = true;
  }
  std::vector<std::pair<std::uint16_t, std::uint16_t>> ports;
  ports.reserve(tenants_.size());
  for (const auto& tenant : tenants_) {
    ports.push_back(
        {tenant->server->udp_port(), tenant->server->tcp_port()});
  }
  return ports;
}

std::vector<TenantServeResult> TenantHost::serve(
    const ServeOptions& options) {
  bind_listeners(options);
  std::atomic<std::size_t> active{tenants_.size()};
  std::vector<std::thread> ingest_threads;
  ingest_threads.reserve(tenants_.size());
  for (auto& tenant_ptr : tenants_) {
    Tenant& tenant = *tenant_ptr;
    tenant.ingest =
        std::make_unique<io::IngestExecutor>(*tenant.built.executor);
    tenant.ingest->set_gate([this, &tenant](const net::Packet& packet) {
      // The ingest thread is this runtime's dispatcher, and the gate runs
      // at a packet boundary — the only place a live reshard may land.
      const int pending =
          tenant.pending_delta.exchange(0, std::memory_order_acq_rel);
      if (pending != 0) apply_shard_delta(tenant, pending);
      return tenant.gate.offer(flow_hash_of(packet));
    });
    ingest_threads.emplace_back([&tenant, &active] {
      tenant.serve_stats = tenant.server->serve(*tenant.ingest);
      active.fetch_sub(1, std::memory_order_release);
    });
  }
  // Enforcement loop: poll telemetry until every listener idles out.
  while (active.load(std::memory_order_acquire) > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options.enforce_interval_ms));
    enforcement_tick(/*apply_resharding=*/false);
  }
  for (std::thread& thread : ingest_threads) thread.join();

  std::vector<TenantServeResult> results(tenants_.size());
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    Tenant& tenant = *tenants_[i];
    TenantServeResult& out = results[i];
    out.id = tenant.spec->id;
    out.udp_port = tenant.server->udp_port();
    out.tcp_port = tenant.server->tcp_port();
    out.ingest = tenant.serve_stats;
    out.stats = tenant.ingest->finish();
    out.gate_offered = tenant.gate.offered();
    out.gate_shed = tenant.gate.shed();
    out.forwarded = tenant.ingest->submitted();
    out.realloc_events = tenant.realloc_events;
    out.final_shards = tenant.sharded != nullptr
                           ? tenant.sharded->active_shard_count()
                           : 0;
    out.max_escalation = tenant.max_escalation;
  }
  return results;
}

}  // namespace speedybox::tenancy
