#include "tenancy/tenant_spec.hpp"

namespace speedybox::tenancy {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw SpecError("tenant spec: " + message);
}

double positive_number(const telemetry::Json& value, const char* key) {
  if (!value.is_number() || value.as_number() <= 0.0) {
    fail(std::string("field '") + key + "' must be a number > 0");
  }
  return value.as_number();
}

std::uint64_t integer_field(const telemetry::Json& value, const char* key,
                            std::uint64_t lo, std::uint64_t hi) {
  if (!value.is_integer() || value.as_integer() < lo ||
      value.as_integer() > hi) {
    fail(std::string("field '") + key + "' must be an integer in [" +
         std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
  return value.as_integer();
}

}  // namespace

telemetry::Json TenantSpec::to_json() const {
  using telemetry::Json;
  Json json = Json::object();
  json.set("id", Json::string(id));
  json.set("plan", plan.to_json());
  json.set("slo_us", Json::number(slo_us));
  json.set("weight", Json::number(weight));
  if (listen_port != 0) json.set("listen_port", Json::integer(listen_port));
  json.set("workload", workload.to_json());
  return json;
}

TenantSpec TenantSpec::from_json(const telemetry::Json& json) {
  if (!json.is_object()) fail("each tenant must be an object");
  TenantSpec spec;
  bool saw_id = false;
  bool saw_plan = false;
  for (const auto& [key, value] : json.members()) {
    if (key == "id") {
      if (!value.is_string() || value.as_string().empty()) {
        fail("field 'id' must be a non-empty string");
      }
      spec.id = value.as_string();
      saw_id = true;
    } else if (key == "plan") {
      spec.plan = plan::DeploymentPlan::from_json(value);
      saw_plan = true;
    } else if (key == "slo_us") {
      spec.slo_us = positive_number(value, "slo_us");
    } else if (key == "weight") {
      spec.weight = positive_number(value, "weight");
    } else if (key == "listen_port") {
      spec.listen_port = static_cast<std::uint16_t>(
          integer_field(value, "listen_port", 1, 65535));
    } else if (key == "workload") {
      spec.workload = trace::WorkloadSpec::from_json(value);
    } else {
      fail("unknown field '" + key + "'");
    }
  }
  if (!saw_id) fail("missing field 'id'");
  if (!saw_plan) fail("missing field 'plan' for tenant '" + spec.id + "'");
  return spec;
}

void TenantSpec::validate() const {
  if (id.empty()) fail("tenant id must be non-empty");
  plan.validate();
  if (plan.executor != plan::ExecutorKind::kRunner &&
      plan.executor != plan::ExecutorKind::kSharded) {
    fail("tenant '" + id + "': executor '" +
         plan::executor_kind_name(plan.executor) +
         "' cannot host a tenant (the one-shot pipeline/onvm shapes do not "
         "stream; use runner or sharded)");
  }
  if (slo_us <= 0.0) fail("tenant '" + id + "': slo_us must be > 0");
  if (weight <= 0.0) fail("tenant '" + id + "': weight must be > 0");
  workload.validate();
}

telemetry::Json EnforcementConfig::to_json() const {
  using telemetry::Json;
  Json json = Json::object();
  json.set("window_packets", Json::integer(window_packets));
  json.set("breach_streak",
           Json::integer(static_cast<std::uint64_t>(breach_streak)));
  json.set("calm_streak",
           Json::integer(static_cast<std::uint64_t>(calm_streak)));
  json.set("calm_fraction", Json::number(calm_fraction));
  json.set("cooldown_windows",
           Json::integer(static_cast<std::uint64_t>(cooldown_windows)));
  json.set("tighten_factor", Json::number(tighten_factor));
  json.set("min_budget", Json::integer(min_budget));
  json.set("tighten_admission", Json::boolean(tighten_admission));
  json.set("reallocate_shards", Json::boolean(reallocate_shards));
  return json;
}

EnforcementConfig EnforcementConfig::from_json(const telemetry::Json& json) {
  if (!json.is_object()) fail("field 'enforcement' must be an object");
  EnforcementConfig config;
  for (const auto& [key, value] : json.members()) {
    if (key == "window_packets") {
      config.window_packets =
          integer_field(value, "enforcement.window_packets", 1, UINT64_MAX);
    } else if (key == "breach_streak") {
      config.breach_streak = static_cast<int>(
          integer_field(value, "enforcement.breach_streak", 1, 1000));
    } else if (key == "calm_streak") {
      config.calm_streak = static_cast<int>(
          integer_field(value, "enforcement.calm_streak", 1, 1000));
    } else if (key == "calm_fraction") {
      config.calm_fraction = positive_number(value,
                                             "enforcement.calm_fraction");
    } else if (key == "cooldown_windows") {
      config.cooldown_windows = static_cast<int>(
          integer_field(value, "enforcement.cooldown_windows", 0, 1000));
    } else if (key == "tighten_factor") {
      config.tighten_factor = positive_number(value,
                                              "enforcement.tighten_factor");
    } else if (key == "min_budget") {
      config.min_budget =
          integer_field(value, "enforcement.min_budget", 1, UINT64_MAX);
    } else if (key == "tighten_admission") {
      if (!value.is_bool()) {
        fail("field 'enforcement.tighten_admission' must be a boolean");
      }
      config.tighten_admission = value.as_bool();
    } else if (key == "reallocate_shards") {
      if (!value.is_bool()) {
        fail("field 'enforcement.reallocate_shards' must be a boolean");
      }
      config.reallocate_shards = value.as_bool();
    } else {
      fail("unknown field 'enforcement." + key + "'");
    }
  }
  config.validate();
  return config;
}

void EnforcementConfig::validate() const {
  if (window_packets == 0) fail("enforcement.window_packets must be > 0");
  if (breach_streak < 1) fail("enforcement.breach_streak must be >= 1");
  if (calm_streak < 1) fail("enforcement.calm_streak must be >= 1");
  if (calm_fraction <= 0.0 || calm_fraction > 1.0) {
    fail("enforcement.calm_fraction must be within (0, 1]");
  }
  if (cooldown_windows < 0) fail("enforcement.cooldown_windows must be >= 0");
  if (tighten_factor <= 0.0 || tighten_factor >= 1.0) {
    fail("enforcement.tighten_factor must be within (0, 1)");
  }
  if (min_budget == 0) fail("enforcement.min_budget must be > 0");
}

telemetry::Json HostSpec::to_json() const {
  using telemetry::Json;
  Json json = Json::object();
  json.set("version", Json::integer(1));
  json.set("name", Json::string(name));
  Json list = Json::array();
  for (const TenantSpec& tenant : tenants) list.push(tenant.to_json());
  json.set("tenants", std::move(list));
  if (pool_shards > 0) json.set("pool_shards", Json::integer(pool_shards));
  json.set("enforcement", enforcement.to_json());
  return json;
}

HostSpec HostSpec::from_json(const telemetry::Json& json) {
  if (!json.is_object()) fail("document must be a JSON object");
  HostSpec spec;
  bool saw_tenants = false;
  for (const auto& [key, value] : json.members()) {
    if (key == "version") {
      if (integer_field(value, "version", 1, UINT64_MAX) != 1) {
        fail("unsupported host spec version " +
             std::to_string(value.as_integer()));
      }
    } else if (key == "name") {
      if (!value.is_string()) fail("field 'name' must be a string");
      spec.name = value.as_string();
    } else if (key == "tenants") {
      if (!value.is_array() || value.elements().empty()) {
        fail("field 'tenants' must be a non-empty array");
      }
      for (const telemetry::Json& entry : value.elements()) {
        spec.tenants.push_back(TenantSpec::from_json(entry));
      }
      saw_tenants = true;
    } else if (key == "pool_shards") {
      spec.pool_shards = static_cast<std::size_t>(
          integer_field(value, "pool_shards", 1, 4096));
    } else if (key == "enforcement") {
      spec.enforcement = EnforcementConfig::from_json(value);
    } else {
      fail("unknown field '" + key + "'");
    }
  }
  if (!saw_tenants) fail("missing field 'tenants'");
  return spec;
}

HostSpec HostSpec::parse(std::string_view text) {
  const auto json = telemetry::Json::parse(text);
  if (!json) fail("not valid JSON");
  return from_json(*json);
}

std::size_t HostSpec::effective_pool_shards() const noexcept {
  if (pool_shards > 0) return pool_shards;
  std::size_t sum = 0;
  for (const TenantSpec& tenant : tenants) sum += tenant.plan.shards;
  return sum;
}

void HostSpec::validate() const {
  if (tenants.empty()) fail("host '" + name + "' has no tenants");
  enforcement.validate();
  std::size_t planned = 0;
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    tenants[i].validate();
    planned += tenants[i].plan.shards;
    for (std::size_t j = i + 1; j < tenants.size(); ++j) {
      if (tenants[i].id == tenants[j].id) {
        fail("duplicate tenant id '" + tenants[i].id + "'");
      }
      if (tenants[i].listen_port != 0 &&
          tenants[i].listen_port == tenants[j].listen_port) {
        fail("tenants '" + tenants[i].id + "' and '" + tenants[j].id +
             "' share listen_port " +
             std::to_string(tenants[i].listen_port));
      }
    }
  }
  if (pool_shards > 0 && planned > pool_shards) {
    fail("tenants plan " + std::to_string(planned) +
         " shards but pool_shards is " + std::to_string(pool_shards));
  }
}

}  // namespace speedybox::tenancy
