// The SLO arbitration policy (DESIGN.md §14): pure, deterministic state
// machine deciding, once per enforcement window, how the host reacts to a
// tenant breaching its latency SLO.
//
// Per-offender escalation ladder (one step per acted-on breach, one step
// back per sustained calm):
//
//   L0 normal      — unlimited admission, no interference
//   L1 tightened   — per-window admission budget (tail-drop gate), budget
//                    multiplied by tighten_factor per further escalation
//   L2 flow-fair   — the gate switches to flow-consistent hash-band
//                    shedding (surviving flows keep their full packet
//                    sequence — goodput, not just throughput)
//   L3 reallocated — one shard moves offender -> victim through the
//                    quiesce/migrate machinery (control::reshard)
//
// The victim is the tenant with the longest breach streak; the offender is
// the non-breaching tenant with the highest offered-load-per-weight (an
// adversarial tenant floods, so its offered/weight dominates). Free pool
// headroom is always preferred over taking the offender's shard. Like
// control::ScalingPolicy, the class is pure — it never touches a runtime —
// so the whole ladder is unit-testable from synthetic signal sequences.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/overload.hpp"
#include "tenancy/tenant_spec.hpp"

namespace speedybox::tenancy {

/// No admission limit (the L0 budget).
inline constexpr std::uint64_t kUnlimitedBudget = UINT64_MAX;

/// One enforcement window's view of one tenant, from telemetry deltas.
struct TenantSignals {
  /// Windowed p99 per-packet latency (fast + slow path merged), µs.
  double p99_latency_us = 0.0;
  /// Host-gate arrivals within the window (before any shedding).
  std::uint64_t window_offered = 0;
  /// Packets the gate forwarded into the tenant's executor.
  std::uint64_t window_forwarded = 0;
};

/// Static facts the policy needs about a tenant, paired with its signals.
struct TenantInput {
  double slo_us = 50.0;
  double weight = 1.0;
  /// Sharded tenants can give/take shards; runner tenants only gate.
  bool sharded = false;
  std::size_t active_shards = 0;
  TenantSignals signals;
};

/// What the host applies to one tenant after a tick.
struct TenantDecision {
  /// Packets per enforcement window (kUnlimitedBudget = no gate).
  std::uint64_t admission_budget = kUnlimitedBudget;
  runtime::DropPolicy gate_policy = runtime::DropPolicy::kTailDrop;
  /// Escalation ladder position, 0..3.
  int escalation = 0;
  /// Shard reallocation: +1 / -1 / 0 this tick (the host pairs the +1 and
  /// -1 into one migration event).
  int shard_delta = 0;
};

class SloEnforcementPolicy {
 public:
  explicit SloEnforcementPolicy(const EnforcementConfig& config,
                                std::size_t tenant_count);

  /// One enforcement window: update per-tenant streaks, pick victim and
  /// offender, escalate/de-escalate, and return the per-tenant decisions
  /// (index-aligned with `tenants`, whose order and size must be stable
  /// across ticks).
  std::vector<TenantDecision> tick(const std::vector<TenantInput>& tenants,
                                   std::size_t pool_shards);

  /// Current ladder position of tenant `i` (tests/diagnostics).
  int escalation(std::size_t i) const { return states_[i].escalation; }
  int breach_streak(std::size_t i) const {
    return states_[i].breach_streak;
  }

 private:
  struct TenantState {
    int breach_streak = 0;
    int calm_streak = 0;
    int escalation = 0;
    std::uint64_t budget = kUnlimitedBudget;
  };

  TenantDecision decision_of(const TenantState& state) const;

  EnforcementConfig config_;
  std::vector<TenantState> states_;
  int cooldown_ = 0;
};

}  // namespace speedybox::tenancy
