// Figure 8: SpeedyBox with service chains of different lengths.
//
// Chains of 1-9 IPFilters with ACLs tuned to avoid drops. Reports processing
// latency and rate vs chain length for the four configurations. Like the
// paper's testbed (14 cores), OpenNetVM rows stop at length 5 — one
// dedicated core per NF plus manager/generator cores is the paper's limit.
//
// Expected shape (paper): original latency grows linearly with length;
// SpeedyBox latency is nearly independent of length on both platforms;
// BESS+SBox keeps a high rate on long chains; ONVM rate stays flat with or
// without SpeedyBox (pipelined model).
#include "bench_util.hpp"

namespace speedybox::bench {
namespace {

constexpr std::size_t kOnvmMaxChainLength = 5;

void run() {
  const trace::Workload workload = trace::make_uniform_workload(
      /*flow_count=*/64, /*packets_per_flow=*/150, /*payload_size=*/10);
  BenchJson json{"fig8_chain_length"};
  json.param("flows", 64);
  json.param("packets_per_flow", 150);
  const auto record = [&json](const char* label, std::size_t length,
                              const ConfigResult& result) {
    telemetry::Json row = config_row(label, result);
    row.set("chain_length", telemetry::Json::integer(length));
    json.add(std::move(row));
  };

  print_header("Figure 8: service chains of length 1-9 (ONVM limited to 5, "
               "matching the paper's core budget)");
  std::printf("%-7s | %-42s | %-42s\n", "", "Processing latency (us)",
              "Processing rate (Mpps)");
  std::printf("%-7s | %9s %11s %9s %11s | %9s %11s %9s %11s\n", "Length",
              "BESS", "BESS+SBox", "ONVM", "ONVM+SBox", "BESS", "BESS+SBox",
              "ONVM", "ONVM+SBox");

  for (std::size_t n = 1; n <= 9; ++n) {
    const ChainFactory factory = [n] {
      auto chain = std::make_unique<runtime::ServiceChain>();
      for (std::size_t i = 0; i < n; ++i) {
        chain->emplace_nf<nf::IpFilter>(nonmatching_acl(),
                                        "ipfilter" + std::to_string(i));
      }
      return chain;
    };
    const ConfigResult bess =
        run_config(factory, platform::PlatformKind::kBess, false, workload);
    const ConfigResult bess_sbox =
        run_config(factory, platform::PlatformKind::kBess, true, workload);
    record("bess/original", n, bess);
    record("bess/speedybox", n, bess_sbox);

    if (n <= kOnvmMaxChainLength) {
      const ConfigResult onvm =
          run_config(factory, platform::PlatformKind::kOnvm, false, workload);
      const ConfigResult onvm_sbox =
          run_config(factory, platform::PlatformKind::kOnvm, true, workload);
      record("onvm/original", n, onvm);
      record("onvm/speedybox", n, onvm_sbox);
      std::printf("%-7zu | %9.3f %11.3f %9.3f %11.3f | %9.3f %11.3f %9.3f "
                  "%11.3f\n",
                  n, bess.sub_latency_us, bess_sbox.sub_latency_us,
                  onvm.sub_latency_us, onvm_sbox.sub_latency_us,
                  bess.rate_mpps, bess_sbox.rate_mpps, onvm.rate_mpps,
                  onvm_sbox.rate_mpps);
    } else {
      std::printf("%-7zu | %9.3f %11.3f %9s %11s | %9.3f %11.3f %9s %11s\n",
                  n, bess.sub_latency_us, bess_sbox.sub_latency_us, "--",
                  "--", bess.rate_mpps, bess_sbox.rate_mpps, "--", "--");
    }
  }
  json.write();
  std::printf("\n");
}

}  // namespace
}  // namespace speedybox::bench

int main() {
  speedybox::bench::run();
  return 0;
}
