// Figure 7: latency reduction of the Snort + Monitor chain, and how much
// each optimization contributes.
//
// Single-run ablation: every fast-path packet is accounted twice — once
// with state functions sequential (header-action consolidation only) and
// once with the Table-I parallel schedule (both optimizations) — so the
// split is free of cross-run noise. The HA share of the total reduction is
// (orig − sbox_sequential); the SF share is (sbox_sequential − sbox).
//
// Expected shape (paper): ~36% total latency reduction on BESS, split
// roughly 49% HA / 51% SF; on ONVM the SF share is larger (~59%) because
// inter-core hops dilute the HA gains. The HA/SF split shifts with payload
// size (state-function weight), so the bench sweeps two packet sizes.
#include "runtime/plan.hpp"
#include "trace/payload_synth.hpp"

#include "bench_util.hpp"

namespace speedybox::bench {
namespace {

void run_for_payload(BenchJson& json, std::size_t payload_size) {
  trace::Workload workload = trace::make_uniform_workload(
      /*flow_count=*/64, /*packets_per_flow=*/400, payload_size);
  trace::PayloadSynthConfig synth;
  synth.match_fraction = 0.2;
  plant_rule_contents(workload, trace::default_snort_rules(), synth);

  const ChainFactory factory = [] {
    return plan::build_chain(
        plan::ChainSpec::parse("snort,monitor:heavy", "snort_monitor"));
  };

  std::printf("\n-- payload %zu B --\n", payload_size);
  std::printf("%-10s %12s %12s %11s | %9s %9s\n", "", "Orig lat",
              "SBox lat", "reduction", "HA share", "SF share");
  for (const auto platform :
       {platform::PlatformKind::kBess, platform::PlatformKind::kOnvm}) {
    const ConfigResult original =
        run_config(factory, platform, /*speedybox=*/false, workload);
    const ConfigResult speedy =
        run_config(factory, platform, /*speedybox=*/true, workload);

    const double orig = original.sub_latency_us;
    const double both = speedy.sub_latency_us;
    const double ha_only =
        speedy.stats.latency_us_subsequent_sequential.percentile(50);
    const double total_saving = orig - both;
    const double ha_saving = orig - ha_only;
    const double sf_saving = ha_only - both;
    {
      telemetry::Json row = config_row(
          std::string(platform_name(platform)) + "/speedybox", speedy);
      row.set("payload", telemetry::Json::integer(payload_size));
      row.set("orig_latency_us", telemetry::Json::number(orig));
      row.set("ha_only_latency_us", telemetry::Json::number(ha_only));
      row.set("reduction_pct",
              telemetry::Json::number(reduction_pct(orig, both)));
      row.set("ha_share_pct",
              telemetry::Json::number(
                  total_saving > 0 ? ha_saving / total_saving * 100 : 0));
      row.set("sf_share_pct",
              telemetry::Json::number(
                  total_saving > 0 ? sf_saving / total_saving * 100 : 0));
      json.add(std::move(row));
    }
    std::printf("%-10s %9.3f us %9.3f us %10.1f%% | %8.1f%% %8.1f%%\n",
                platform_name(platform), orig, both,
                reduction_pct(orig, both),
                total_saving > 0 ? ha_saving / total_saving * 100 : 0,
                total_saving > 0 ? sf_saving / total_saving * 100 : 0);
  }
}

void run() {
  print_header(
      "Figure 7: latency reduction breakdown of Snort + Monitor (HA = header "
      "action consolidation, SF = state function parallelism)");
  BenchJson json{"fig7_breakdown"};
  json.param("flows", 64);
  json.param("packets_per_flow", 400);
  run_for_payload(json, 18);   // 64B-frame class: HA dominates
  run_for_payload(json, 192);  // larger payloads: SF parallelism dominates
  json.write();
  std::printf("\n");
}

}  // namespace
}  // namespace speedybox::bench

int main() {
  speedybox::bench::run();
  return 0;
}
