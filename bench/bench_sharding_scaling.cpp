// Sharding scaling: throughput of the flow-sharded runtime as the shard
// count grows (1, 2, 4, 8 replicas of the full consolidated pipeline).
//
// The paper's prototype pins the ONVM NF Manager — and with it the whole
// consolidated fast path — to a single core (§VI-A). RSS-style flow
// sharding lifts that cap: each shard owns a complete chain replica and
// serves the flows whose symmetric five-tuple hashes to it.
//
// Two numbers per shard count:
//   * aggregate rate — sum of the per-shard modeled steady-state rates
//     (capacity of the sharded deployment; scales with shard count as long
//     as the flow hash spreads load evenly),
//   * wall time — real elapsed dispatch-to-join time. Only speeds up with
//     physical cores to run the workers on; on a single-core host the
//     shards time-slice and wall time stays flat or degrades slightly.
//
// Also prints the per-shard packet split so hash skew is visible.
#include <thread>

#include "runtime/plan.hpp"
#include "runtime/sharded_runtime.hpp"

#include "bench_util.hpp"

namespace speedybox::bench {
namespace {

void run() {
  trace::DatacenterWorkloadConfig config;
  config.flow_count = 300;
  config.payload_size = 256;
  config.flow_size_mu = 3.0;
  config.seed = 20190710;
  const trace::Workload workload = make_datacenter_workload(config);

  const auto prototype_ptr = plan::build_chain(plan::vii_c_chain1_heavy());
  runtime::ServiceChain& prototype = *prototype_ptr;

  print_header(
      "Sharding scaling — Chain 1 replicated across N flow shards");
  std::printf("host cores: %u (wall time only improves with real cores;\n"
              "aggregate rate reflects per-shard capacity either way)\n\n",
              std::thread::hardware_concurrency());
  std::printf("%-7s %12s %12s %10s   %s\n", "shards", "agg rate", "wall",
              "backpress", "per-shard packets");
  std::printf("%-7s %12s %12s %10s\n", "", "(Mpps)", "(ms)", "(waits)");

  BenchJson json{"sharding_scaling"};
  json.param("flows", 300);
  json.param("workload", "datacenter");
  json.param("chain", "nat,maglev,monitor,ipfilter");
  double base_rate = 0.0;
  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    runtime::ShardedRuntime runtime{
        prototype, shards, {platform::PlatformKind::kOnvm, true, false}};
    const runtime::ShardedRunResult result = runtime.run_workload(workload);
    if (shards == 1) base_rate = result.aggregate_rate_mpps;

    {
      using telemetry::Json;
      Json row = Json::object();
      row.set("config", Json::string("onvm/speedybox x" +
                                     std::to_string(shards)));
      row.set("shards", Json::integer(shards));
      row.set("aggregate_rate_mpps",
              Json::number(result.aggregate_rate_mpps));
      row.set("wall_ms", Json::number(result.wall_seconds * 1e3));
      row.set("backpressure_waits",
              Json::integer(runtime.backpressure_waits()));
      row.set("speedup", Json::number(base_rate > 0
                                          ? result.aggregate_rate_mpps /
                                                base_rate
                                          : 0.0));
      Json split = Json::array();
      for (const std::uint64_t packets : result.shard_packets) {
        split.push(Json::integer(packets));
      }
      row.set("shard_packets", std::move(split));
      json.add(std::move(row));
    }

    std::printf("%-7zu %12.3f %12.1f %10llu   [", shards,
                result.aggregate_rate_mpps, result.wall_seconds * 1e3,
                static_cast<unsigned long long>(
                    runtime.backpressure_waits()));
    for (std::size_t s = 0; s < result.shard_packets.size(); ++s) {
      std::printf("%s%llu", s == 0 ? "" : " ",
                  static_cast<unsigned long long>(result.shard_packets[s]));
    }
    std::printf("]  (%.2fx)\n",
                base_rate > 0 ? result.aggregate_rate_mpps / base_rate
                              : 0.0);
  }
  json.write();
  std::printf("\n");
}

}  // namespace
}  // namespace speedybox::bench

int main() {
  speedybox::bench::run();
  return 0;
}
