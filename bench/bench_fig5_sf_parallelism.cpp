// Figure 5: effect of state function parallelism.
//
// Chain of 1-3 identical synthetic NFs; each has no header action and one
// READ-class state function "equivalent to the Snort packet inspection"
// (repeated payload hashing, ~1µs). Reports processing rate (Mpps, Fig. 5a)
// and per-packet latency (µs, Fig. 5b) for the four configurations.
//
// Expected shape (paper): BESS rate falls with #SF, BESS+SBox stays ~flat
// (2.1x at 3 SFs); ONVM rate flat (pipelined) with or without SBox;
// SpeedyBox latency ~flat vs #SF (59% lower at 3 SFs), with a small
// overhead at 1 SF; optimal reduction is (N-1)/N.
#include "nf/synthetic_nf.hpp"

#include "bench_util.hpp"

namespace speedybox::bench {
namespace {

constexpr std::uint32_t kSnortEquivalentIterations = 220;

void run() {
  const trace::Workload workload = trace::make_uniform_workload(
      /*flow_count=*/32, /*packets_per_flow=*/300, /*payload_size=*/10);
  BenchJson json{"fig5_sf_parallelism"};
  json.param("flows", 32);
  json.param("packets_per_flow", 300);
  json.param("sf_iterations", kSnortEquivalentIterations);

  print_header("Figure 5: state function parallelism (synthetic NFs, "
               "READ-class SF ~ Snort inspection)");
  std::printf("%-6s | %-42s | %-42s\n", "", "Processing rate (Mpps)",
              "Processing latency (us)");
  std::printf("%-6s | %9s %11s %9s %11s | %9s %11s %9s %11s\n", "# SF",
              "BESS", "BESS+SBox", "ONVM", "ONVM+SBox", "BESS", "BESS+SBox",
              "ONVM", "ONVM+SBox");

  for (std::size_t n = 1; n <= 3; ++n) {
    const ChainFactory factory = [n] {
      auto chain = std::make_unique<runtime::ServiceChain>();
      for (std::size_t i = 0; i < n; ++i) {
        nf::SyntheticNfConfig config;
        config.access = core::PayloadAccess::kRead;
        config.work_iterations = kSnortEquivalentIterations;
        chain->emplace_nf<nf::SyntheticNf>(config,
                                           "syn" + std::to_string(i));
      }
      return chain;
    };
    const ConfigResult bess =
        run_config(factory, platform::PlatformKind::kBess, false, workload);
    const ConfigResult bess_sbox =
        run_config(factory, platform::PlatformKind::kBess, true, workload);
    const ConfigResult onvm =
        run_config(factory, platform::PlatformKind::kOnvm, false, workload);
    const ConfigResult onvm_sbox =
        run_config(factory, platform::PlatformKind::kOnvm, true, workload);

    for (const auto& [label, result] :
         {std::pair<const char*, const ConfigResult&>{"bess/original", bess},
          {"bess/speedybox", bess_sbox},
          {"onvm/original", onvm},
          {"onvm/speedybox", onvm_sbox}}) {
      telemetry::Json row = config_row(label, result);
      row.set("state_functions", telemetry::Json::integer(n));
      json.add(std::move(row));
    }

    std::printf("%-6zu | %9.3f %11.3f %9.3f %11.3f | %9.3f %11.3f %9.3f "
                "%11.3f\n",
                n, bess.rate_mpps, bess_sbox.rate_mpps, onvm.rate_mpps,
                onvm_sbox.rate_mpps, bess.sub_latency_us,
                bess_sbox.sub_latency_us, onvm.sub_latency_us,
                onvm_sbox.sub_latency_us);
  }
  json.write();
  std::printf("\n");
}

}  // namespace
}  // namespace speedybox::bench

int main() {
  speedybox::bench::run();
  return 0;
}
