// Figure 9: CDF of flow processing time under real-world service chains on
// a datacenter-style trace (heavy-tailed flow sizes per Benson et al.;
// payloads synthesized against the Snort rules, as in the paper).
//
//   Chain 1: MazuNAT -> Maglev -> Monitor -> IPFilter
//   Chain 2: IPFilter -> Snort -> Monitor
//
// Flow processing time = aggregate time spent processing all packets of a
// flow. Prints the CDF (p10..p100) for the four configurations and the
// p50 reduction.
//
// Expected shape (paper): SpeedyBox cuts the median flow processing time by
// ~40% (Chain 1: 39.6% BESS / 40.2% ONVM; Chain 2: 41.3% / 34.2%).
#include "runtime/plan.hpp"
#include "trace/payload_synth.hpp"

#include "bench_util.hpp"

namespace speedybox::bench {
namespace {

void print_cdf_table(BenchJson& json, const std::string& chain_label,
                     const std::string& title, const ChainFactory& factory,
                     const trace::Workload& workload) {
  print_header(title);
  const ConfigResult bess =
      run_config(factory, platform::PlatformKind::kBess, false, workload);
  const ConfigResult bess_sbox =
      run_config(factory, platform::PlatformKind::kBess, true, workload);
  const ConfigResult onvm =
      run_config(factory, platform::PlatformKind::kOnvm, false, workload);
  const ConfigResult onvm_sbox =
      run_config(factory, platform::PlatformKind::kOnvm, true, workload);

  for (const auto& [label, result] :
       {std::pair<const char*, const ConfigResult&>{"bess/original", bess},
        {"bess/speedybox", bess_sbox},
        {"onvm/original", onvm},
        {"onvm/speedybox", onvm_sbox}}) {
    telemetry::Json row = config_row(label, result);
    row.set("chain", telemetry::Json::string(chain_label));
    telemetry::Json cdf = telemetry::Json::array();
    for (int p = 10; p <= 100; p += 10) {
      cdf.push(telemetry::Json::number(result.flow_time_us.percentile(p)));
    }
    row.set("flow_time_us_cdf_p10_p100", std::move(cdf));
    json.add(std::move(row));
  }

  std::printf("%-6s %12s %12s %12s %12s   (flow processing time, us)\n",
              "CDF", "BESS", "BESS+SBox", "ONVM", "ONVM+SBox");
  for (int p = 10; p <= 100; p += 10) {
    std::printf("p%-5d %12.2f %12.2f %12.2f %12.2f\n", p,
                bess.flow_time_us.percentile(p),
                bess_sbox.flow_time_us.percentile(p),
                onvm.flow_time_us.percentile(p),
                onvm_sbox.flow_time_us.percentile(p));
  }
  std::printf("p50 reduction: BESS %.1f%%, ONVM %.1f%%\n",
              reduction_pct(bess.p50_flow_time_us,
                            bess_sbox.p50_flow_time_us),
              reduction_pct(onvm.p50_flow_time_us,
                            onvm_sbox.p50_flow_time_us));
}

void run() {
  BenchJson json{"fig9_real_chains"};
  json.param("flows", 300);
  json.param("workload", "datacenter");
  trace::DatacenterWorkloadConfig config;
  config.flow_count = 300;
  config.payload_size = 256;
  // Median ~20 packets/flow with a heavy tail (the datacenter traces are
  // byte-heavy: most bytes ride flows of tens-to-thousands of packets).
  config.flow_size_mu = 3.0;
  config.seed = 20190710;
  trace::Workload workload1 = make_datacenter_workload(config);

  config.seed = 20190711;
  config.payload_size = 64;  // chain 2 is inspection-bound; small packets
  trace::Workload workload2 = make_datacenter_workload(config);
  trace::PayloadSynthConfig synth;
  synth.match_fraction = 0.2;
  plant_rule_contents(workload2, trace::default_snort_rules(), synth);

  // The canonical heavy §VII-C chain specs — the same registry-backed
  // definitions planopt and `chainsim --chain @chain1-heavy` resolve.
  const ChainFactory chain1 = [] {
    return plan::build_chain(plan::vii_c_chain1_heavy());
  };
  print_cdf_table(
      json, "chain1",
      "Figure 9(a) — Chain 1: MazuNAT + Maglev + Monitor + IPFilter",
      chain1, workload1);

  const ChainFactory chain2 = [] {
    return plan::build_chain(plan::vii_c_chain2_heavy());
  };
  print_cdf_table(json, "chain2",
                  "Figure 9(b) — Chain 2: IPFilter + Snort + Monitor",
                  chain2, workload2);
  json.write();
  std::printf("\n");
}

}  // namespace
}  // namespace speedybox::bench

int main() {
  speedybox::bench::run();
  return 0;
}
