// Figure 4: effect of header action consolidation.
//
// Chain of 1-3 IPFilters, 64B packets. Reports CPU cycles per packet for
// initial and subsequent packets, Original vs SpeedyBox, on BESS (Fig. 4a)
// and OpenNetVM (Fig. 4b).
//
// Expected shape (paper): initial >> subsequent (ACL scan); SpeedyBox-sub
// slightly above Original-sub at 1 header action (recording/classifier
// overhead), and 40.9% / 57.7% below it at 2 / 3 header actions; the
// theoretical bound is (N-1)/N.
#include "bench_util.hpp"

namespace speedybox::bench {
namespace {

void run() {
  const trace::Workload workload = trace::make_uniform_workload(
      /*flow_count=*/64, /*packets_per_flow=*/400, /*payload_size=*/10);
  BenchJson json{"fig4_header_consolidation"};
  json.param("flows", 64);
  json.param("packets_per_flow", 400);
  json.param("payload", 10);

  for (const auto platform :
       {platform::PlatformKind::kBess, platform::PlatformKind::kOnvm}) {
    print_header(std::string("Figure 4: header action consolidation — ") +
                 platform_name(platform));
    std::printf("%-16s %14s %14s %14s %14s %10s\n", "# HeaderAction",
                "Orig-init", "SBox-init", "Orig-sub", "SBox-sub",
                "sub-saving");
    for (std::size_t n = 1; n <= 3; ++n) {
      const ChainFactory factory = [n] {
        auto chain = std::make_unique<runtime::ServiceChain>();
        for (std::size_t i = 0; i < n; ++i) {
          chain->emplace_nf<nf::IpFilter>(nonmatching_acl(),
                                          "ipfilter" + std::to_string(i));
        }
        return chain;
      };
      const ConfigResult original =
          run_config(factory, platform, /*speedybox=*/false, workload);
      const ConfigResult speedy =
          run_config(factory, platform, /*speedybox=*/true, workload);
      for (const auto& [mode, result] :
           {std::pair<const char*, const ConfigResult&>{"original", original},
            {"speedybox", speedy}}) {
        telemetry::Json row = config_row(
            std::string(platform_name(platform)) + "/" + mode, result);
        row.set("header_actions", telemetry::Json::integer(n));
        json.add(std::move(row));
      }
      std::printf("%-16zu %11.0f cy %11.0f cy %11.0f cy %11.0f cy %9.1f%%\n",
                  n, original.init_cycles, speedy.init_cycles,
                  original.sub_cycles, speedy.sub_cycles,
                  reduction_pct(original.sub_cycles,
                                speedy.sub_cycles));
    }
  }
  json.write();
  std::printf("\n");
}

}  // namespace
}  // namespace speedybox::bench

int main() {
  speedybox::bench::run();
  return 0;
}
