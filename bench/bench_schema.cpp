#include "bench_schema.hpp"

#include <cmath>
#include <cstdio>
#include <map>

namespace speedybox::bench {

namespace {

using telemetry::Json;

/// Walk every number in the tree; report the path of any non-finite one.
void check_finite(const Json& value, const std::string& path,
                  std::vector<std::string>* issues) {
  if (value.is_number() && !value.is_integer() &&
      !std::isfinite(value.as_number())) {
    issues->push_back(path + ": non-finite number");
  }
  if (value.is_object()) {
    for (const auto& [key, member] : value.members()) {
      check_finite(member, path + "." + key, issues);
    }
  } else if (value.is_array()) {
    for (std::size_t i = 0; i < value.elements().size(); ++i) {
      check_finite(value.elements()[i],
                   path + "[" + std::to_string(i) + "]", issues);
    }
  }
}

/// u64 field or 0 when absent; `present` reports whether it was there.
std::uint64_t u64_field(const Json& row, const char* key, bool* present) {
  const Json* value = row.find(key);
  if (value == nullptr || !value->is_integer()) {
    if (present != nullptr) *present = false;
    return 0;
  }
  if (present != nullptr) *present = true;
  return value->as_integer();
}

void check_row(const Json& row, const std::string& path,
               std::vector<std::string>* issues) {
  if (!row.is_object()) {
    issues->push_back(path + ": row is not an object");
    return;
  }
  const Json* config = row.find("config");
  if (config == nullptr || !config->is_string() ||
      config->as_string().empty()) {
    issues->push_back(path + ": missing non-empty string \"config\"");
  }
  // Conservation identities wherever the overload counters appear
  // (offered == admitted + shed; admitted >= drops + faulted-adjacent
  // splits are covered upstream — here the arrival identity is the one
  // every emitter can state exactly).
  bool has_offered = false;
  const std::uint64_t offered = u64_field(row, "offered", &has_offered);
  if (has_offered) {
    bool has_admitted = false;
    bool has_shed = false;
    const std::uint64_t admitted = u64_field(row, "admitted", &has_admitted);
    const std::uint64_t shed = u64_field(row, "shed", &has_shed);
    if (!has_admitted || !has_shed) {
      issues->push_back(path + ": \"offered\" without \"admitted\"/\"shed\"");
    } else if (offered != admitted + shed) {
      issues->push_back(path + ": conservation violated: offered (" +
                        std::to_string(offered) + ") != admitted (" +
                        std::to_string(admitted) + ") + shed (" +
                        std::to_string(shed) + ")");
    }
  }
  bool has_packets = false;
  bool has_drops = false;
  const std::uint64_t packets = u64_field(row, "packets", &has_packets);
  const std::uint64_t drops = u64_field(row, "drops", &has_drops);
  if (has_packets && has_drops) {
    const std::uint64_t faulted = u64_field(row, "faulted", nullptr);
    if (packets < drops + faulted) {
      issues->push_back(path + ": packets (" + std::to_string(packets) +
                        ") < drops (" + std::to_string(drops) +
                        ") + faulted (" + std::to_string(faulted) + ")");
    }
  }
}

}  // namespace

std::vector<std::string> validate_bench_json(const Json& doc) {
  std::vector<std::string> issues;
  if (!doc.is_object()) {
    issues.push_back("$: document is not an object");
    return issues;
  }
  const Json* bench = doc.find("bench");
  if (bench == nullptr || !bench->is_string() || bench->as_string().empty()) {
    issues.push_back("$.bench: missing non-empty string");
  }
  const Json* version = doc.find("schema_version");
  if (version == nullptr || !version->is_integer() ||
      version->as_integer() < 1) {
    issues.push_back("$.schema_version: missing integer >= 1");
  }
  const Json* cpu = doc.find("cpu_ghz");
  if (cpu == nullptr || !cpu->is_number() ||
      !(cpu->as_number() > 0.0) || !std::isfinite(cpu->as_number())) {
    issues.push_back("$.cpu_ghz: missing finite number > 0");
  }
  const Json* environment = doc.find("environment");
  if (environment == nullptr || !environment->is_object()) {
    issues.push_back("$.environment: missing object");
  }
  const Json* params = doc.find("params");
  if (params == nullptr || !params->is_object()) {
    issues.push_back("$.params: missing object");
  }
  const Json* configs = doc.find("configs");
  if (configs == nullptr || !configs->is_array() ||
      configs->elements().empty()) {
    issues.push_back("$.configs: missing non-empty array");
  } else {
    for (std::size_t i = 0; i < configs->elements().size(); ++i) {
      check_row(configs->elements()[i],
                "$.configs[" + std::to_string(i) + "]", &issues);
    }
  }
  check_finite(doc, "$", &issues);
  return issues;
}

namespace {

double tolerance_for(const Json& row, const char* key, double fallback) {
  const Json* value = row.find(key);
  return value != nullptr && value->is_number() ? value->as_number()
                                                : fallback;
}

bool row_gated(const Json& row) {
  const Json* gated = row.find("gated");
  return gated == nullptr || !gated->is_bool() || gated->as_bool();
}

/// The (rate_key, p99_key) pair a row is gated on: prefer the
/// machine-portable relative metrics, fall back to absolutes.
const char* rate_key_for(const Json& row) {
  if (row.find("rel_rate") != nullptr) return "rel_rate";
  if (row.find("rate_mpps") != nullptr) return "rate_mpps";
  return nullptr;
}

const char* p99_key_for(const Json& row) {
  if (row.find("rel_p99") != nullptr) return "rel_p99";
  // A row that measured its own tail as too noisy to gate opts out of the
  // absolute-latency fallback as well — otherwise dropping rel_p99 would
  // silently re-gate it on an even flakier metric.
  const Json* unstable = row.find("rel_p99_unstable");
  if (unstable != nullptr && unstable->is_bool() && unstable->as_bool()) {
    return nullptr;
  }
  if (row.find("latency_us_p99") != nullptr) return "latency_us_p99";
  return nullptr;
}

double number_field(const Json& row, const char* key) {
  const Json* value = row.find(key);
  return value != nullptr && value->is_number() ? value->as_number() : 0.0;
}

}  // namespace

std::string row_identity(const Json& row) {
  std::string key;
  const auto append = [&](const char* field) {
    const Json* value = row.find(field);
    if (value == nullptr) return;
    if (!key.empty()) key += "|";
    key += field;
    key += "=";
    if (value->is_string()) {
      key += value->as_string();
    } else if (value->is_integer()) {
      key += std::to_string(value->as_integer());
    } else if (value->is_number()) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%g", value->as_number());
      key += buf;
    }
  };
  append("config");
  append("workload");
  append("chain");
  append("platform");
  append("batch_size");
  append("offered_multiplier");
  append("policy");
  return key;
}

GateReport gate_compare(const Json& baseline, const Json& candidate,
                        const GateConfig& config) {
  GateReport report;
  for (const std::string& issue : validate_bench_json(baseline)) {
    GateFinding finding;
    finding.row = "<baseline>";
    finding.metric = "schema";
    finding.ok = false;
    finding.message = issue;
    report.findings.push_back(std::move(finding));
    ++report.failures;
  }
  for (const std::string& issue : validate_bench_json(candidate)) {
    GateFinding finding;
    finding.row = "<candidate>";
    finding.metric = "schema";
    finding.ok = false;
    finding.message = issue;
    report.findings.push_back(std::move(finding));
    ++report.failures;
  }
  if (report.failures > 0) return report;

  std::map<std::string, const Json*> candidate_rows;
  for (const Json& row : candidate.find("configs")->elements()) {
    candidate_rows[row_identity(row)] = &row;
  }

  for (const Json& base_row : baseline.find("configs")->elements()) {
    if (!row_gated(base_row)) continue;
    const std::string identity = row_identity(base_row);
    const auto it = candidate_rows.find(identity);
    if (it == candidate_rows.end()) {
      ++report.rows_missing;
      if (config.require_all_rows) {
        GateFinding finding;
        finding.row = identity;
        finding.metric = "coverage";
        finding.ok = false;
        finding.message = "baseline row missing from candidate";
        report.findings.push_back(std::move(finding));
        ++report.failures;
      }
      continue;
    }
    const Json& cand_row = *it->second;
    ++report.rows_compared;

    if (const char* rate_key = rate_key_for(base_row)) {
      const double base = number_field(base_row, rate_key);
      const double cand = number_field(cand_row, rate_key);
      const double tolerance = tolerance_for(
          base_row, "tolerance_rel_rate", config.rate_loss_tolerance);
      GateFinding finding;
      finding.row = identity;
      finding.metric = rate_key;
      finding.baseline = base;
      finding.candidate = cand;
      finding.tolerance = tolerance;
      finding.ok = base <= 0.0 || cand >= base * (1.0 - tolerance);
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "%s: %s %.4g -> %.4g (limit -%.0f%%)",
                    finding.ok ? "ok" : "RATE REGRESSION", rate_key, base,
                    cand, tolerance * 100.0);
      finding.message = buf;
      if (!finding.ok) ++report.failures;
      report.findings.push_back(std::move(finding));
    }

    if (const char* p99_key = p99_key_for(base_row)) {
      const double base = number_field(base_row, p99_key);
      const double cand = number_field(cand_row, p99_key);
      const double tolerance = tolerance_for(
          base_row, "tolerance_rel_p99", config.p99_growth_tolerance);
      GateFinding finding;
      finding.row = identity;
      finding.metric = p99_key;
      finding.baseline = base;
      finding.candidate = cand;
      finding.tolerance = tolerance;
      finding.ok = base <= 0.0 || cand <= base * (1.0 + tolerance);
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "%s: %s %.4g -> %.4g (limit +%.0f%%)",
                    finding.ok ? "ok" : "P99 REGRESSION", p99_key, base,
                    cand, tolerance * 100.0);
      finding.message = buf;
      if (!finding.ok) ++report.failures;
      report.findings.push_back(std::move(finding));
    }
  }
  return report;
}

}  // namespace speedybox::bench
