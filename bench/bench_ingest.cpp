// bench_ingest — live loopback ingestion throughput and front-end latency
// (DESIGN.md §11). Each trial runs the SAME workload twice per round:
//
//   inproc:  materialize + ChainRunner::run()      (the trace:: drive)
//   live:    loadgen preload -> IngestServer.serve (real UDP datagrams)
//
// and gates on rel_rate = live ingest rate / in-process drive rate, a
// host-independent ratio: both sides move together when the machine is
// slow, so the baseline survives container reshuffles. The live rate uses
// IngestStats.drive_seconds (serve() entry to last wire activity — the
// idle-timeout tail excluded), and the UDP rounds are deterministic: every
// datagram is preloaded into the receive buffer before serve() starts, so
// there is no sender thread competing for the core and no kernel drop
// ambiguity in the denominator.
//
// The front-end latency (recv -> batch hand-off, the ingest_cycles
// telemetry histogram) is reported informationally; its tail is scheduler
// noise on a shared box, so the row carries rel_p99_unstable and the gate
// checks rate only, with a tolerance derived from the measured trial
// spread (bench_method::aggregate_trials).
#include <cstdio>
#include <cstring>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "bench_method.hpp"
#include "bench_util.hpp"
#include "io/ingest_executor.hpp"
#include "io/ingest_server.hpp"
#include "io/loadgen.hpp"
#include "runtime/plan.hpp"
#include "runtime/runner.hpp"
#include "telemetry/metrics.hpp"
#include "trace/workload.hpp"
#include "util/cycle_clock.hpp"
#include "util/histogram.hpp"

using namespace speedybox;

namespace {

/// §VII-C Chain 1 — the same chain the closed-loop equivalence suite uses,
/// built from the canonical registry-backed spec.
std::unique_ptr<runtime::ServiceChain> chain1_gateway() {
  return plan::build_chain(plan::vii_c_chain1());
}

runtime::RunConfig speedybox_run_config() {
  runtime::RunConfig config{platform::PlatformKind::kBess, true, false};
  config.batch_size = 32;
  return config;
}

struct TrialResult {
  double live_mpps = 0.0;
  double inproc_mpps = 0.0;
  double rel_rate = 0.0;
  double ingest_p50_us = 0.0;
  double ingest_p99_us = 0.0;
  std::uint64_t frames = 0;
  std::uint64_t socket_drops = 0;
  std::uint64_t parse_errors = 0;
  bool conserved = true;
};

/// One measured trial: `rounds` preload/serve rounds (fresh chain + server
/// each round; rates aggregate over the whole trial so short rounds do not
/// amplify timer noise).
TrialResult run_trial(std::size_t rounds, std::size_t flows) {
  telemetry::Registry registry;
  TrialResult result;
  double busy_s = 0.0;
  double inproc_s = 0.0;
  std::uint64_t inproc_packets = 0;
  std::uint64_t sent = 0;

  for (std::size_t round = 0; round < rounds; ++round) {
    trace::DatacenterWorkloadConfig workload_config;
    workload_config.flow_count = flows;
    workload_config.seed = 0xB13C + round;
    const trace::Workload workload = make_datacenter_workload(workload_config);

    {
      // In-process reference drive of the identical packet sequence.
      const auto chain = chain1_gateway();
      runtime::ChainRunner runner{*chain, speedybox_run_config()};
      std::vector<net::Packet> packets;
      packets.reserve(workload.packet_count());
      for (std::size_t i = 0; i < workload.packet_count(); ++i) {
        packets.push_back(workload.materialize(i));
      }
      const auto start = std::chrono::steady_clock::now();
      runner.run(packets, nullptr);
      inproc_s +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      inproc_packets += packets.size();
    }

    {
      // Live drive: preload every datagram, then serve single-threaded.
      const auto chain = chain1_gateway();
      runtime::ChainRunner runner{*chain, speedybox_run_config()};
      io::IngestConfig config;
      config.idle_timeout_ms = 50;
      io::IngestServer server{config};
      server.attach_telemetry(&registry, "bench/ingest");
      io::IngestExecutor sink{runner};
      io::LoadgenConfig gen;
      gen.port = server.udp_port();
      const io::LoadgenReport report = replay_workload(workload, gen);
      const io::IngestStats stats = server.serve(sink);
      sink.finish();
      sent += report.sent;
      result.frames += stats.rx_frames;
      result.socket_drops += stats.socket_drops;
      result.parse_errors += stats.parse_errors;
      busy_s += stats.drive_seconds;
      // The CI smoke's identity, gate off: sent == submitted + errors +
      // kernel drops. A violation means the front-end lost frames.
      if (report.sent !=
          sink.submitted() + stats.parse_errors + stats.socket_drops) {
        result.conserved = false;
      }
    }
  }

  result.live_mpps = busy_s > 0.0 ? result.frames / busy_s / 1e6 : 0.0;
  result.inproc_mpps =
      inproc_s > 0.0 ? inproc_packets / inproc_s / 1e6 : 0.0;
  result.rel_rate =
      result.inproc_mpps > 0.0 ? result.live_mpps / result.inproc_mpps : 0.0;
  if (sent != result.frames + result.parse_errors + result.socket_drops) {
    result.conserved = false;
  }

  const telemetry::ShardSnapshot total = registry.snapshot().aggregate();
  for (const auto& [name, hist] : total.histograms) {
    if (name == "ingest_cycles" && hist.count() > 0) {
      const double us_per_cycle =
          1e6 / util::CycleClock::frequency_hz();
      result.ingest_p50_us = hist.percentile(50) * us_per_cycle;
      result.ingest_p99_us = hist.percentile(99) * us_per_cycle;
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::size_t rounds = smoke ? 2 : 6;
  const std::size_t flows = smoke ? 40 : 120;
  bench::TrialPolicy policy;
  policy.warmup = 1;
  policy.trials = smoke ? 2 : 3;

  bench::print_header(
      "bench_ingest: live loopback UDP ingestion vs in-process drive "
      "(chain1_gateway, datacenter workload)");

  std::vector<double> rel_scores;
  const TrialResult best = bench::best_of<TrialResult>(
      policy, [&] { return run_trial(rounds, flows); },
      [](const TrialResult& trial) { return trial.rel_rate; }, &rel_scores);
  const bench::TrialAggregate spread = bench::aggregate_trials(rel_scores);
  // Loopback sockets on a shared core are noisier than the pure in-memory
  // benches: floor the self-measured tolerance at 25%.
  const double tolerance =
      std::max(0.25, 2.0 * spread.rel_spread);

  std::printf(
      "  live ingest    %8.3f Mpps  (%llu frames, %llu kernel drops, "
      "%llu parse errors)\n",
      best.live_mpps, static_cast<unsigned long long>(best.frames),
      static_cast<unsigned long long>(best.socket_drops),
      static_cast<unsigned long long>(best.parse_errors));
  std::printf("  in-process     %8.3f Mpps\n", best.inproc_mpps);
  std::printf("  rel_rate       %8.3f  (spread %.1f%%, gate tolerance %.0f%%)\n",
              best.rel_rate, spread.rel_spread * 100.0, tolerance * 100.0);
  std::printf("  ingest latency p50 %.2f us  p99 %.2f us  (recv -> hand-off)\n",
              best.ingest_p50_us, best.ingest_p99_us);
  std::printf("  conservation   %s\n", best.conserved ? "ok" : "VIOLATED");

  using telemetry::Json;
  bench::BenchJson json{"ingest"};
  json.param("rounds", static_cast<double>(rounds));
  json.param("flows", static_cast<double>(flows));
  json.param("trials", static_cast<double>(policy.trials));
  json.param("workload", "datacenter");
  json.environment(bench::environment_json(0, 32));

  Json live = Json::object();
  live.set("config", Json::string("live/udp"));
  live.set("chain", Json::string("chain1_gateway"));
  live.set("workload", Json::string("datacenter"));
  live.set("platform", Json::string("bess"));
  live.set("rel_rate", Json::number(best.rel_rate));
  live.set("tolerance_rel_rate", Json::number(tolerance));
  // The front-end latency tail is scheduler noise on a shared box —
  // report it, do not gate on it (suppresses the absolute fallback too).
  live.set("rel_p99_unstable", Json::boolean(true));
  live.set("rate_mpps", Json::number(best.live_mpps));
  live.set("ingest_latency_us_p50", Json::number(best.ingest_p50_us));
  live.set("ingest_latency_us_p99", Json::number(best.ingest_p99_us));
  live.set("packets", Json::integer(best.frames));
  live.set("socket_drops", Json::integer(best.socket_drops));
  live.set("parse_errors", Json::integer(best.parse_errors));
  live.set("conserved", Json::boolean(best.conserved));
  live.set("rel_rate_spread", Json::number(spread.rel_spread));
  json.add(std::move(live));

  Json inproc = Json::object();
  inproc.set("config", Json::string("inproc/reference"));
  inproc.set("chain", Json::string("chain1_gateway"));
  inproc.set("workload", Json::string("datacenter"));
  inproc.set("platform", Json::string("bess"));
  inproc.set("rate_mpps", Json::number(best.inproc_mpps));
  inproc.set("gated", Json::boolean(false));
  json.add(std::move(inproc));

  json.write();
  return best.conserved ? 0 : 1;
}
