// Figure 6: consolidation and parallelism on the Snort + Monitor chain.
//
// Both NFs carry header actions (forward) and state functions (inspection /
// counting), so the chain benefits from header-action consolidation and
// state-function parallelism simultaneously. Reports CPU cycles per packet
// (Fig. 6a) and processing rate (Fig. 6b), Original vs SpeedyBox.
//
// Expected shape (paper): ~46-47% CPU cycle reduction on both platforms;
// BESS rate +32% with SpeedyBox; ONVM rate unchanged (already pipelined).
#include "runtime/plan.hpp"
#include "trace/payload_synth.hpp"

#include "bench_util.hpp"

namespace speedybox::bench {
namespace {

void run_for_payload(BenchJson& json, std::size_t payload_size) {
  trace::Workload workload = trace::make_uniform_workload(
      /*flow_count=*/64, /*packets_per_flow=*/400, payload_size);
  trace::PayloadSynthConfig synth;
  synth.match_fraction = 0.2;
  plant_rule_contents(workload, trace::default_snort_rules(), synth);

  const ChainFactory factory = [] {
    return plan::build_chain(
        plan::ChainSpec::parse("snort,monitor:heavy", "snort_monitor"));
  };

  std::printf("\n-- payload %zu B --\n", payload_size);
  std::printf("%-10s %16s %16s %12s | %12s %12s %10s\n", "", "Orig cyc/pkt",
              "SBox cyc/pkt", "reduction", "Orig Mpps", "SBox Mpps",
              "speedup");
  for (const auto platform :
       {platform::PlatformKind::kBess, platform::PlatformKind::kOnvm}) {
    const ConfigResult original = run_config(factory, platform, false,
                                             workload);
    const ConfigResult speedy = run_config(factory, platform, true, workload);
    for (const auto& [mode, result] :
         {std::pair<const char*, const ConfigResult&>{"original", original},
          {"speedybox", speedy}}) {
      telemetry::Json row = config_row(
          std::string(platform_name(platform)) + "/" + mode, result);
      row.set("payload", telemetry::Json::integer(payload_size));
      json.add(std::move(row));
    }
    std::printf("%-10s %16.0f %16.0f %11.1f%% | %12.3f %12.3f %9.2fx\n",
                platform_name(platform), original.sub_cycles,
                speedy.sub_cycles,
                reduction_pct(original.sub_cycles,
                              speedy.sub_cycles),
                original.rate_mpps, speedy.rate_mpps,
                original.rate_mpps > 0
                    ? speedy.rate_mpps / original.rate_mpps
                    : 0.0);
  }
}

void run() {
  print_header(
      "Figure 6: Snort + Monitor chain (consolidation + parallelism)");
  BenchJson json{"fig6_snort_monitor"};
  json.param("flows", 64);
  json.param("packets_per_flow", 400);
  run_for_payload(json, 18);
  run_for_payload(json, 192);
  json.write();
  std::printf("\n");
}

}  // namespace
}  // namespace speedybox::bench

int main() {
  speedybox::bench::run();
  return 0;
}
