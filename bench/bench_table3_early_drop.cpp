// Table III: early packet drop saves CPU cycles.
//
// Chain of three IPFilters with actions {forward, forward, drop} for all
// flows. On the original path every packet burns NF1+NF2 before NF3 drops
// it; SpeedyBox drops subsequent packets at the head of the chain.
//
// Expected shape (paper): SpeedyBox aggregate ≈ one NF's worth of cycles,
// ~65% below the original aggregate.
#include "bench_util.hpp"

namespace speedybox::bench {
namespace {

void run() {
  // All flows target port 80; NF3's ACL blacklists port 80.
  const trace::Workload workload = trace::make_uniform_workload(
      /*flow_count=*/64, /*packets_per_flow=*/400, /*payload_size=*/10);

  const ChainFactory factory = [] {
    auto chain = std::make_unique<runtime::ServiceChain>();
    chain->emplace_nf<nf::IpFilter>(nonmatching_acl(), "NF1");
    chain->emplace_nf<nf::IpFilter>(nonmatching_acl(), "NF2");
    auto drop_acl = nonmatching_acl();
    drop_acl.push_back(nf::AclRule::drop_dst_port(80));
    chain->emplace_nf<nf::IpFilter>(drop_acl, "NF3");
    return chain;
  };

  print_header("Table III: early packet drop saves CPU cycles");
  BenchJson json{"table3_early_drop"};
  json.param("flows", 64);
  json.param("packets_per_flow", 400);
  std::printf("%-14s %10s %10s %10s %12s\n", "(CPU cycle)", "NF1", "NF2",
              "NF3", "Aggregate");
  for (const auto platform :
       {platform::PlatformKind::kBess, platform::PlatformKind::kOnvm}) {
    const ConfigResult original = run_config(factory, platform, false,
                                             workload,
                                             /*measure_per_nf=*/true);
    const ConfigResult speedy = run_config(factory, platform, true, workload);

    for (const auto& [mode, result] :
         {std::pair<const char*, const ConfigResult&>{"original", original},
          {"speedybox", speedy}}) {
      telemetry::Json row = config_row(
          std::string(platform_name(platform)) + "/" + mode, result);
      if (!result.stats.per_nf_mean_cycles.empty()) {
        telemetry::Json per_nf = telemetry::Json::array();
        for (const double cycles : result.stats.per_nf_mean_cycles) {
          per_nf.push(telemetry::Json::number(cycles));
        }
        row.set("per_nf_mean_cycles", std::move(per_nf));
      }
      json.add(std::move(row));
    }

    std::printf("%-14s %8.0f %9.0f %9.0f %11.0f\n", platform_name(platform),
                original.stats.per_nf_mean_cycles[0],
                original.stats.per_nf_mean_cycles[1],
                original.stats.per_nf_mean_cycles[2],
                original.sub_cycles);
    std::printf("%-6s w/ SBox %8s %9s %9s %11.0f (-%.1f%%)\n",
                platform_name(platform), "--", "--", "--",
                speedy.sub_cycles,
                reduction_pct(original.sub_cycles,
                              speedy.sub_cycles));
  }
  json.write();
  std::printf("\n");
}

}  // namespace
}  // namespace speedybox::bench

int main() {
  speedybox::bench::run();
  return 0;
}
