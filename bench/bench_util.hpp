// Shared harness for the figure/table reproduction benchmarks.
//
// Each bench binary rebuilds the paper's experimental setup (workload +
// chain + platform), runs the four configurations {BESS, ONVM} ×
// {Original, SpeedyBox}, and prints the same rows/series the paper reports.
// Absolute numbers are machine-dependent; EXPERIMENTS.md compares shapes.
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "nf/ip_filter.hpp"
#include "runtime/runner.hpp"
#include "trace/workload.hpp"
#include "util/cycle_clock.hpp"

namespace speedybox::bench {

using ChainFactory = std::function<std::unique_ptr<runtime::ServiceChain>()>;

struct ConfigResult {
  /// Platform CPU cycles per packet (measured work + per-NF framework
  /// overhead) — what the paper's platform-level cycle counts report.
  double init_cycles = 0;  // initial packets
  double sub_cycles = 0;   // subsequent packets
  double sub_latency_us = 0;     // modeled latency (mean), subsequent
  double p50_flow_time_us = 0;   // per-flow processing time median
  double rate_mpps = 0;
  runtime::RunStats stats;
  util::SampleRecorder flow_time_us;
};

inline ConfigResult run_config(const ChainFactory& factory,
                               platform::PlatformKind platform,
                               bool speedybox,
                               const trace::Workload& workload,
                               bool measure_per_nf = false) {
  auto chain = factory();
  runtime::ChainRunner runner{*chain,
                              {platform, speedybox, measure_per_nf}};
  runner.run_workload(workload);
  ConfigResult result;
  result.stats = runner.stats();
  const auto& stats = result.stats;
  // Medians, not means: runs share a noisy core with the host, and a
  // single interrupt inside one packet's measurement shifts a mean far
  // more than it shifts the p50.
  if (stats.platform_cycles_initial.count() > 0) {
    result.init_cycles = stats.platform_cycles_initial.percentile(50);
  }
  if (stats.platform_cycles_subsequent.count() > 0) {
    result.sub_cycles = stats.platform_cycles_subsequent.percentile(50);
    result.sub_latency_us = stats.latency_us_subsequent.percentile(50);
  }
  result.rate_mpps = stats.rate_mpps(platform);
  result.flow_time_us = runner.flow_time_us();
  if (result.flow_time_us.count() > 0) {
    result.p50_flow_time_us = result.flow_time_us.percentile(50);
  }
  return result;
}

/// An ACL of `rules` entries that never matches the benchmark flows
/// (dst prefixes in 172.31/16): models a realistically sized blacklist
/// whose linear scan is paid by initial packets.
inline std::vector<nf::AclRule> nonmatching_acl(std::size_t rules = 32) {
  std::vector<nf::AclRule> acl;
  acl.reserve(rules);
  for (std::size_t i = 0; i < rules; ++i) {
    acl.push_back(nf::AclRule::drop_dst_prefix(
        net::Ipv4Addr{172, 31, static_cast<std::uint8_t>(i), 0}, 24));
  }
  return acl;
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("(CPU frequency: %.2f GHz; cycles are measured, hop costs modeled"
              " — see DESIGN.md)\n",
              util::CycleClock::frequency_hz() / 1e9);
  std::printf("================================================================\n");
}

inline double reduction_pct(double original, double speedybox) {
  return original > 0 ? (original - speedybox) / original * 100.0 : 0.0;
}

}  // namespace speedybox::bench
