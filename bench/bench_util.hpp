// Shared harness for the figure/table reproduction benchmarks.
//
// Each bench binary rebuilds the paper's experimental setup (workload +
// chain + platform), runs the four configurations {BESS, ONVM} ×
// {Original, SpeedyBox}, and prints the same rows/series the paper reports.
// Absolute numbers are machine-dependent; EXPERIMENTS.md compares shapes.
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "bench_method.hpp"
#include "bench_schema.hpp"
#include "nf/ip_filter.hpp"
#include "runtime/executor.hpp"
#include "runtime/runner.hpp"
#include "telemetry/json.hpp"
#include "trace/workload.hpp"
#include "util/cycle_clock.hpp"

namespace speedybox::bench {

using ChainFactory = std::function<std::unique_ptr<runtime::ServiceChain>()>;

struct ConfigResult {
  /// Platform CPU cycles per packet (measured work + per-NF framework
  /// overhead) — what the paper's platform-level cycle counts report.
  double init_cycles = 0;  // initial packets
  double sub_cycles = 0;   // subsequent packets
  double sub_latency_us = 0;     // modeled latency (mean), subsequent
  double p50_flow_time_us = 0;   // per-flow processing time median
  double rate_mpps = 0;
  runtime::RunStats stats;
  util::SampleRecorder flow_time_us;
};

/// Extract the common figure-bench measurements from any executor shape
/// after a run() — the Executor-interface half of run_config, reused by
/// benches that build their own executor (sharding, overload sweeps).
inline ConfigResult collect_result(const runtime::Executor& executor,
                                   platform::PlatformKind platform) {
  ConfigResult result;
  result.stats = executor.stats();
  const auto& stats = result.stats;
  // Medians, not means: runs share a noisy core with the host, and a
  // single interrupt inside one packet's measurement shifts a mean far
  // more than it shifts the p50.
  if (stats.platform_cycles_initial.count() > 0) {
    result.init_cycles = stats.platform_cycles_initial.percentile(50);
  }
  if (stats.platform_cycles_subsequent.count() > 0) {
    result.sub_cycles = stats.platform_cycles_subsequent.percentile(50);
    result.sub_latency_us = stats.latency_us_subsequent.percentile(50);
  }
  result.rate_mpps = stats.rate_mpps(platform);
  return result;
}

inline ConfigResult run_config(const ChainFactory& factory,
                               platform::PlatformKind platform,
                               bool speedybox,
                               const trace::Workload& workload,
                               bool measure_per_nf = false,
                               std::size_t batch_size =
                                   net::kDefaultBatchSize,
                               const runtime::OverloadConfig& overload = {}) {
  auto chain = factory();
  runtime::RunConfig config{platform, speedybox, measure_per_nf};
  config.batch_size = batch_size;
  runtime::ChainRunner runner{*chain, config};
  // Drive through the Executor interface — same entry points chainsim and
  // the equivalence harnesses use for every shape.
  runtime::Executor& executor = runner;
  if (overload.enabled) executor.set_overload_policy(overload);
  executor.run(workload);
  ConfigResult result = collect_result(executor, platform);
  result.flow_time_us = runner.flow_time_us();
  if (result.flow_time_us.count() > 0) {
    result.p50_flow_time_us = result.flow_time_us.percentile(50);
  }
  return result;
}

/// Warmup + best-of-N over run_config (bench_method's TrialPolicy): the
/// shared replacement for the hand-rolled best-of-3 loops — and it never
/// times the first, cold trial. Ranked by rate_mpps (noise only ever slows
/// a run); the per-trial rates come back via `scores_out` for spread
/// reporting.
inline ConfigResult run_config_best(
    const TrialPolicy& policy, const ChainFactory& factory,
    platform::PlatformKind platform, bool speedybox,
    const trace::Workload& workload, bool measure_per_nf = false,
    std::size_t batch_size = net::kDefaultBatchSize,
    const runtime::OverloadConfig& overload = {},
    std::vector<double>* scores_out = nullptr) {
  return best_of<ConfigResult>(
      policy,
      [&] {
        return run_config(factory, platform, speedybox, workload,
                          measure_per_nf, batch_size, overload);
      },
      [](const ConfigResult& result) { return result.rate_mpps; },
      scores_out);
}

/// An ACL of `rules` entries that never matches the benchmark flows
/// (dst prefixes in 172.31/16): models a realistically sized blacklist
/// whose linear scan is paid by initial packets.
inline std::vector<nf::AclRule> nonmatching_acl(std::size_t rules = 32) {
  std::vector<nf::AclRule> acl;
  acl.reserve(rules);
  for (std::size_t i = 0; i < rules; ++i) {
    acl.push_back(nf::AclRule::drop_dst_prefix(
        net::Ipv4Addr{172, 31, static_cast<std::uint8_t>(i), 0}, 24));
  }
  return acl;
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("(CPU frequency: %.2f GHz; cycles are measured, hop costs modeled"
              " — see DESIGN.md)\n",
              util::CycleClock::frequency_hz() / 1e9);
  std::printf("================================================================\n");
}

inline double reduction_pct(double original, double speedybox) {
  return original > 0 ? (original - speedybox) / original * 100.0 : 0.0;
}

/// One measured configuration as a JSON row: cycles/packet and latency
/// percentiles (p50/p95/p99), rate, and packet/drop counts. Extra fields
/// (sweep parameters, derived splits) can be set() on the returned value.
inline telemetry::Json config_row(const std::string& label,
                                  const ConfigResult& result) {
  using telemetry::Json;
  Json row = Json::object();
  row.set("config", Json::string(label));
  const auto percentiles = [&row](const std::string& prefix,
                                  const util::SampleRecorder& samples) {
    if (samples.count() == 0) return;
    row.set(prefix + "_p50", Json::number(samples.percentile(50)));
    row.set(prefix + "_p95", Json::number(samples.percentile(95)));
    row.set(prefix + "_p99", Json::number(samples.percentile(99)));
  };
  row.set("init_cycles_p50", Json::number(result.init_cycles));
  percentiles("cycles_per_packet", result.stats.platform_cycles_subsequent);
  percentiles("latency_us", result.stats.latency_us_subsequent);
  row.set("rate_mpps", Json::number(result.rate_mpps));
  row.set("packets", Json::integer(result.stats.packets));
  row.set("drops", Json::integer(result.stats.drops));
  const runtime::OverloadStats& overload = result.stats.overload;
  if (overload.offered > 0 || overload.faulted > 0) {
    row.set("offered", Json::integer(overload.offered));
    row.set("admitted", Json::integer(overload.admitted));
    row.set("shed", Json::integer(overload.shed_total()));
    row.set("faulted", Json::integer(overload.faulted));
  }
  return row;
}

/// Machine-readable companion to the printed tables: each bench collects
/// its parameters and per-configuration rows here and write() dumps them as
/// BENCH_<name>.json (one pretty-stable JSON object) next to the binary's
/// cwd, so plotting scripts never have to scrape stdout.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  void param(const std::string& key, double value) {
    params_.set(key, telemetry::Json::number(value));
  }
  void param(const std::string& key, const std::string& value) {
    params_.set(key, telemetry::Json::string(value));
  }

  /// Append one arbitrary row (usually config_row() plus extra fields).
  void add(telemetry::Json row) { rows_.push(std::move(row)); }
  /// Convenience: a plain measured configuration with no extra fields.
  void config(const std::string& label, const ConfigResult& result) {
    add(config_row(label, result));
  }

  /// Replace the default environment capture (e.g. to record shards /
  /// batch size — see bench_method's environment_json).
  void environment(telemetry::Json env) { env_ = std::move(env); }

  /// Write BENCH_<name>.json; on failure warns on stderr (benches keep
  /// their stdout contract either way). The document carries the shared
  /// schema (bench_schema.hpp): schema_version + environment capture on
  /// top of params/configs.
  void write() const {
    using telemetry::Json;
    Json root = Json::object();
    root.set("bench", Json::string(name_));
    root.set("schema_version", Json::integer(kBenchSchemaVersion));
    root.set("cpu_ghz",
             Json::number(util::CycleClock::frequency_hz() / 1e9));
    root.set("environment", env_);
    root.set("params", params_);
    root.set("configs", rows_);
    const std::string path = "BENCH_" + name_ + ".json";
    const std::string text = root.dump();
    std::FILE* file = std::fopen(path.c_str(), "w");
    const bool ok =
        file != nullptr &&
        std::fwrite(text.data(), 1, text.size(), file) == text.size() &&
        std::fputc('\n', file) != EOF;
    if (file != nullptr) std::fclose(file);
    if (!ok) {
      std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "wrote %s\n", path.c_str());
    }
  }

 private:
  std::string name_;
  telemetry::Json params_ = telemetry::Json::object();
  telemetry::Json rows_ = telemetry::Json::array();
  telemetry::Json env_ = environment_json();
};

}  // namespace speedybox::bench
