// bench_tenants — the multi-tenant isolation experiment (DESIGN.md §14,
// EXPERIMENTS.md "Tenant isolation").
//
// Two claims, both gated against the committed baseline as machine-
// portable ratios:
//
//   victim_isolation: tenant A runs the §VII-C gateway chain under a
//     steady uniform workload while tenant B syn-floods at 4x A's offered
//     load on the same host. A's SLO is set from its own solo run (4x the
//     solo p99, measured in the same invocation, so the target is
//     machine-relative).
//       rel_rate = hosted goodput rate / solo goodput rate      (~1.0)
//       rel_p99  = hosted p99 / SLO                             (< 1.0)
//     The p99 tolerance is derived so a candidate breaching the SLO
//     (rel_p99 > 1) always fails the gate, whatever the baseline sat at.
//
//   pair_efficiency: two well-behaved tenants share one pool.
//       rel_rate = hosted aggregate rate / back-to-back solo rate
//     Back-to-back (sum of packets over summed solo walls) is the ideal a
//     shared single host thread can reach; the tolerance floors the gate
//     at ~0.8x of it, so gate/arbiter/telemetry overhead stays bounded.
//
// All drives are in-process (TenantHost::run) — deterministic packet
// interleave, no sockets, same entry points the tenancy test suite uses.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "tenancy/tenant_host.hpp"

namespace speedybox::bench {
namespace {

tenancy::TenantSpec victim_spec(std::size_t flows,
                                std::uint32_t packets_per_flow) {
  tenancy::TenantSpec tenant;
  tenant.id = "victim";
  tenant.plan.chain = plan::vii_c_chain1();
  tenant.plan.executor = plan::ExecutorKind::kSharded;
  tenant.plan.shards = 2;
  tenant.workload.kind = "uniform";
  tenant.workload.flows = flows;
  tenant.workload.packets_per_flow = packets_per_flow;
  tenant.workload.seed = 61;
  return tenant;
}

tenancy::TenantSpec flood_spec(std::size_t scenario_flows) {
  tenancy::TenantSpec tenant;
  tenant.id = "flood";
  tenant.plan.chain = plan::ChainSpec::parse("ipfilter,monitor");
  tenant.plan.executor = plan::ExecutorKind::kRunner;
  tenant.slo_us = 1e9;  // the adversary never qualifies as a victim
  tenant.workload.kind = "syn-flood";
  tenant.workload.flows = scenario_flows;  // 0 = scenario default (3072)
  tenant.workload.seed = 62;
  return tenant;
}

struct SoloResult {
  double rate_mpps = 0.0;   // cycle-modeled fast-path rate
  double goodput = 0.0;     // delivered / offered
  double p99_us = 0.0;
  double wall_s = 0.0;
};

/// The tenant's plan and workload with no host around it — the baseline
/// every hosted ratio normalizes against.
SoloResult measure_solo(const tenancy::TenantSpec& spec) {
  plan::BuiltDeployment built = plan::build(spec.plan);
  const trace::Workload workload = spec.workload.build();
  const auto start = std::chrono::steady_clock::now();
  built.executor->run(workload);
  SoloResult solo;
  solo.wall_s = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  const runtime::RunStats stats = built.executor->stats();
  solo.rate_mpps = stats.rate_mpps(spec.plan.platform);
  solo.goodput =
      stats.packets > 0
          ? static_cast<double>(stats.packets - stats.drops -
                                stats.overload.faulted) /
                static_cast<double>(stats.packets)
          : 0.0;
  if (stats.latency_us_all.count() > 0) {
    solo.p99_us = stats.latency_us_all.percentile(99);
  }
  return solo;
}

struct HostedResult {
  tenancy::HostRunResult run;
  double victim_rate_mpps = 0.0;
  double victim_goodput = 0.0;  // delivered / offered, gate shed included
  double victim_p99_us = 0.0;
};

HostedResult measure_adversarial(const tenancy::HostSpec& host_spec) {
  tenancy::TenantHost host{host_spec};
  HostedResult hosted;
  hosted.run = host.run();
  const tenancy::TenantResult& victim = hosted.run.tenants[0];
  hosted.victim_rate_mpps = victim.stats.rate_mpps(
      host_spec.tenants[0].plan.platform);
  hosted.victim_goodput =
      victim.offered > 0
          ? static_cast<double>(victim.delivered()) /
                static_cast<double>(victim.offered)
          : 0.0;
  if (victim.stats.latency_us_all.count() > 0) {
    hosted.victim_p99_us = victim.stats.latency_us_all.percentile(99);
  }
  return hosted;
}

}  // namespace
}  // namespace speedybox::bench

int main(int argc, char** argv) {
  using namespace speedybox;
  using telemetry::Json;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::size_t victim_flows = smoke ? 48 : 64;
  const std::uint32_t victim_packets = smoke ? 8 : 12;
  // syn-flood population chosen so the flood offers exactly 4.0x the
  // victim's packets (scenario: flows * 24 packets, 1:3 benign:attack).
  const std::size_t flood_flows = smoke ? 64 : 0;  // 1536 / 3072 packets
  bench::TrialPolicy policy;
  policy.warmup = 1;
  policy.trials = smoke ? 3 : 4;

  bench::print_header(
      "bench_tenants: per-tenant SLO isolation under an adversarial "
      "co-tenant (chain1_gateway victim, syn-flood aggressor at 4x)");

  const tenancy::TenantSpec victim = bench::victim_spec(
      victim_flows, victim_packets);
  const tenancy::TenantSpec flood = bench::flood_spec(flood_flows);
  const std::uint64_t victim_offered = victim.workload.build().packet_count();
  const std::uint64_t flood_offered = flood.workload.build().packet_count();
  const double flood_multiple =
      static_cast<double>(flood_offered) / static_cast<double>(victim_offered);

  // -- Solo baseline (best of N: interference only ever subtracts) -----------
  bench::SoloResult solo;
  std::vector<double> solo_rates;
  for (int warm = 0; warm < policy.warmup; ++warm) {
    bench::measure_solo(victim);
  }
  for (int trial = 0; trial < policy.trials; ++trial) {
    const bench::SoloResult candidate = bench::measure_solo(victim);
    solo_rates.push_back(candidate.rate_mpps);
    if (candidate.rate_mpps > solo.rate_mpps) solo = candidate;
  }
  const double slo_us = std::max(20.0, 4.0 * solo.p99_us);
  std::printf(
      "  victim solo: %8.3f Mpps  p99 %7.2f us  goodput %.4f  "
      "-> SLO %.2f us (4x solo p99)\n",
      solo.rate_mpps, solo.p99_us, solo.goodput, slo_us);

  // -- Hosted adversarial run ------------------------------------------------
  tenancy::HostSpec adversarial;
  adversarial.name = "isolation";
  adversarial.tenants = {victim, flood};
  adversarial.tenants[0].slo_us = slo_us;
  adversarial.enforcement.window_packets = 512;

  bench::HostedResult hosted;
  std::vector<double> hosted_rates;
  for (int warm = 0; warm < policy.warmup; ++warm) {
    bench::measure_adversarial(adversarial);
  }
  for (int trial = 0; trial < policy.trials; ++trial) {
    bench::HostedResult candidate = bench::measure_adversarial(adversarial);
    hosted_rates.push_back(candidate.victim_rate_mpps);
    if (candidate.victim_rate_mpps > hosted.victim_rate_mpps) {
      hosted = std::move(candidate);
    }
  }
  const tenancy::TenantResult& hosted_victim = hosted.run.tenants[0];
  const tenancy::TenantResult& hosted_flood = hosted.run.tenants[1];

  const double victim_goodput_rate =
      hosted.victim_rate_mpps * hosted.victim_goodput;
  const double solo_goodput_rate = solo.rate_mpps * solo.goodput;
  const double rel_rate =
      solo_goodput_rate > 0.0 ? victim_goodput_rate / solo_goodput_rate : 0.0;
  const double rel_p99 = slo_us > 0.0 ? hosted.victim_p99_us / slo_us : 0.0;

  const bench::TrialAggregate solo_spread =
      bench::aggregate_trials(solo_rates);
  const bench::TrialAggregate hosted_spread =
      bench::aggregate_trials(hosted_rates);
  const double rate_tolerance = std::max(
      0.10, 2.0 * (solo_spread.rel_spread + hosted_spread.rel_spread));
  // Any candidate breaching the SLO (rel_p99 > 1) must fail the gate,
  // whatever this baseline run measured; below that, latency noise passes.
  const double p99_tolerance =
      rel_p99 > 0.0
          ? std::clamp(1.0 / rel_p99 - 1.0, 0.25, 4.0)
          : 4.0;

  std::printf(
      "  victim hosted (flood at %.1fx): %8.3f Mpps  p99 %7.2f us  "
      "goodput %.4f\n",
      flood_multiple, hosted.victim_rate_mpps, hosted.victim_p99_us,
      hosted.victim_goodput);
  std::printf(
      "    rel_rate %.3f (tolerance %.0f%%)   rel_p99 %.3f of SLO "
      "(tolerance %.0f%%)\n",
      rel_rate, rate_tolerance * 100.0, rel_p99, p99_tolerance * 100.0);
  std::printf(
      "    victim gate shed %llu   flood gate shed %llu, escalation L%d\n",
      static_cast<unsigned long long>(hosted_victim.gate_shed),
      static_cast<unsigned long long>(hosted_flood.gate_shed),
      hosted_flood.max_escalation);

  // -- Pair efficiency: two polite tenants on one pool -----------------------
  tenancy::TenantSpec alpha = bench::victim_spec(
      smoke ? 40 : 64, smoke ? 8 : 10);
  alpha.id = "alpha";
  alpha.workload.seed = 71;
  tenancy::TenantSpec bravo = alpha;
  bravo.id = "bravo";
  bravo.workload.seed = 72;
  alpha.plan.shards = 1;
  bravo.plan.shards = 1;

  tenancy::HostSpec pair;
  pair.name = "pair";
  pair.tenants = {alpha, bravo};

  const double pair_packets = static_cast<double>(
      alpha.workload.build().packet_count() +
      bravo.workload.build().packet_count());
  double best_pair_rate = 0.0;
  double best_back_to_back = 0.0;
  std::vector<double> pair_ratios;
  for (int trial = 0; trial < policy.warmup + policy.trials; ++trial) {
    const bench::SoloResult solo_alpha = bench::measure_solo(alpha);
    const bench::SoloResult solo_bravo = bench::measure_solo(bravo);
    tenancy::TenantHost host{pair};
    const tenancy::HostRunResult run = host.run();
    if (trial < policy.warmup) continue;
    const double hosted_rate =
        run.wall_seconds > 0.0 ? pair_packets / run.wall_seconds / 1e6 : 0.0;
    const double back_to_back =
        pair_packets / (solo_alpha.wall_s + solo_bravo.wall_s) / 1e6;
    pair_ratios.push_back(
        back_to_back > 0.0 ? hosted_rate / back_to_back : 0.0);
    best_pair_rate = std::max(best_pair_rate, hosted_rate);
    best_back_to_back = std::max(best_back_to_back, back_to_back);
  }
  const double pair_efficiency =
      best_back_to_back > 0.0 ? best_pair_rate / best_back_to_back : 0.0;
  const bench::TrialAggregate pair_spread =
      bench::aggregate_trials(pair_ratios);
  // The ISSUE floor: hosting two polite tenants must keep >= ~0.8x of the
  // back-to-back ideal; widen only when this box is noisier than that.
  const double pair_tolerance =
      std::max(0.20, 2.0 * pair_spread.rel_spread);
  std::printf(
      "  pair hosted %8.3f Mpps vs back-to-back %8.3f Mpps  "
      "efficiency %.3f (tolerance %.0f%%)\n",
      best_pair_rate, best_back_to_back, pair_efficiency,
      pair_tolerance * 100.0);

  // -- BENCH_tenants.json ----------------------------------------------------
  bench::BenchJson json{"tenants"};
  json.param("victim_flows", static_cast<double>(victim_flows));
  json.param("victim_packets_per_flow",
             static_cast<double>(victim_packets));
  json.param("flood_multiple", flood_multiple);
  json.param("slo_multiple_of_solo_p99", 4.0);
  json.param("trials", static_cast<double>(policy.trials));

  Json victim_row = Json::object();
  victim_row.set("config", Json::string("victim_isolation"));
  victim_row.set("chain", Json::string(victim.plan.chain.name));
  victim_row.set("workload", Json::string("uniform-vs-synflood"));
  victim_row.set("platform", Json::string("bess"));
  victim_row.set("rel_rate", Json::number(rel_rate));
  victim_row.set("tolerance_rel_rate", Json::number(rate_tolerance));
  victim_row.set("rel_p99", Json::number(rel_p99));
  victim_row.set("tolerance_rel_p99", Json::number(p99_tolerance));
  victim_row.set("rate_mpps", Json::number(hosted.victim_rate_mpps));
  victim_row.set("latency_us_p99", Json::number(hosted.victim_p99_us));
  victim_row.set("slo_us", Json::number(slo_us));
  victim_row.set("solo_p99_us", Json::number(solo.p99_us));
  victim_row.set("goodput", Json::number(hosted.victim_goodput));
  victim_row.set("offered", Json::integer(hosted_victim.offered));
  victim_row.set("admitted", Json::integer(hosted_victim.forwarded));
  victim_row.set("shed", Json::integer(hosted_victim.gate_shed));
  json.add(std::move(victim_row));

  Json flood_row = Json::object();
  flood_row.set("config", Json::string("flood"));
  flood_row.set("chain", Json::string(flood.plan.chain.name));
  flood_row.set("workload", Json::string("syn-flood"));
  flood_row.set("platform", Json::string("bess"));
  flood_row.set("gated", Json::boolean(false));
  flood_row.set("offered", Json::integer(hosted_flood.offered));
  flood_row.set("admitted", Json::integer(hosted_flood.forwarded));
  flood_row.set("shed", Json::integer(hosted_flood.gate_shed));
  flood_row.set("max_escalation",
                Json::integer(static_cast<std::uint64_t>(
                    hosted_flood.max_escalation)));
  json.add(std::move(flood_row));

  Json pair_row = Json::object();
  pair_row.set("config", Json::string("pair_efficiency"));
  pair_row.set("chain", Json::string(alpha.plan.chain.name));
  pair_row.set("workload", Json::string("uniform+uniform"));
  pair_row.set("platform", Json::string("bess"));
  pair_row.set("rel_rate", Json::number(pair_efficiency));
  pair_row.set("tolerance_rel_rate", Json::number(pair_tolerance));
  pair_row.set("rel_p99_unstable", Json::boolean(true));
  pair_row.set("rate_mpps", Json::number(best_pair_rate));
  pair_row.set("rel_rate_spread", Json::number(pair_spread.rel_spread));
  json.add(std::move(pair_row));

  json.write();
  return 0;
}
