// bench_plan — the planner held accountable (DESIGN.md §12).
//
// The profile-guided planner (runtime/planner.hpp, tools/planopt) promises
// that the DeploymentPlan it emits is at least as fast as the default flag
// configuration it replaces. This bench closes that loop on §VII-C chain 2:
//
//   profile:  one original-mode run with telemetry attached; the snapshot's
//             aggregate.per_nf is lifted into a planner Profile — the exact
//             data path planopt consumes from a --metrics-out capture.
//   default:  plan::build() of the flag-equivalent plan (runner, speedybox,
//             default batch) — what `chainsim --chain <chain2>` runs.
//   planner:  plan::build() of plan_deployment(chain2, profile).
//
// Gated metric: rel_rate = planner rate / default rate, a host-independent
// ratio (both sides slow down together on a noisy box). The committed
// baseline pins it at ~1.0 — the planner must never choose a deployment
// slower than the defaults it claims to improve on. Latency is not gated
// (same executor shape on both sides; the tail is scheduler noise).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "runtime/plan.hpp"
#include "runtime/planner.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "trace/payload_synth.hpp"

namespace speedybox::bench {
namespace {

trace::Workload make_chain2_workload(std::size_t flows,
                                     std::size_t packets_per_flow) {
  trace::Workload workload = trace::make_uniform_workload(
      flows, packets_per_flow, /*payload_size=*/192);
  trace::PayloadSynthConfig synth;
  synth.match_fraction = 0.2;
  plant_rule_contents(workload, trace::default_snort_rules(), synth);
  return workload;
}

/// One original-mode profiling run with telemetry attached; the snapshot
/// goes through the same JSON document planopt reads from --metrics-out.
plan::Profile measure_profile(const plan::ChainSpec& spec,
                              const trace::Workload& workload) {
  telemetry::Registry registry;
  plan::DeploymentPlan profiling;
  profiling.chain = spec;
  profiling.speedybox = false;  // per-NF traversal: every NF is timed
  auto built = plan::build(profiling);
  built.executor->attach_telemetry(&registry, "profile");
  built.executor->run(workload);
  return plan::Profile::from_snapshot(
      telemetry::snapshot_json(registry.snapshot()));
}

double measure_rate(const plan::DeploymentPlan& deployment,
                    const trace::Workload& workload) {
  auto built = plan::build(deployment);
  built.executor->run(workload);
  return collect_result(*built.executor, deployment.platform).rate_mpps;
}

struct BestRates {
  double default_mpps = 0.0;
  double planner_mpps = 0.0;
  double rel_rate = 0.0;
  std::vector<double> trial_ratios;  // paired per-trial ratios, for spread
};

/// Noise only ever slows a run, so each side's best across the trials is
/// the stable estimator — a paired best-of(ratio) would let one slow
/// default trial inflate rel_rate (or one slow planner trial sink it).
/// The measurement order alternates per trial to cancel ordering bias.
BestRates measure_best(const TrialPolicy& policy,
                       const plan::DeploymentPlan& defaults,
                       const plan::DeploymentPlan& planned,
                       const trace::Workload& workload) {
  BestRates best;
  for (int warm = 0; warm < policy.warmup; ++warm) {
    measure_rate(defaults, workload);
    measure_rate(planned, workload);
  }
  for (int trial = 0; trial < policy.trials; ++trial) {
    double default_mpps = 0.0;
    double planner_mpps = 0.0;
    if (trial % 2 == 0) {
      default_mpps = measure_rate(defaults, workload);
      planner_mpps = measure_rate(planned, workload);
    } else {
      planner_mpps = measure_rate(planned, workload);
      default_mpps = measure_rate(defaults, workload);
    }
    best.default_mpps = std::max(best.default_mpps, default_mpps);
    best.planner_mpps = std::max(best.planner_mpps, planner_mpps);
    best.trial_ratios.push_back(
        default_mpps > 0.0 ? planner_mpps / default_mpps : 0.0);
  }
  best.rel_rate = best.default_mpps > 0.0
                      ? best.planner_mpps / best.default_mpps
                      : 0.0;
  return best;
}

}  // namespace
}  // namespace speedybox::bench

int main(int argc, char** argv) {
  using namespace speedybox;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::size_t flows = smoke ? 48 : 64;
  const std::size_t packets_per_flow = smoke ? 100 : 400;
  bench::TrialPolicy policy;
  policy.warmup = 1;
  policy.trials = smoke ? 3 : 4;

  bench::print_header(
      "bench_plan: profile-guided plan vs default flag config "
      "(chain2_ids, uniform workload + planted Snort contents)");

  const plan::ChainSpec chain2 = plan::vii_c_chain2();
  const trace::Workload workload =
      bench::make_chain2_workload(flows, packets_per_flow);

  // The profiling pass planopt would run offline.
  const plan::Profile profile = bench::measure_profile(chain2, workload);
  std::printf("  profile (aggregate.per_nf, original-mode run):\n");
  for (const plan::NfProfile& nf : profile.per_nf) {
    std::printf("    %-14s %8llu pkts  mean %8.0f cyc  p95 %8.0f cyc\n",
                nf.nf.c_str(),
                static_cast<unsigned long long>(nf.packets),
                nf.mean_cycles, nf.p95_cycles);
  }

  // The contender: what the planner picks for a single-core-feasible
  // target. The reference: the flag defaults chainsim would run.
  plan::PlannerConfig planner_config;
  planner_config.target_mpps = 0.1;
  plan::PlanRationale rationale;
  const plan::DeploymentPlan planned =
      plan::plan_deployment(chain2, profile, planner_config, &rationale);

  plan::DeploymentPlan defaults;
  defaults.chain = chain2;

  std::printf("  planner: executor=%s batch=%zu segments=",
              plan::executor_kind_name(planned.executor),
              planned.batch_size);
  for (const plan::SegmentSpec& segment : planned.segments) {
    std::printf("[%zu%s]", segment.nf_count,
                segment.parallel ? " parallel" : "");
  }
  std::printf("  predicted %.0f cyc/pkt (%.2f Mpps single-core)\n",
              rationale.predicted_cycles_per_packet,
              rationale.predicted_single_core_mpps);

  const bench::BestRates best =
      bench::measure_best(policy, defaults, planned, workload);
  const bench::TrialAggregate spread =
      bench::aggregate_trials(best.trial_ratios);
  const double tolerance = std::max(0.15, 2.0 * spread.rel_spread);

  std::printf("  default config %8.3f Mpps\n", best.default_mpps);
  std::printf("  planner plan   %8.3f Mpps\n", best.planner_mpps);
  std::printf("  rel_rate       %8.3f  (spread %.1f%%, gate tolerance %.0f%%)\n",
              best.rel_rate, spread.rel_spread * 100.0, tolerance * 100.0);

  using telemetry::Json;
  bench::BenchJson json{"plan"};
  json.param("flows", static_cast<double>(flows));
  json.param("packets_per_flow", static_cast<double>(packets_per_flow));
  json.param("trials", static_cast<double>(policy.trials));
  json.param("target_mpps", planner_config.target_mpps);
  json.param("workload", "uniform+snort");

  Json planner_row = Json::object();
  planner_row.set("config", Json::string("planner"));
  planner_row.set("chain", Json::string(chain2.name));
  planner_row.set("workload", Json::string("uniform+snort"));
  planner_row.set("platform", Json::string("bess"));
  planner_row.set("rel_rate", Json::number(best.rel_rate));
  planner_row.set("tolerance_rel_rate", Json::number(tolerance));
  // Same executor shape on both sides — the tail would gate pure noise.
  planner_row.set("rel_p99_unstable", Json::boolean(true));
  planner_row.set("rate_mpps", Json::number(best.planner_mpps));
  planner_row.set("rel_rate_spread", Json::number(spread.rel_spread));
  planner_row.set("executor",
                  Json::string(plan::executor_kind_name(planned.executor)));
  planner_row.set("predicted_cycles_per_packet",
                  Json::number(rationale.predicted_cycles_per_packet));
  planner_row.set("segments", Json::integer(planned.segments.size()));
  json.add(std::move(planner_row));

  Json default_row = Json::object();
  default_row.set("config", Json::string("default"));
  default_row.set("chain", Json::string(chain2.name));
  default_row.set("workload", Json::string("uniform+snort"));
  default_row.set("platform", Json::string("bess"));
  default_row.set("rate_mpps", Json::number(best.default_mpps));
  default_row.set("gated", Json::boolean(false));
  json.add(std::move(default_row));

  json.write();
  return 0;
}
