#include "bench_method.hpp"

#include <algorithm>
#include <cmath>
#include <thread>

#include "util/cycle_clock.hpp"
#include "util/histogram.hpp"

namespace speedybox::bench {

TrialAggregate aggregate_trials(std::vector<double> scores) {
  TrialAggregate aggregate;
  aggregate.count = static_cast<int>(scores.size());
  if (scores.empty()) return aggregate;
  std::sort(scores.begin(), scores.end());
  aggregate.worst = scores.front();
  aggregate.best = scores.back();
  const std::size_t n = scores.size();
  aggregate.median = n % 2 == 1
                         ? scores[n / 2]
                         : (scores[n / 2 - 1] + scores[n / 2]) / 2.0;
  double sum = 0.0;
  for (const double score : scores) sum += score;
  aggregate.mean = sum / static_cast<double>(n);
  aggregate.rel_spread =
      aggregate.best > 0.0
          ? (aggregate.best - aggregate.worst) / aggregate.best
          : 0.0;
  return aggregate;
}

RateSearchResult zero_loss_max_rate(
    const std::function<double(double)>& loss_at,
    const RateSearchConfig& config) {
  RateSearchResult result;
  const double span = std::max(config.max_rate, 1e-12);
  double lo = config.min_rate;   // highest rate known to pass (once found)
  double hi = config.max_rate;   // lowest rate known to fail (once found)
  bool lo_passes = false;

  // Probe the endpoints first: if max_rate already passes, the search is
  // done in one trial; if min_rate already fails there is no zero-loss
  // rate in the bracket and min_rate is reported with its loss.
  const double hi_loss = loss_at(hi);
  ++result.iterations;
  if (hi_loss <= config.loss_tolerance) {
    result.rate = hi;
    result.loss_at_rate = hi_loss;
    result.converged = true;
    return result;
  }
  const double lo_loss = loss_at(lo);
  ++result.iterations;
  if (lo_loss > config.loss_tolerance) {
    result.rate = lo;
    result.loss_at_rate = lo_loss;
    result.converged = true;  // converged onto "nothing passes"
    return result;
  }
  lo_passes = true;
  result.rate = lo;
  result.loss_at_rate = lo_loss;

  while (result.iterations < config.max_iterations &&
         (hi - lo) > config.resolution * span) {
    const double mid = lo + (hi - lo) / 2.0;
    const double mid_loss = loss_at(mid);
    ++result.iterations;
    if (mid_loss <= config.loss_tolerance) {
      lo = mid;
      result.rate = mid;
      result.loss_at_rate = mid_loss;
    } else {
      hi = mid;
    }
  }
  result.converged = (hi - lo) <= config.resolution * span && lo_passes;
  return result;
}

std::vector<double> curve_points(double lo, double hi, int points,
                                 Spacing spacing) {
  if (hi < lo) std::swap(lo, hi);
  if (points < 2 || lo == hi) return {hi};
  if (spacing == Spacing::kGeometric && lo <= 0.0) {
    spacing = Spacing::kLinear;  // geometric needs a positive start
  }
  std::vector<double> result;
  result.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double t = static_cast<double>(i) / (points - 1);
    if (spacing == Spacing::kGeometric) {
      result.push_back(lo * std::pow(hi / lo, t));
    } else {
      result.push_back(lo + (hi - lo) * t);
    }
  }
  result.back() = hi;  // never let rounding clip the endpoint
  return result;
}

LatencySummary summarize(const util::SampleRecorder& samples) {
  LatencySummary summary;
  summary.count = samples.count();
  if (summary.count == 0) return summary;
  summary.p50 = samples.percentile(50);
  summary.p99 = samples.percentile(99);
  summary.p999 = samples.percentile(99.9);
  summary.mean = samples.mean();
  return summary;
}

telemetry::Json latency_json(const LatencySummary& summary) {
  using telemetry::Json;
  Json json = Json::object();
  json.set("p50", Json::number(summary.p50));
  json.set("p99", Json::number(summary.p99));
  json.set("p999", Json::number(summary.p999));
  json.set("mean", Json::number(summary.mean));
  json.set("count", Json::integer(summary.count));
  return json;
}

const char* git_describe() {
#ifdef SPEEDYBOX_GIT_DESCRIBE
  return SPEEDYBOX_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

telemetry::Json environment_json(std::size_t shards,
                                 std::size_t batch_size) {
  using telemetry::Json;
  Json env = Json::object();
  env.set("cpu_ghz", Json::number(util::CycleClock::frequency_hz() / 1e9));
  env.set("git_describe", Json::string(git_describe()));
  env.set("hardware_concurrency",
          Json::integer(std::thread::hardware_concurrency()));
  if (shards > 0) env.set("shards", Json::integer(shards));
  if (batch_size > 0) env.set("batch_size", Json::integer(batch_size));
  return env;
}

}  // namespace speedybox::bench
