// Table II: additional lines of code to integrate each NF into SpeedyBox.
//
// Static analysis over this repository's NF sources: the "added LOC" are
// the lines that exist only for SpeedyBox integration — the `ctx != nullptr`
// recording blocks using the Figure-2 APIs (add_header_action,
// localmat_add_SF, register_event, on_teardown). Everything else is the
// NF's core functionality.
//
// Expected shape (paper): integration is a handful of lines per NF, a small
// percentage of each NF's core LOC (Snort: 27 lines, +2.4%).
#include <cctype>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "telemetry/json.hpp"

namespace {

struct Loc {
  int core = 0;
  int added = 0;
};

bool is_code_line(const std::string& line) {
  for (const char c : line) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    if (c == '/') return false;  // comment line
    return true;
  }
  return false;  // blank
}

/// Counts recording-block lines: the `if (ctx != nullptr) {...}` regions
/// plus standalone API calls.
Loc count_file(const std::string& path) {
  Loc loc;
  std::ifstream file{path};
  if (!file) return loc;
  std::string line;
  int block_depth = 0;  // inside an `if (ctx != nullptr)` block
  while (std::getline(file, line)) {
    if (!is_code_line(line)) continue;
    const bool opens_block = line.find("ctx != nullptr") != std::string::npos;
    const bool api_line =
        line.find("ctx->") != std::string::npos ||
        line.find("localmat_add_") != std::string::npos ||
        line.find("register_event") != std::string::npos ||
        line.find("SpeedyBoxContext") != std::string::npos;
    if (opens_block) {
      ++loc.added;
      block_depth = 1;
      continue;
    }
    if (block_depth > 0) {
      for (const char c : line) {
        if (c == '{') ++block_depth;
        if (c == '}') --block_depth;
      }
      ++loc.added;
      if (block_depth <= 0) block_depth = 0;
      continue;
    }
    if (api_line) {
      ++loc.added;
      continue;
    }
    ++loc.core;
  }
  return loc;
}

}  // namespace

int main(int argc, char** argv) {
  std::string src_dir = SPEEDYBOX_NF_SOURCE_DIR;
  if (argc > 1) src_dir = argv[1];

  struct Entry {
    const char* name;
    std::vector<const char*> files;
  };
  const std::vector<Entry> entries{
      {"Snort", {"snort_ids.cpp", "snort_rule.cpp", "aho_corasick.cpp"}},
      {"Maglev", {"maglev_lb.cpp", "maglev_hash.cpp"}},
      {"IPFilter", {"ip_filter.cpp"}},
      {"Monitor", {"monitor.cpp"}},
      {"MazuNAT", {"mazu_nat.cpp"}},
      {"DoSPrevention", {"dos_prevention.cpp"}},
      {"Gateway", {"gateway.cpp"}},
      {"VPN", {"vpn_gateway.cpp"}},
  };

  std::printf("\n================================================================\n");
  std::printf("Table II: NF core LOC vs LOC added for SpeedyBox integration\n");
  std::printf("(counted from this repository's sources under %s)\n",
              src_dir.c_str());
  std::printf("================================================================\n");
  std::printf("%-15s %18s %12s %10s\n", "Network Function", "Core LOC",
              "Added LOC", "overhead");
  using speedybox::telemetry::Json;
  Json root = Json::object();
  root.set("bench", Json::string("table2_loc"));
  Json rows = Json::array();
  for (const Entry& entry : entries) {
    Loc total;
    for (const char* file : entry.files) {
      const Loc loc = count_file(src_dir + "/" + file);
      total.core += loc.core;
      total.added += loc.added;
    }
    const double overhead_pct =
        total.core > 0
            ? 100.0 * total.added / static_cast<double>(total.core)
            : 0.0;
    Json row = Json::object();
    row.set("nf", Json::string(entry.name));
    row.set("core_loc", Json::integer(static_cast<std::uint64_t>(total.core)));
    row.set("added_loc",
            Json::integer(static_cast<std::uint64_t>(total.added)));
    row.set("overhead_pct", Json::number(overhead_pct));
    rows.push(std::move(row));
    std::printf("%-15s %18d %12d %9.1f%%\n", entry.name, total.core,
                total.added, overhead_pct);
  }
  root.set("configs", std::move(rows));
  const std::string text = root.dump();
  if (std::FILE* file = std::fopen("BENCH_table2_loc.json", "w")) {
    std::fwrite(text.data(), 1, text.size(), file);
    std::fputc('\n', file);
    std::fclose(file);
    std::fprintf(stderr, "wrote BENCH_table2_loc.json\n");
  }
  std::printf("\n");
  return 0;
}
