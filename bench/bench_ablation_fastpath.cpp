// Micro-ablations of the fast-path design choices DESIGN.md calls out,
// using google-benchmark:
//
//   * BytePatch (one masked sweep) vs field-by-field modify application;
//   * classifier cost (parse + validate + FID assignment);
//   * Global MAT fast-path dispatch, with and without registered events
//     (cost of the per-packet event check);
//   * consolidation cost (the one-time per-flow control-plane work);
//   * packet parse and checksum-validation primitives.
#include <benchmark/benchmark.h>

#include "core/classifier.hpp"
#include "core/global_mat.hpp"
#include "net/checksum.hpp"
#include "net/fields.hpp"
#include "net/packet_builder.hpp"

namespace speedybox {
namespace {

net::FiveTuple bench_tuple(std::uint32_t id = 1) {
  net::FiveTuple tuple;
  tuple.src_ip = net::Ipv4Addr{0xC0A80000u + id};
  tuple.dst_ip = net::Ipv4Addr{10, 1, 0, 1};
  tuple.src_port = 22222;
  tuple.dst_port = 80;
  tuple.proto = static_cast<std::uint8_t>(net::IpProto::kTcp);
  return tuple;
}

std::vector<core::HeaderAction> nat_lb_actions() {
  return {
      core::HeaderAction::modify(net::HeaderField::kSrcIp, 0x0A000001),
      core::HeaderAction::modify(net::HeaderField::kSrcPort, 33333),
      core::HeaderAction::modify(net::HeaderField::kDstIp, 0x0A020010),
      core::HeaderAction::modify(net::HeaderField::kDstPort, 8000),
  };
}

void BM_ApplyFieldByField(benchmark::State& state) {
  net::Packet packet = net::make_tcp_packet(bench_tuple(), "payload");
  const auto actions = nat_lb_actions();
  for (auto _ : state) {
    for (const auto& action : actions) {
      core::apply_action_baseline(action, packet);
    }
    benchmark::DoNotOptimize(packet.bytes().data());
  }
}
BENCHMARK(BM_ApplyFieldByField);

void BM_ApplyBytePatch(benchmark::State& state) {
  net::Packet packet = net::make_tcp_packet(bench_tuple(), "payload");
  const core::ConsolidatedAction action = core::consolidate(nat_lb_actions());
  core::BytePatch patch;
  for (auto _ : state) {
    core::apply_consolidated(action, patch, packet);
    benchmark::DoNotOptimize(packet.bytes().data());
  }
}
BENCHMARK(BM_ApplyBytePatch);

void BM_ParsePacket(benchmark::State& state) {
  const net::Packet packet = net::make_tcp_packet(bench_tuple(), "payload");
  for (auto _ : state) {
    auto parsed = net::parse_packet(packet);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_ParsePacket);

void BM_ValidateIpv4Checksum(benchmark::State& state) {
  const net::Packet packet = net::make_tcp_packet(bench_tuple(), "payload");
  const auto parsed = net::parse_packet(packet);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net::verify_ipv4_checksum(packet, parsed->l3_offset));
  }
}
BENCHMARK(BM_ValidateIpv4Checksum);

void BM_FiveTupleHash(benchmark::State& state) {
  const net::FiveTuple tuple = bench_tuple();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tuple.hash());
  }
}
BENCHMARK(BM_FiveTupleHash);

void BM_ClassifierSubsequent(benchmark::State& state) {
  core::PacketClassifier classifier;
  net::Packet first = net::make_tcp_packet(bench_tuple(), "x");
  classifier.classify(first);
  net::Packet packet = net::make_tcp_packet(bench_tuple(), "x");
  for (auto _ : state) {
    auto result = classifier.classify(packet);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ClassifierSubsequent);

/// Fast-path dispatch with `events` registered hair-trigger-free events
/// (arg 0 or 4): measures the per-packet cost of the event check.
void BM_GlobalMatProcess(benchmark::State& state) {
  core::LocalMat nat{"nat", 0};
  core::GlobalMat mat;
  mat.set_chain({&nat});
  const std::uint32_t fid = 7;
  for (const auto& action : nat_lb_actions()) {
    nat.add_header_action(fid, action);
  }
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    core::EventRegistration event;
    event.fid = fid;
    event.nf_index = 0;
    event.name = "never";
    event.condition = [] { return false; };
    event.update = [] { return core::EventUpdate{}; };
    event.one_shot = false;
    mat.event_table().register_event(std::move(event));
  }
  mat.consolidate_flow(fid);

  net::Packet packet = net::make_tcp_packet(bench_tuple(), "payload");
  packet.set_fid(fid);
  for (auto _ : state) {
    auto result = mat.process(packet);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_GlobalMatProcess)->Arg(0)->Arg(1)->Arg(4);

void BM_ConsolidateFlow(benchmark::State& state) {
  core::LocalMat nat{"nat", 0};
  core::LocalMat monitor{"monitor", 1};
  core::GlobalMat mat;
  mat.set_chain({&nat, &monitor});
  const std::uint32_t fid = 9;
  for (const auto& action : nat_lb_actions()) {
    nat.add_header_action(fid, action);
  }
  monitor.add_state_function(
      fid, core::StateFunction{
               [](net::Packet&, const net::ParsedPacket&) {},
               core::PayloadAccess::kIgnore, "count"});
  for (auto _ : state) {
    mat.consolidate_flow(fid);
  }
}
BENCHMARK(BM_ConsolidateFlow);

}  // namespace
}  // namespace speedybox

BENCHMARK_MAIN();
