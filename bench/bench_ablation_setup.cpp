// Control-plane ablation (beyond the paper): what a new flow costs.
//
// SpeedyBox's per-packet wins are bought with per-flow setup work —
// recording pass + consolidation — so flow-setup throughput bounds how
// churn-heavy a deployment can be. This bench reports:
//   * consolidation cost vs chain length (the Global MAT's own work);
//   * full setup cost (recording traversal + consolidation) vs chain
//     length, and the flow-setup rate it implies;
//   * the break-even flow length: how many subsequent packets repay the
//     setup premium relative to the original path.
#include "bench_util.hpp"

namespace speedybox::bench {
namespace {

void run() {
  print_header("Ablation: per-flow setup cost (recording + consolidation)");
  BenchJson json{"ablation_setup"};
  json.param("flows", 400);
  json.param("packets_per_flow", 5);
  std::printf("%-7s %16s %16s %16s %14s %12s\n", "Chain", "Orig-init cyc",
              "SBox-init cyc", "SBox-sub cyc", "setup rate",
              "break-even");

  for (std::size_t n : {1, 2, 4, 6, 8}) {
    const ChainFactory factory = [n] {
      auto chain = std::make_unique<runtime::ServiceChain>();
      for (std::size_t i = 0; i < n; ++i) {
        chain->emplace_nf<nf::IpFilter>(nonmatching_acl(),
                                        "f" + std::to_string(i));
      }
      return chain;
    };
    // Churn-heavy workload: many short flows.
    const trace::Workload workload =
        trace::make_uniform_workload(400, 5, 32);
    const ConfigResult original = run_config(
        factory, platform::PlatformKind::kBess, false, workload);
    const ConfigResult speedy = run_config(
        factory, platform::PlatformKind::kBess, true, workload);

    // Break-even: packets after which the setup premium is repaid by the
    // per-packet saving.
    const double setup_premium =
        speedy.init_cycles - original.init_cycles;
    const double per_packet_saving =
        original.sub_cycles - speedy.sub_cycles;
    const double break_even =
        per_packet_saving > 0 ? setup_premium / per_packet_saving : -1;
    const double setup_rate_kfps =
        util::CycleClock::frequency_hz() / speedy.init_cycles / 1e3;

    for (const auto& [mode, result] :
         {std::pair<const char*, const ConfigResult&>{"bess/original",
                                                      original},
          {"bess/speedybox", speedy}}) {
      telemetry::Json row = config_row(mode, result);
      row.set("chain_length", telemetry::Json::integer(n));
      row.set("setup_rate_kfps", telemetry::Json::number(setup_rate_kfps));
      row.set("break_even_packets", telemetry::Json::number(break_even));
      json.add(std::move(row));
    }

    std::printf("%-7zu %16.0f %16.0f %16.0f %11.0f k/s ", n,
                original.init_cycles, speedy.init_cycles, speedy.sub_cycles,
                setup_rate_kfps);
    if (break_even >= 0) {
      std::printf("%9.1f pkts\n", break_even);
    } else {
      std::printf("%12s\n", "n/a");
    }
  }
  json.write();
  std::printf(
      "\n(setup rate = new flows/s one manager core can consolidate;\n"
      " break-even = flow length beyond which SpeedyBox is a net win on\n"
      " platform CPU cycles)\n\n");
}

}  // namespace
}  // namespace speedybox::bench

int main() {
  speedybox::bench::run();
  return 0;
}
