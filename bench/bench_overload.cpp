// Overload sweep: offered load at 0.5x..4x the data path's capacity, under
// each drop policy (DESIGN.md §9).
//
// The virtual ingress queue adds the modeled queueing delay to every
// admitted packet's latency, so an unbounded queue would show unbounded
// p99; the watermark gate bounds the queue, and the policies differ in WHO
// pays for that bound:
//
//   tail-drop       every arrival sheds while pressured — throughput holds
//                   but every surviving flow has holes.
//   per-flow-fair   a hash band of flows sheds entirely — fewer flows, each
//                   complete (goodput).
//   slo-early-drop  flows whose consolidated rule already says "drop" shed
//                   at ingress for near-zero cycles, before healthy traffic
//                   is touched.
//
// The chain is the paper's §VII-C inspection chain with a MATCHING ACL
// prefix, so a fraction of flows consolidate to a pure-drop rule and give
// slo-early-drop something to shed. Every cell checks the conservation
// invariant exactly:
//
//   offered == admitted + shed,  admitted == delivered + drops + faulted
//
// Output: the printed table plus BENCH_overload.json (p50/p99 latency and
// goodput per policy per multiplier).
#include "runtime/plan.hpp"
#include "trace/payload_synth.hpp"

#include "bench_util.hpp"

namespace speedybox::bench {
namespace {

struct Cell {
  double multiplier;
  runtime::DropPolicy policy;
  ConfigResult result;
  double goodput = 0;  // delivered / offered
};

bool check_conservation(const Cell& cell) {
  const runtime::RunStats& stats = cell.result.stats;
  const runtime::OverloadStats& overload = stats.overload;
  const bool arrivals_ok =
      overload.offered == overload.admitted + overload.shed_total();
  const bool admitted_ok = overload.admitted == stats.packets;
  // delivered = packets - drops - faulted; all three are counted
  // disjointly, so >= 0 is implied if the counters are consistent.
  const bool disjoint_ok = stats.packets >= stats.drops + overload.faulted;
  if (arrivals_ok && admitted_ok && disjoint_ok) return true;
  std::fprintf(stderr,
               "CONSERVATION VIOLATION at %.1fx/%s: offered=%llu "
               "admitted=%llu shed=%llu packets=%llu drops=%llu "
               "faulted=%llu\n",
               cell.multiplier,
               std::string(drop_policy_name(cell.policy)).c_str(),
               static_cast<unsigned long long>(overload.offered),
               static_cast<unsigned long long>(overload.admitted),
               static_cast<unsigned long long>(overload.shed_total()),
               static_cast<unsigned long long>(stats.packets),
               static_cast<unsigned long long>(stats.drops),
               static_cast<unsigned long long>(overload.faulted));
  return false;
}

int run() {
  print_header("Overload sweep — admission control & bounded-queue "
               "backpressure (DESIGN.md §9)");

  trace::DatacenterWorkloadConfig workload_config;
  workload_config.flow_count = 150;
  workload_config.payload_size = 64;
  workload_config.flow_size_mu = 3.0;
  workload_config.seed = 20190712;
  trace::Workload workload = make_datacenter_workload(workload_config);
  trace::PayloadSynthConfig synth;
  synth.match_fraction = 0.2;
  plant_rule_contents(workload, trace::default_snort_rules(), synth);

  // §VII-C inspection chain whose ACL MATCHES part of the workload (dst
  // 10.1.3/24, ahead of the usual non-matching blacklist): matched flows
  // consolidate to early-drop rules — the slo-early-drop shed population.
  const ChainFactory chain = [] {
    return plan::build_chain(plan::ChainSpec::parse(
        "ipfilter:drop-dst-prefix=10.1.3.0/24:blacklist=16,"
        "snort,monitor:heavy",
        "overload-chain"));
  };

  BenchJson json{"overload"};
  json.param("workload", "datacenter");
  json.param("flows", static_cast<double>(workload_config.flow_count));
  json.param("packets", static_cast<double>(workload.packet_count()));
  json.param("chain", "ipfilter(drop 10.1.3/24)+snort+monitor");
  json.param("queue_capacity", 512.0);

  const double multipliers[] = {0.5, 1.0, 2.0, 4.0};
  const runtime::DropPolicy policies[] = {
      runtime::DropPolicy::kTailDrop,
      runtime::DropPolicy::kPerFlowFair,
      runtime::DropPolicy::kSloEarlyDrop,
  };

  // Warmup + best-of-2 per cell (bench_method::TrialPolicy): the latency
  // percentiles in each row come from a warm run, never the cold first
  // trial. Counters (admitted/shed splits) are deterministic across
  // trials — only the timing-derived columns needed the discipline.
  const TrialPolicy policy_trials{/*warmup=*/1, /*trials=*/2};

  // Baseline: overload control OFF — the zero-cost default path the sweep
  // rows are compared against.
  const ConfigResult baseline =
      run_config_best(policy_trials, chain, platform::PlatformKind::kBess,
                      true, workload);
  std::printf("baseline (overload off): packets=%llu lat p50/p99 = "
              "%.3f/%.3f us\n\n",
              static_cast<unsigned long long>(baseline.stats.packets),
              baseline.stats.latency_us_subsequent.percentile(50),
              baseline.stats.latency_us_subsequent.percentile(99));
  json.config("baseline/off", baseline);

  std::printf("%-5s %-15s %10s %10s %12s %12s %9s  %s\n", "load", "policy",
              "admitted", "shed", "lat_p50_us", "lat_p99_us", "goodput",
              "(shed adm/wm/early)");
  bool conserved = true;
  for (const double multiplier : multipliers) {
    for (const runtime::DropPolicy policy : policies) {
      runtime::OverloadConfig overload;
      overload.enabled = true;
      overload.offered_load = multiplier;
      overload.policy = policy;
      overload.queue_capacity = 512;

      Cell cell{multiplier, policy,
                run_config_best(policy_trials, chain,
                                platform::PlatformKind::kBess, true,
                                workload, false, net::kDefaultBatchSize,
                                overload)};
      const runtime::RunStats& stats = cell.result.stats;
      const runtime::OverloadStats& counters = stats.overload;
      const std::uint64_t delivered =
          stats.packets - stats.drops - counters.faulted;
      cell.goodput = counters.offered > 0
                         ? static_cast<double>(delivered) /
                               static_cast<double>(counters.offered)
                         : 0.0;
      conserved = check_conservation(cell) && conserved;

      const double p50 = stats.latency_us_subsequent.count() > 0
                             ? stats.latency_us_subsequent.percentile(50)
                             : 0.0;
      const double p99 = stats.latency_us_subsequent.count() > 0
                             ? stats.latency_us_subsequent.percentile(99)
                             : 0.0;
      const std::string policy_name{drop_policy_name(policy)};
      std::printf("%-5.1f %-15s %10llu %10llu %12.3f %12.3f %8.1f%%  "
                  "(%llu/%llu/%llu)\n",
                  multiplier, policy_name.c_str(),
                  static_cast<unsigned long long>(counters.admitted),
                  static_cast<unsigned long long>(counters.shed_total()),
                  p50, p99, cell.goodput * 100.0,
                  static_cast<unsigned long long>(counters.shed_admission),
                  static_cast<unsigned long long>(counters.shed_watermark),
                  static_cast<unsigned long long>(
                      counters.shed_early_drop));

      telemetry::Json row = config_row(
          "x" + std::to_string(multiplier).substr(0, 3) + "/" + policy_name,
          cell.result);
      row.set("offered_multiplier", telemetry::Json::number(multiplier));
      row.set("policy", telemetry::Json::string(policy_name));
      row.set("goodput", telemetry::Json::number(cell.goodput));
      row.set("shed_admission",
              telemetry::Json::integer(counters.shed_admission));
      row.set("shed_watermark",
              telemetry::Json::integer(counters.shed_watermark));
      row.set("shed_early_drop",
              telemetry::Json::integer(counters.shed_early_drop));
      row.set("degraded_flows",
              telemetry::Json::integer(counters.degraded_flows));
      json.add(std::move(row));
    }
  }
  json.write();
  std::printf("\nconservation (offered == admitted + shed, admitted == "
              "delivered + drops + faulted): %s\n",
              conserved ? "OK" : "VIOLATED");
  return conserved ? 0 : 1;
}

}  // namespace
}  // namespace speedybox::bench

int main() { return speedybox::bench::run(); }
