// Autoscaling sweep (DESIGN.md §10): the elastic control plane against a
// step load and a calm ramp-down, with hard gates instead of eyeballed
// shapes.
//
//   step   1 shard, then a surge of new flows (slow-path recording storms
//          the latency windows) → the controller scales up toward
//          --max-shards. GATE: the windowed p99 recovers below the SLO
//          within a bounded packet budget after the last scale-up — which
//          is only possible if migrated flows land on the consolidated
//          fast path (re-recording them would keep every window slow).
//   ramp   4 shards under steady warm traffic and a generous SLO → the
//          controller scales down to --min-shards. GATE: zero packets
//          shed or dropped across every migration, and the retired
//          replicas hold no flows.
//
// Both runs check the PR-4 conservation identities exactly
// (offered == admitted + shed, admitted == delivered + drops + faulted).
// The SLO is self-calibrated from a static run (geometric mean of the
// fast-path p99 and the slow-path median), so the gates hold on any
// machine. Output: the printed series plus BENCH_autoscale.json.
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "control/controller.hpp"
#include "net/packet_builder.hpp"
#include "runtime/plan.hpp"
#include "runtime/sharded_runtime.hpp"
#include "telemetry/metrics.hpp"
#include "util/histogram.hpp"

#include "bench_util.hpp"

namespace speedybox::bench {
namespace {

constexpr std::uint64_t kWindow = 512;       // control-loop cadence
constexpr std::size_t kMaxShards = 4;
constexpr std::size_t kBudgetWindows = 6;    // recovery budget (windows)
/// Rings sized past the longest trace: the dispatcher never blocks or
/// watermark-sheds on the host's real dispatcher/worker speed ratio, so
/// every series and gate below is machine-independent.
constexpr std::size_t kRingCapacity = 16384;

std::unique_ptr<runtime::ServiceChain> make_chain() {
  return plan::build_chain(plan::vii_c_chain1());
}

net::FiveTuple flow_tuple(std::uint32_t id) {
  net::FiveTuple tuple;
  tuple.src_ip = net::Ipv4Addr{0xC0A80000u + id + 2};  // 192.168/16 → NAT
  tuple.dst_ip = net::Ipv4Addr{10, 1, 0, 1};
  tuple.src_port = static_cast<std::uint16_t>(20000 + (id % 40000));
  tuple.dst_port = 80;
  tuple.proto = static_cast<std::uint8_t>(net::IpProto::kTcp);
  return tuple;
}

/// Step trace: `batches` windows each START `flows_per_batch` new flows
/// (their initial packets pay the recording slow path), padded to kWindow
/// with subsequent traffic of the already-started flows; then
/// `steady_windows` windows of pure subsequent traffic — the calm phase
/// the recovery gate measures.
std::vector<net::Packet> make_step_trace(std::size_t batches,
                                         std::size_t flows_per_batch,
                                         std::size_t steady_windows) {
  std::vector<net::Packet> packets;
  std::uint32_t started = 0;
  std::uint32_t next_subsequent = 0;
  const auto pad_subsequent = [&](std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      packets.push_back(net::make_tcp_packet(
          flow_tuple(next_subsequent++ % started), "steady"));
    }
  };
  for (std::size_t b = 0; b < batches; ++b) {
    for (std::size_t f = 0; f < flows_per_batch; ++f) {
      packets.push_back(
          net::make_tcp_packet(flow_tuple(started++), "first"));
    }
    pad_subsequent(kWindow - flows_per_batch);
  }
  pad_subsequent(steady_windows * kWindow);
  return packets;
}

/// Windowed latency probe: the same cumulative-histogram delta the
/// controller computes, kept on separate baselines so sampling does not
/// disturb the control loop.
class WindowProbe {
 public:
  explicit WindowProbe(telemetry::Registry& registry)
      : registry_(&registry),
        prev_(static_cast<std::size_t>(
                  util::LogHistogram::raw_bucket_count()),
              0) {}

  struct Window {
    std::uint64_t packets = 0;
    double p99_us = 0.0;
  };

  Window sample() {
    const telemetry::ShardSnapshot total =
        registry_->snapshot().aggregate();
    std::vector<std::uint64_t> buckets(prev_.size(), 0);
    double sum = 0.0;
    for (const auto& [name, hist] : total.histograms) {
      if (name != "fastpath_cycles" && name != "slowpath_cycles") continue;
      const auto& counts = hist.raw_bucket_counts();
      for (std::size_t i = 0; i < counts.size() && i < buckets.size();
           ++i) {
        buckets[i] += counts[i];
      }
      sum += hist.sum();
    }
    Window window;
    std::vector<std::uint64_t> delta = buckets;
    double delta_sum = sum;
    for (std::size_t i = 0; i < delta.size(); ++i) {
      delta[i] -= prev_[i];
      window.packets += delta[i];
    }
    delta_sum -= prev_sum_;
    if (window.packets > 0) {
      const util::LogHistogram hist = util::LogHistogram::from_raw(
          delta.data(), static_cast<int>(delta.size()), delta_sum);
      window.p99_us = util::CycleClock::to_us(
          static_cast<std::uint64_t>(hist.percentile(99.0)));
    }
    prev_ = std::move(buckets);
    prev_sum_ = sum;
    return window;
  }

 private:
  telemetry::Registry* registry_;
  std::vector<std::uint64_t> prev_;
  double prev_sum_ = 0.0;
};

/// SLO calibration: a static single-shard run over the step trace. The
/// gateable SLO sits between the fast-path p99 and the slow-path median
/// (geometric mean), so surge windows breach it and warm windows meet it
/// on any machine.
struct Calibration {
  double fast_p99_us = 0.0;
  double slow_p50_us = 0.0;
  double slo_us = 0.0;
};

Calibration calibrate_once(const std::vector<net::Packet>& packets) {
  telemetry::Registry registry;
  auto prototype = make_chain();
  runtime::ShardedRuntime runtime{
      *prototype, 1, {platform::PlatformKind::kBess, true, false},
      kRingCapacity, &registry, "calib/"};
  runtime.run_packets(packets);
  const telemetry::ShardSnapshot total = registry.snapshot().aggregate();
  Calibration calib;
  for (const auto& [name, hist] : total.histograms) {
    if (name == "fastpath_cycles" && hist.count() > 0) {
      calib.fast_p99_us = util::CycleClock::to_us(
          static_cast<std::uint64_t>(hist.percentile(99.0)));
    } else if (name == "slowpath_cycles" && hist.count() > 0) {
      calib.slow_p50_us = util::CycleClock::to_us(
          static_cast<std::uint64_t>(hist.percentile(50.0)));
    }
  }
  calib.slo_us = std::sqrt(calib.fast_p99_us * calib.slow_p50_us);
  return calib;
}

Calibration calibrate(const std::vector<net::Packet>& packets) {
  // Warmup + best-of-2 (bench_method::TrialPolicy): a cold first run
  // inflates the fast-path p99 and with it the derived SLO, making the
  // surge gates flaky. Noise only ever adds cycles, so the cleanest
  // calibration is the one with the LOWEST fast-path p99.
  const TrialPolicy policy{/*warmup=*/1, /*trials=*/2};
  return best_of<Calibration>(
      policy, [&] { return calibrate_once(packets); },
      [](const Calibration& calib) { return -calib.fast_p99_us; });
}

control::AutoscaleConfig policy_config(double slo_us, std::size_t min_shards,
                                       std::size_t max_shards) {
  control::AutoscaleConfig config;
  config.slo_us = slo_us;
  config.min_shards = min_shards;
  config.max_shards = max_shards;
  config.interval_packets = kWindow;
  config.up_streak = 1;
  config.down_streak = 2;
  config.cooldown_windows = 1;
  // Latency-only policy: the queue/admission escalations depend on the
  // host's real dispatcher/worker speed ratio, which would make the gates
  // machine-dependent.
  config.occupancy_high = 2.0;
  config.admit_low = 0.0;
  return config;
}

bool check_conservation(const char* scenario,
                        const runtime::RunStats& stats) {
  const runtime::OverloadStats& overload = stats.overload;
  const bool arrivals_ok =
      overload.offered == overload.admitted + overload.shed_total();
  const bool admitted_ok =
      overload.offered == 0 || overload.admitted == stats.packets;
  const bool disjoint_ok = stats.packets >= stats.drops + overload.faulted;
  if (arrivals_ok && admitted_ok && disjoint_ok) return true;
  std::fprintf(stderr,
               "CONSERVATION VIOLATION (%s): offered=%llu admitted=%llu "
               "shed=%llu packets=%llu drops=%llu faulted=%llu\n",
               scenario,
               static_cast<unsigned long long>(overload.offered),
               static_cast<unsigned long long>(overload.admitted),
               static_cast<unsigned long long>(overload.shed_total()),
               static_cast<unsigned long long>(stats.packets),
               static_cast<unsigned long long>(stats.drops),
               static_cast<unsigned long long>(overload.faulted));
  return false;
}

struct SeriesPoint {
  std::uint64_t pushed = 0;
  std::size_t active_shards = 0;
  WindowProbe::Window window;
};

/// Run one scenario: controller-driven autoscaling with a window probe
/// riding the same scale hook (probe first, tick second).
struct ScenarioResult {
  runtime::ShardedRunResult run;
  std::vector<SeriesPoint> series;
  std::vector<control::ReshardReport> events;
  std::size_t final_active = 0;
  std::vector<std::size_t> leftover_flows;  // per retired shard
};

ScenarioResult run_scenario(const std::vector<net::Packet>& packets,
                            std::size_t start_shards,
                            const control::AutoscaleConfig& config,
                            bool overload_on) {
  telemetry::Registry registry;
  auto prototype = make_chain();
  runtime::ShardedRuntime runtime{
      *prototype, start_shards,
      {platform::PlatformKind::kBess, true, false}, kRingCapacity,
      &registry, "rt/"};
  if (overload_on) {
    // Overload machinery armed but balanced (arrivals at exactly the
    // drain rate, no degradation): the offered/admitted/shed counters are
    // live — so the conservation gates check real bookkeeping — while
    // shedding stays deterministically zero.
    runtime::OverloadConfig overload;
    overload.enabled = true;
    overload.offered_load = 1.0;
    overload.queue_capacity = 1024;
    overload.degrade_after = 0;
    runtime.set_overload_policy(overload);
  }
  control::Controller controller{config, registry};
  control::require_migratable(runtime.shard_chain(0));
  ScenarioResult result;
  WindowProbe probe{registry};
  runtime.set_scale_hook(
      [&](runtime::ShardedRuntime& rt) {
        // Drain in-flight packets so every sample is an exact
        // `interval_packets`-sized window regardless of how far the
        // dispatcher has run ahead of the workers on this host.
        rt.quiesce();
        SeriesPoint point;
        point.pushed = rt.pushed();
        point.window = probe.sample();
        controller.tick(rt);
        point.active_shards = rt.active_shard_count();
        result.series.push_back(point);
      },
      config.interval_packets);
  result.run = runtime.run_packets(packets);
  result.events = controller.scale_events();
  result.final_active = runtime.active_shard_count();
  for (std::size_t s = result.final_active; s < runtime.shard_count();
       ++s) {
    result.leftover_flows.push_back(
        runtime.shard_chain(s).classifier().active_tuples().size());
  }
  return result;
}

void print_series(const ScenarioResult& result) {
  std::printf("%10s %8s %10s %12s\n", "pushed", "shards", "win_pkts",
              "win_p99_us");
  for (const SeriesPoint& point : result.series) {
    std::printf("%10llu %8zu %10llu %12.3f\n",
                static_cast<unsigned long long>(point.pushed),
                point.active_shards,
                static_cast<unsigned long long>(point.window.packets),
                point.window.p99_us);
  }
}

telemetry::Json series_json(const ScenarioResult& result) {
  telemetry::Json series = telemetry::Json::array();
  for (const SeriesPoint& point : result.series) {
    telemetry::Json row = telemetry::Json::object();
    row.set("pushed", telemetry::Json::integer(point.pushed));
    row.set("active_shards",
            telemetry::Json::integer(point.active_shards));
    row.set("window_packets",
            telemetry::Json::integer(point.window.packets));
    row.set("window_p99_us", telemetry::Json::number(point.window.p99_us));
    series.push(std::move(row));
  }
  return series;
}

int run() {
  print_header("Autoscale sweep — elastic control plane, step load + "
               "ramp-down (DESIGN.md §10)");

  const std::vector<net::Packet> step_trace =
      make_step_trace(/*batches=*/6, /*flows_per_batch=*/32,
                      /*steady_windows=*/16);
  const Calibration calib = calibrate(step_trace);
  std::printf("calibration: fastpath p99 = %.3f us, slowpath p50 = %.3f "
              "us -> SLO = %.3f us\n\n",
              calib.fast_p99_us, calib.slow_p50_us, calib.slo_us);
  bool ok = true;
  if (!(calib.fast_p99_us < calib.slo_us &&
        calib.slo_us < calib.slow_p50_us)) {
    std::fprintf(stderr,
                 "GATE FAILED: calibration cannot separate fast and slow "
                 "path (fast p99 %.3f, slow p50 %.3f)\n",
                 calib.fast_p99_us, calib.slow_p50_us);
    ok = false;
  }

  BenchJson json{"autoscale"};
  json.param("window_packets", static_cast<double>(kWindow));
  json.param("max_shards", static_cast<double>(kMaxShards));
  json.param("slo_us", calib.slo_us);
  json.param("recovery_budget_packets",
             static_cast<double>(kBudgetWindows * kWindow));
  json.param("chain", "nat+maglev+monitor+ipfilter");

  // --- Step load: surge of new flows, scale up, recover under the SLO ---
  std::printf("step load: %zu packets, surge of 192 flows over 6 windows\n",
              step_trace.size());
  const ScenarioResult step = run_scenario(
      step_trace, 1, policy_config(calib.slo_us, 1, kMaxShards),
      /*overload_on=*/true);
  print_series(step);

  std::size_t scale_ups = 0;
  std::uint64_t migrated = 0;
  std::size_t last_up_tick = 0;
  for (const control::ReshardReport& event : step.events) {
    migrated += event.migrated_flows;
    if (event.to_shards > event.from_shards) ++scale_ups;
  }
  for (std::size_t i = 0; i < step.series.size(); ++i) {
    if (i > 0 &&
        step.series[i].active_shards > step.series[i - 1].active_shards) {
      last_up_tick = i;
    }
  }
  if (scale_ups == 0 || migrated == 0) {
    std::fprintf(stderr,
                 "GATE FAILED: step load produced no scale-up/migration "
                 "(scale_ups=%zu migrated=%llu)\n",
                 scale_ups, static_cast<unsigned long long>(migrated));
    ok = false;
  }
  // Recovery: within the budget after the last scale-up, a non-empty
  // window meets the SLO — and the trace ends meeting it.
  std::size_t recovered_tick = 0;
  bool recovered = false;
  for (std::size_t i = last_up_tick + 1;
       i < step.series.size() && i <= last_up_tick + kBudgetWindows; ++i) {
    if (step.series[i].window.packets > 0 &&
        step.series[i].window.p99_us <= calib.slo_us) {
      recovered = true;
      recovered_tick = i;
      break;
    }
  }
  double final_p99 = 0.0;
  for (const SeriesPoint& point : step.series) {
    if (point.window.packets > 0) final_p99 = point.window.p99_us;
  }
  if (!recovered || final_p99 > calib.slo_us) {
    std::fprintf(stderr,
                 "GATE FAILED: p99 did not recover below the SLO within "
                 "%zu windows of the last scale-up (final window p99 "
                 "%.3f us, slo %.3f us)\n",
                 kBudgetWindows, final_p99, calib.slo_us);
    ok = false;
  }
  ok = check_conservation("step", step.run.stats) && ok;
  std::printf("step: scale_ups=%zu migrated_flows=%llu recovered at tick "
              "%zu/%zu (budget %zu), final p99 %.3f us vs slo %.3f us\n\n",
              scale_ups, static_cast<unsigned long long>(migrated),
              recovered_tick, last_up_tick, kBudgetWindows, final_p99,
              calib.slo_us);

  telemetry::Json step_row = telemetry::Json::object();
  step_row.set("config", telemetry::Json::string("step"));
  step_row.set("scale_ups", telemetry::Json::integer(scale_ups));
  step_row.set("migrated_flows", telemetry::Json::integer(migrated));
  step_row.set("final_shards", telemetry::Json::integer(step.final_active));
  step_row.set("final_window_p99_us", telemetry::Json::number(final_p99));
  step_row.set("recovered", telemetry::Json::boolean(recovered));
  step_row.set("packets", telemetry::Json::integer(step.run.stats.packets));
  step_row.set("drops", telemetry::Json::integer(step.run.stats.drops));
  step_row.set("series", series_json(step));
  json.add(std::move(step_row));

  // --- Ramp-down: calm traffic at 4 shards, scale to 1, lose nothing ---
  const std::vector<net::Packet> ramp_trace =
      make_step_trace(/*batches=*/2, /*flows_per_batch=*/48,
                      /*steady_windows=*/22);
  std::printf("ramp-down: %zu packets, steady warm traffic from 4 shards\n",
              ramp_trace.size());
  const ScenarioResult ramp = run_scenario(
      ramp_trace, kMaxShards, policy_config(1e9, 1, kMaxShards),
      /*overload_on=*/true);
  print_series(ramp);

  std::size_t scale_downs = 0;
  std::uint64_t ramp_migrated = 0;
  for (const control::ReshardReport& event : ramp.events) {
    ramp_migrated += event.migrated_flows;
    if (event.to_shards < event.from_shards) ++scale_downs;
  }
  if (ramp.final_active != 1 || scale_downs != kMaxShards - 1) {
    std::fprintf(stderr,
                 "GATE FAILED: ramp did not settle at min shards "
                 "(final=%zu scale_downs=%zu)\n",
                 ramp.final_active, scale_downs);
    ok = false;
  }
  // Scale-down must shed nothing: every pushed packet is delivered.
  const runtime::RunStats& ramp_stats = ramp.run.stats;
  if (ramp_stats.packets != ramp_trace.size() || ramp_stats.drops != 0 ||
      ramp_stats.overload.shed_total() != 0) {
    std::fprintf(stderr,
                 "GATE FAILED: ramp shed or dropped packets "
                 "(packets=%llu/%zu drops=%llu shed=%llu)\n",
                 static_cast<unsigned long long>(ramp_stats.packets),
                 ramp_trace.size(),
                 static_cast<unsigned long long>(ramp_stats.drops),
                 static_cast<unsigned long long>(
                     ramp_stats.overload.shed_total()));
    ok = false;
  }
  for (std::size_t s = 0; s < ramp.leftover_flows.size(); ++s) {
    if (ramp.leftover_flows[s] != 0) {
      std::fprintf(stderr,
                   "GATE FAILED: retired shard %zu still holds %zu "
                   "flows\n",
                   ramp.final_active + s, ramp.leftover_flows[s]);
      ok = false;
    }
  }
  ok = check_conservation("ramp", ramp_stats) && ok;
  std::printf("ramp: scale_downs=%zu migrated_flows=%llu final_shards=%zu "
              "packets=%llu drops=%llu\n",
              scale_downs,
              static_cast<unsigned long long>(ramp_migrated),
              ramp.final_active,
              static_cast<unsigned long long>(ramp_stats.packets),
              static_cast<unsigned long long>(ramp_stats.drops));

  telemetry::Json ramp_row = telemetry::Json::object();
  ramp_row.set("config", telemetry::Json::string("ramp"));
  ramp_row.set("scale_downs", telemetry::Json::integer(scale_downs));
  ramp_row.set("migrated_flows",
               telemetry::Json::integer(ramp_migrated));
  ramp_row.set("final_shards",
               telemetry::Json::integer(ramp.final_active));
  ramp_row.set("packets", telemetry::Json::integer(ramp_stats.packets));
  ramp_row.set("drops", telemetry::Json::integer(ramp_stats.drops));
  ramp_row.set("series", series_json(ramp));
  json.add(std::move(ramp_row));

  json.write();
  std::printf("\nautoscale gates (recovery within budget, lossless "
              "scale-down, conservation): %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace speedybox::bench

int main() { return speedybox::bench::run(); }
