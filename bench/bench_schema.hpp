// The shared BENCH_*.json schema and the perf-regression gate that
// enforces it (EXPERIMENTS.md, "Methodology").
//
// Every bench emitter writes one schema-versioned document:
//
//   {
//     "bench": "<name>",               required, string
//     "schema_version": 1,             required, integer >= 1
//     "cpu_ghz": 2.5,                  required, finite > 0
//     "environment": { ... },          required, object (env capture)
//     "params": { ... },               required, object
//     "configs": [ {row}, ... ]        required, non-empty array
//   }
//
// Each row is an object with a string "config" label; every number in the
// document must be finite; and wherever the overload counters appear the
// conservation identity offered == admitted + shed must hold exactly.
//
// The gate (tools/bench_gate) matches baseline rows to candidate rows by
// identity key and fails on fast-path-rate loss or p99 growth beyond the
// tolerance. Gated metrics are the machine-portable RELATIVE ones
// ("rel_rate", "rel_p99" — each cell normalized by the run's own
// calibration cell) falling back to the absolute fields for same-machine
// diffs; a row opts out with "gated": false, and a baseline row overrides
// the default tolerance with "tolerance_rel_rate" / "tolerance_rel_p99".
#pragma once

#include <string>
#include <vector>

#include "telemetry/json.hpp"

namespace speedybox::bench {

inline constexpr int kBenchSchemaVersion = 1;

/// Validate one BENCH_*.json document. Returns the list of human-readable
/// violations — empty means the document conforms.
std::vector<std::string> validate_bench_json(const telemetry::Json& doc);

// -- Regression gate ---------------------------------------------------------

struct GateConfig {
  /// Fail when the candidate's rate metric falls more than this fraction
  /// below the baseline's.
  double rate_loss_tolerance = 0.10;
  /// Fail when the candidate's p99 metric grows more than this fraction
  /// above the baseline's.
  double p99_growth_tolerance = 0.25;
  /// Fail when a gated baseline row has no matching candidate row
  /// (coverage regressions hide real ones).
  bool require_all_rows = true;
};

struct GateFinding {
  std::string row;      // identity key of the row
  std::string metric;   // which metric tripped / was checked
  double baseline = 0.0;
  double candidate = 0.0;
  double tolerance = 0.0;
  bool ok = true;
  std::string message;  // human-readable verdict
};

struct GateReport {
  std::vector<GateFinding> findings;  // failures AND passes, for the log
  int rows_compared = 0;
  int rows_missing = 0;
  int failures = 0;
  bool pass() const noexcept { return failures == 0; }
};

/// The identity key a row is matched by: the "config" label plus every
/// distinguishing parameter field present (workload, chain, platform,
/// batch_size, offered_multiplier, policy).
std::string row_identity(const telemetry::Json& row);

/// Diff `candidate` against `baseline` (both parsed BENCH_*.json trees).
/// Also validates both documents first — a schema violation is a failure.
GateReport gate_compare(const telemetry::Json& baseline,
                        const telemetry::Json& candidate,
                        const GateConfig& config);

}  // namespace speedybox::bench
