// Measurement methodology for the benchmark suite (EXPERIMENTS.md,
// "Methodology") — the
// RFC 2544-style zero-loss max-rate bisection, latency-vs-offered-load
// curve sweeps, warmup + best-of-N trial discipline, and environment
// capture shared by every bench binary.
//
// Everything here is a pure function of its inputs (the probes are passed
// in as callables), so the unit suite exercises convergence and edge cases
// on synthetic loss/latency functions without running a single packet.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/json.hpp"

namespace speedybox::util {
class SampleRecorder;
}

namespace speedybox::bench {

// -- Trial discipline --------------------------------------------------------

/// Warmup + best-of-N: `warmup` unmeasured runs populate caches, branch
/// predictors and (for stateless probes) the allocator before `trials`
/// measured runs. Every figure bench that used a hand-rolled best-of-3
/// loop — and every bench that timed its first, cold trial — now goes
/// through this.
struct TrialPolicy {
  int warmup = 1;
  int trials = 3;
};

/// Spread statistics over one metric across the measured trials. `best` is
/// the maximum (scores are rates: interference only ever subtracts), and
/// `rel_spread` = (best - worst) / best is the run-to-run noise estimate
/// the regression gate turns into per-cell tolerances.
struct TrialAggregate {
  double best = 0.0;
  double worst = 0.0;
  double median = 0.0;
  double mean = 0.0;
  double rel_spread = 0.0;
  int count = 0;
};

/// Aggregate a vector of per-trial scores. Empty input returns a
/// zero-initialized aggregate with count 0; a single score is its own
/// best/worst/median/mean with zero spread.
TrialAggregate aggregate_trials(std::vector<double> scores);

/// Run `probe` under the policy and keep the result with the highest
/// `score(result)`. The warmup results are discarded unmeasured; the
/// per-trial scores of the measured runs come back through `scores_out`
/// (optional) for spread reporting. With trials < 1 one measured trial
/// still runs — a policy can reduce work, never skip the measurement.
template <typename Result>
Result best_of(const TrialPolicy& policy,
               const std::function<Result()>& probe,
               const std::function<double(const Result&)>& score,
               std::vector<double>* scores_out = nullptr) {
  for (int w = 0; w < policy.warmup; ++w) probe();
  Result best = probe();
  double best_score = score(best);
  if (scores_out != nullptr) scores_out->push_back(best_score);
  for (int t = 1; t < policy.trials; ++t) {
    Result next = probe();
    const double next_score = score(next);
    if (scores_out != nullptr) scores_out->push_back(next_score);
    if (next_score > best_score) {
      best = std::move(next);
      best_score = next_score;
    }
  }
  return best;
}

// -- RFC 2544 zero-loss max-rate search --------------------------------------

/// Bisection over offered rate. `loss_at(rate)` drives one trial at that
/// rate and returns the loss fraction in [0, 1]; a rate "passes" when its
/// loss is <= loss_tolerance. The search assumes loss is (noisily)
/// non-decreasing in rate — the RFC 2544 premise.
struct RateSearchConfig {
  double min_rate = 0.0;
  double max_rate = 1.0;
  /// Loss fraction below which a rate counts as lossless (RFC 2544 uses
  /// exactly 0; a small tolerance absorbs counter noise).
  double loss_tolerance = 0.0;
  /// Stop when the bracket width falls under `resolution` × max_rate.
  double resolution = 0.01;
  int max_iterations = 32;
};

struct RateSearchResult {
  /// Highest probed rate whose loss passed (min_rate when even that lost).
  double rate = 0.0;
  double loss_at_rate = 0.0;
  int iterations = 0;
  /// False when max_iterations ran out before the bracket closed.
  bool converged = false;
};

RateSearchResult zero_loss_max_rate(
    const std::function<double(double)>& loss_at,
    const RateSearchConfig& config);

// -- Latency-vs-offered-load curve sweeps ------------------------------------

enum class Spacing { kLinear, kGeometric };

/// The offered-load points of a curve sweep, endpoints included, sorted
/// ascending. Geometric spacing needs 0 < lo <= hi (falls back to linear
/// otherwise); points < 2 returns just {hi}; lo == hi collapses to one
/// point.
std::vector<double> curve_points(double lo, double hi, int points,
                                 Spacing spacing);

/// One point of a latency-vs-offered-load curve.
struct LatencySummary {
  double p50 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  double mean = 0.0;
  std::uint64_t count = 0;
};

/// Exact-percentile summary of a sample recorder (empty recorder → all
/// zeros, count 0).
LatencySummary summarize(const util::SampleRecorder& samples);

/// {"p50": .., "p99": .., "p999": .., "mean": .., "count": ..}
telemetry::Json latency_json(const LatencySummary& summary);

// -- Environment capture -----------------------------------------------------

/// What a BENCH_*.json needs to be comparable later: CPU frequency, git
/// describe (baked in at configure time), hardware concurrency, and the
/// run shape. Shards/batch at 0 mean "not applicable" and are omitted.
telemetry::Json environment_json(std::size_t shards = 0,
                                 std::size_t batch_size = 0);

/// The configure-time `git describe --always --dirty` (or "unknown" when
/// the build is not from a git checkout).
const char* git_describe();

}  // namespace speedybox::bench
