// bench_matrix — the benchmark-grade comparative harness (DESIGN.md §11):
// one schema-versioned BENCH_matrix.json covering the full
// platform × chain × workload matrix, plus the RFC 2544-style methodology
// demos (zero-loss max-rate bisection, latency-vs-offered-load curves)
// from bench_method.
//
//   platforms   runner/original  runner/speedybox  sharded x4  pipeline
//               onvm  autoscaled 1->4
//   chains      chain1_gateway     nat + maglev + monitor + ipfilter
//               chain2_inspection  ipfilter(drop 10.1.3/24) + snort +
//                                  monitor          (both §VII-C chains)
//   workloads   elephant-mice  sync-burst  flash-crowd  syn-flood
//               (src/trace scenario generators; syn-flood additionally
//               runs a DosPrevention-fronted chain so the flood actually
//               trips the Fig. 3 event)
//
// Gating model: absolute rates/latencies are machine-dependent, so each
// (chain, workload) cell group normalizes by its own runner/original
// reference cell measured in the same run — "rel_rate" (speedup) and
// "rel_p99" survive a machine change; tools/bench_gate diffs those against
// bench/baselines/ with per-cell noise tolerances derived from the
// measured trial spread. Cells without a cycle model (pipeline, onvm,
// autoscaled) are informational: "gated": false.
//
// Flags:
//   --smoke            CI-sized matrix (small workloads, fewer trials,
//                      shorter method demos)
//   --handicap-fastpath PCT
//                      gate SELF-TEST knob: report the SpeedyBox cells as
//                      if the fast path were PCT percent slower (rates
//                      scaled down, p99 scaled up). Proves a deliberate
//                      regression fails the gate without editing the data
//                      path; never use it when refreshing baselines.
#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "control/controller.hpp"
#include "runtime/onvm_executor.hpp"
#include "runtime/plan.hpp"
#include "runtime/sharded_runtime.hpp"
#include "runtime/speedybox_pipeline.hpp"
#include "telemetry/metrics.hpp"
#include "trace/payload_synth.hpp"

#include "bench_util.hpp"

namespace speedybox::bench {
namespace {

constexpr std::size_t kShards = 4;

struct MatrixOptions {
  bool smoke = false;
  double handicap_fastpath_pct = 0.0;
};

struct ChainDef {
  std::string name;
  ChainFactory factory;
};

std::vector<ChainDef> matrix_chains() {
  // The canonical §VII-C specs — identical structure to what chainsim's
  // --chain path and the equivalence suite build.
  std::vector<ChainDef> chains;
  chains.push_back({"chain1_gateway",
                    [] { return plan::build_chain(plan::vii_c_chain1()); }});
  chains.push_back({"chain2_inspection",
                    [] { return plan::build_chain(plan::vii_c_chain2()); }});
  return chains;
}

/// The SYN flood's natural habitat: DosPrevention in front of the
/// inspection tail, so the per-flow SYN counters actually blacklist the
/// attack flows (extra matrix rows beyond the 2-chain core).
ChainDef dos_chain() {
  return {"dos_inspection", [] {
            return plan::build_chain(plan::ChainSpec::parse(
                "dos:threshold=8,monitor", "dos_inspection"));
          }};
}

struct WorkloadDef {
  std::string name;
  trace::Workload workload;
};

std::vector<WorkloadDef> matrix_workloads(bool smoke) {
  // Full-size workloads in BOTH modes: percentile stability needs the
  // sample count (a 700-packet p99 jumps double-digit percent between
  // processes), and even the full populations run in well under a second.
  // Smoke only cuts trials and the method demos.
  (void)smoke;
  std::vector<WorkloadDef> defs;
  defs.push_back({"elephant-mice",
                  trace::make_elephant_mice_workload({})});
  defs.push_back({"sync-burst", trace::make_sync_burst_workload({})});
  defs.push_back({"flash-crowd", trace::make_flash_crowd_workload({})});
  defs.push_back({"syn-flood", trace::make_syn_flood_workload({})});
  // Snort rule contents planted on every workload: chain2 carries an IDS,
  // and planting is a no-op cost for the others.
  for (WorkloadDef& def : defs) {
    trace::PayloadSynthConfig synth;
    synth.match_fraction = 0.2;
    plant_rule_contents(def.workload, trace::default_snort_rules(), synth);
  }
  return defs;
}

std::vector<net::Packet> materialize(const trace::Workload& workload) {
  std::vector<net::Packet> packets;
  packets.reserve(workload.packet_count());
  for (std::size_t i = 0; i < workload.packet_count(); ++i) {
    packets.push_back(workload.materialize(i));
  }
  return packets;
}

/// One gated cell's measurement: the best-rate run (for the reported
/// absolute fields) plus per-trial cycle statistics. The GATED basis is
/// the MIN across trials of each run's median (and p99) cycles/packet:
/// interference only ever ADDS cycles, so the min-of-medians converges on
/// the deterministic floor even on a time-shared core where any single
/// run's numbers drift double-digit percent.
struct GatedMeasurement {
  ConfigResult best;
  TrialAggregate rate_trials;       // per-trial rate_mpps
  TrialAggregate cycles_p50_trials; // per-trial median cycles/packet
  TrialAggregate cycles_p99_trials; // per-trial p99 cycles/packet
};

GatedMeasurement measure_best(const TrialPolicy& policy,
                              const std::function<ConfigResult()>& probe) {
  std::vector<double> rates;
  std::vector<double> p50s;
  std::vector<double> p99s;
  GatedMeasurement measurement;
  measurement.best = best_of<ConfigResult>(
      policy,
      [&] {
        ConfigResult result = probe();
        const util::SampleRecorder& cycles =
            result.stats.platform_cycles_subsequent;
        p50s.push_back(cycles.count() > 0 ? cycles.percentile(50) : 0.0);
        p99s.push_back(cycles.count() > 0 ? cycles.percentile(99) : 0.0);
        return result;
      },
      [](const ConfigResult& result) { return result.rate_mpps; }, &rates);
  // The probe also ran during warmup; keep only the measured trials.
  const auto trim = [&](std::vector<double>* samples) {
    if (samples->size() > rates.size()) {
      samples->erase(samples->begin(),
                     samples->begin() +
                         static_cast<std::ptrdiff_t>(samples->size() -
                                                     rates.size()));
    }
  };
  trim(&p50s);
  trim(&p99s);
  measurement.rate_trials = aggregate_trials(std::move(rates));
  measurement.cycles_p50_trials = aggregate_trials(std::move(p50s));
  measurement.cycles_p99_trials = aggregate_trials(std::move(p99s));
  return measurement;
}

/// Reference metrics of a cell group: the runner/original cell every
/// relative metric in the group divides by. `worst` of a cycles aggregate
/// is its min-of-trials floor (lower cycles = better).
struct Reference {
  double cycles_p50_floor = 0.0;
  double cycles_p99_floor = 0.0;
  double p50_spread = 0.0;
  double p99_spread = 0.0;
};

struct RowContext {
  BenchJson* json;
  std::string chain;
  std::string workload;
  const MatrixOptions* options;
};

telemetry::Json base_row(const RowContext& ctx, const std::string& platform,
                         const std::string& label,
                         const ConfigResult& result) {
  telemetry::Json row = config_row(label, result);
  row.set("chain", telemetry::Json::string(ctx.chain));
  row.set("workload", telemetry::Json::string(ctx.workload));
  row.set("platform", telemetry::Json::string(platform));
  const LatencySummary latency =
      summarize(result.stats.latency_us_subsequent);
  if (latency.count > 0) {
    row.set("latency_us_p999", telemetry::Json::number(latency.p999));
  }
  return row;
}

/// Emit a gated cell. The gated metrics are CYCLE-FLOOR ratios:
///
///   rel_rate = ref_cycles_p50_floor / cell_cycles_p50_floor
///              (median-cycle speedup over the same-run original path —
///              machine-portable, and min-of-trials kills one-sided noise)
///   rel_p99  = cell_cycles_p99_floor / ref_cycles_p99_floor
///              (tail growth relative to the original path)
///
/// plus per-cell noise tolerances from the measured trial spreads (never
/// below the gate's default floors). The handicap knob scales the
/// fast-path cycle floors here — the self-test injection point.
void emit_gated(const RowContext& ctx, const std::string& platform,
                const std::string& label,
                const GatedMeasurement& measurement,
                const Reference& reference) {
  const double handicap =
      1.0 + ctx.options->handicap_fastpath_pct / 100.0;
  const double p50_floor =
      measurement.cycles_p50_trials.worst * handicap;
  const double p99_floor =
      measurement.cycles_p99_trials.worst * handicap;
  telemetry::Json row = base_row(ctx, platform, label, measurement.best);
  row.set("gated", telemetry::Json::boolean(true));
  if (handicap != 1.0) {
    row.set("handicap_fastpath_pct",
            telemetry::Json::number(ctx.options->handicap_fastpath_pct));
  }
  row.set("cycles_p50_floor", telemetry::Json::number(p50_floor));
  row.set("cycles_p99_floor", telemetry::Json::number(p99_floor));
  if (reference.cycles_p50_floor > 0.0 && p50_floor > 0.0) {
    row.set("rel_rate", telemetry::Json::number(
                            reference.cycles_p50_floor / p50_floor));
  }
  // Noise tolerances from the observed trial spreads, floored at the gate
  // defaults — a quiet cell gates tightly, a noisy one loosens itself
  // instead of flaking. Each rel ratio inherits noise from BOTH its own
  // cell and the reference denominator, so both spreads count.
  const double p50_spread = measurement.cycles_p50_trials.rel_spread +
                            reference.p50_spread;
  const double p99_spread = measurement.cycles_p99_trials.rel_spread +
                            reference.p99_spread;
  // A tail quantile sitting on a mode boundary (fast-path vs scanned
  // packets on the inspection chain) jumps integer factors between runs;
  // once the trial spread says the tolerance would have to exceed ~70%,
  // the p99 gate carries no information — leave the tail ungated for this
  // cell instead of flaking, and say so in the row.
  constexpr double kP99GateSpreadLimit = 0.35;
  const bool p99_stable = p99_spread <= kP99GateSpreadLimit;
  if (reference.cycles_p99_floor > 0.0 && p99_floor > 0.0 && p99_stable) {
    row.set("rel_p99", telemetry::Json::number(
                           p99_floor / reference.cycles_p99_floor));
  } else {
    row.set("rel_p99_unstable", telemetry::Json::boolean(true));
  }
  row.set("trial_rel_spread",
          telemetry::Json::number(
              measurement.cycles_p50_trials.rel_spread));
  row.set("trial_p99_spread",
          telemetry::Json::number(
              measurement.cycles_p99_trials.rel_spread));
  row.set("tolerance_rel_rate",
          telemetry::Json::number(std::max(0.10, 2.0 * p50_spread)));
  if (p99_stable) {
    row.set("tolerance_rel_p99",
            telemetry::Json::number(std::max(0.40, 2.0 * p99_spread)));
  }
  ctx.json->add(std::move(row));
}

void emit_informational(const RowContext& ctx, const std::string& platform,
                        const std::string& label,
                        const ConfigResult& result) {
  telemetry::Json row = base_row(ctx, platform, label, result);
  row.set("gated", telemetry::Json::boolean(false));
  ctx.json->add(std::move(row));
}

/// One (chain, workload) cell group across every platform shape.
void run_cell_group(const RowContext& ctx, const ChainFactory& factory,
                    const trace::Workload& workload,
                    const TrialPolicy& policy) {
  // -- runner/original: the group's reference cell.
  const GatedMeasurement original = measure_best(policy, [&] {
    return run_config(factory, platform::PlatformKind::kBess,
                      /*speedybox=*/false, workload);
  });
  Reference reference;
  reference.cycles_p50_floor = original.cycles_p50_trials.worst;
  reference.cycles_p99_floor = original.cycles_p99_trials.worst;
  reference.p50_spread = original.cycles_p50_trials.rel_spread;
  reference.p99_spread = original.cycles_p99_trials.rel_spread;
  emit_informational(ctx, "runner_original", "runner/original",
                     original.best);

  // -- runner/speedybox: the gated fast-path cell.
  emit_gated(ctx, "runner_speedybox", "runner/speedybox",
             measure_best(policy,
                          [&] {
                            return run_config(
                                factory, platform::PlatformKind::kBess,
                                /*speedybox=*/true, workload);
                          }),
             reference);

  const std::vector<net::Packet> packets = materialize(workload);

  // -- sharded x4 (speedybox): gated on the modeled aggregate rate.
  emit_gated(ctx, "sharded_x4", "sharded/speedybox",
             measure_best(policy,
                          [&] {
                            auto prototype = factory();
                            runtime::ShardedRuntime sharded{
                                *prototype,
                                kShards,
                                {platform::PlatformKind::kBess, true,
                                 false}};
                            sharded.run(packets, nullptr);
                            ConfigResult result = collect_result(
                                sharded, platform::PlatformKind::kBess);
                            result.rate_mpps =
                                sharded.last_result().aggregate_rate_mpps;
                            return result;
                          }),
             reference);

  // -- pipeline (threaded SpeedyBox deployment): counters only.
  {
    auto chain = factory();
    runtime::SpeedyBoxPipeline pipeline{*chain};
    runtime::Executor& executor = pipeline;
    executor.run(packets, nullptr);
    emit_informational(
        ctx, "pipeline", "pipeline/speedybox",
        collect_result(executor, platform::PlatformKind::kOnvm));
  }

  // -- onvm (NF-per-core descriptor rings, original path): counters only.
  {
    auto chain = factory();
    runtime::OnvmExecutor onvm{*chain};
    runtime::Executor& executor = onvm;
    executor.run(packets, nullptr);
    emit_informational(
        ctx, "onvm", "onvm/original",
        collect_result(executor, platform::PlatformKind::kOnvm));
  }

  // -- autoscaled (1 -> kShards under the elastic control plane).
  {
    telemetry::Registry registry;
    auto prototype = factory();
    runtime::ShardedRuntime sharded{
        *prototype, 1, {platform::PlatformKind::kBess, true, false},
        16384, &registry, "matrix/"};
    control::AutoscaleConfig config;
    config.slo_us = 1.0;  // aggressive: any recording storm breaches
    config.min_shards = 1;
    config.max_shards = kShards;
    config.interval_packets = 512;
    config.up_streak = 1;
    config.down_streak = 4;
    config.cooldown_windows = 1;
    config.occupancy_high = 2.0;
    config.admit_low = 0.0;
    control::Controller controller{config, registry};
    controller.attach(sharded);
    runtime::Executor& executor = sharded;
    executor.run(packets, nullptr);
    ConfigResult result =
        collect_result(executor, platform::PlatformKind::kBess);
    telemetry::Json row =
        base_row(ctx, "autoscaled", "autoscaled/speedybox", result);
    row.set("gated", telemetry::Json::boolean(false));
    std::uint64_t migrated = 0;
    for (const control::ReshardReport& event : controller.scale_events()) {
      migrated += event.migrated_flows;
    }
    row.set("scale_events",
            telemetry::Json::integer(controller.scale_events().size()));
    row.set("migrated_flows", telemetry::Json::integer(migrated));
    row.set("final_shards",
            telemetry::Json::integer(sharded.active_shard_count()));
    ctx.json->add(std::move(row));
  }
}

/// Methodology demos on the runner/speedybox shape: RFC 2544 zero-loss
/// max-rate bisection over the offered-load multiplier, and the
/// latency-vs-offered-load curve.
void run_method_demos(const RowContext& ctx, const ChainFactory& factory,
                      const trace::Workload& workload, bool smoke) {
  const auto cell_at = [&](double multiplier) {
    runtime::OverloadConfig overload;
    overload.enabled = true;
    overload.offered_load = multiplier;
    overload.queue_capacity = 512;
    return run_config(factory, platform::PlatformKind::kBess, true,
                      workload, false, net::kDefaultBatchSize, overload);
  };

  RateSearchConfig search;
  search.min_rate = 0.25;
  search.max_rate = 4.0;
  search.loss_tolerance = 0.001;
  search.resolution = smoke ? 0.10 : 0.05;
  search.max_iterations = smoke ? 6 : 10;
  const RateSearchResult found = zero_loss_max_rate(
      [&](double multiplier) {
        const ConfigResult result = cell_at(multiplier);
        const runtime::OverloadStats& overload = result.stats.overload;
        return overload.offered == 0
                   ? 0.0
                   : static_cast<double>(overload.shed_total()) /
                         static_cast<double>(overload.offered);
      },
      search);
  std::printf("  %-18s %-14s zero-loss max multiplier %.3f "
              "(loss %.4f, %d trials, %s)\n",
              ctx.chain.c_str(), ctx.workload.c_str(), found.rate,
              found.loss_at_rate, found.iterations,
              found.converged ? "converged" : "NOT converged");
  telemetry::Json row = telemetry::Json::object();
  row.set("config", telemetry::Json::string("method/zero_loss"));
  row.set("chain", telemetry::Json::string(ctx.chain));
  row.set("workload", telemetry::Json::string(ctx.workload));
  row.set("gated", telemetry::Json::boolean(false));
  row.set("zero_loss_multiplier", telemetry::Json::number(found.rate));
  row.set("loss_at_rate", telemetry::Json::number(found.loss_at_rate));
  row.set("search_iterations", telemetry::Json::integer(
                                   static_cast<std::uint64_t>(
                                       found.iterations)));
  row.set("converged", telemetry::Json::boolean(found.converged));
  ctx.json->add(std::move(row));

  for (const double multiplier :
       curve_points(0.5, 4.0, smoke ? 4 : 7, Spacing::kGeometric)) {
    const ConfigResult result = cell_at(multiplier);
    const runtime::OverloadStats& overload = result.stats.overload;
    const std::uint64_t delivered = result.stats.packets -
                                    result.stats.drops - overload.faulted;
    telemetry::Json point =
        base_row(ctx, "runner_speedybox", "method/curve", result);
    point.set("gated", telemetry::Json::boolean(false));
    point.set("offered_multiplier", telemetry::Json::number(multiplier));
    point.set("goodput",
              telemetry::Json::number(
                  overload.offered > 0
                      ? static_cast<double>(delivered) /
                            static_cast<double>(overload.offered)
                      : 0.0));
    point.set("latency", latency_json(
                             summarize(result.stats.latency_us_subsequent)));
    ctx.json->add(std::move(point));
  }
}

int run(const MatrixOptions& options) {
  print_header(options.smoke
                   ? "Benchmark matrix (smoke): platform x chain x workload"
                   : "Benchmark matrix: platform x chain x workload");
  BenchJson json{"matrix"};
  json.environment(environment_json(kShards, net::kDefaultBatchSize));
  json.param("smoke", options.smoke ? 1.0 : 0.0);
  json.param("shards", static_cast<double>(kShards));
  if (options.handicap_fastpath_pct != 0.0) {
    json.param("handicap_fastpath_pct", options.handicap_fastpath_pct);
  }

  TrialPolicy policy;
  policy.warmup = 1;
  // Odd trial counts keep the p99 median an actual sample.
  policy.trials = options.smoke ? 3 : 5;

  const std::vector<ChainDef> chains = matrix_chains();
  const std::vector<WorkloadDef> workloads = matrix_workloads(options.smoke);

  std::printf("%zu platforms x %zu chains x %zu workloads, best of %d "
              "after %d warmup\n\n",
              std::size_t{6}, chains.size(), workloads.size(),
              policy.trials, policy.warmup);

  for (const ChainDef& chain : chains) {
    for (const WorkloadDef& workload : workloads) {
      std::printf("cell group: %s x %s (%zu packets)\n", chain.name.c_str(),
                  workload.name.c_str(), workload.workload.packet_count());
      RowContext ctx{&json, chain.name, workload.name, &options};
      run_cell_group(ctx, chain.factory, workload.workload, policy);
    }
  }

  // SYN flood through a DosPrevention-fronted chain: the flood must
  // actually blacklist attackers (drops > 0 on the dos chain).
  {
    const ChainDef dos = dos_chain();
    const WorkloadDef& flood = workloads.back();  // syn-flood
    std::printf("cell group: %s x %s (%zu packets)\n", dos.name.c_str(),
                flood.name.c_str(), flood.workload.packet_count());
    RowContext ctx{&json, dos.name, flood.name, &options};
    const ConfigResult result =
        run_config_best(policy, dos.factory, platform::PlatformKind::kBess,
                        true, flood.workload);
    if (result.stats.drops == 0) {
      std::fprintf(stderr,
                   "FAIL: SYN flood through DosPrevention dropped "
                   "nothing — the flood never tripped the event\n");
      return 1;
    }
    emit_informational(ctx, "runner_speedybox", "runner/speedybox", result);
  }

  std::printf("\nmethodology demos (zero-loss search + latency curves)\n");
  for (const ChainDef& chain : chains) {
    for (const WorkloadDef& workload : workloads) {
      // The method demos cost a bisection + a curve of full runs per cell;
      // smoke keeps one workload per chain.
      if (options.smoke && workload.name != "elephant-mice") continue;
      RowContext ctx{&json, chain.name, workload.name, &options};
      run_method_demos(ctx, chain.factory, workload.workload,
                       options.smoke);
    }
  }

  json.write();
  return 0;
}

}  // namespace
}  // namespace speedybox::bench

int main(int argc, char** argv) {
  speedybox::bench::MatrixOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      options.smoke = true;
    } else if (std::strcmp(argv[i], "--handicap-fastpath") == 0 &&
               i + 1 < argc) {
      options.handicap_fastpath_pct = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_matrix [--smoke] "
                   "[--handicap-fastpath PCT]\n");
      return 2;
    }
  }
  return speedybox::bench::run(options);
}
