// bench_flowtable — the million-flow state engine held accountable
// (DESIGN.md §13).
//
// core::FlowTable replaced std::unordered_map under every per-flow
// structure on the data path, on two promises this bench gates:
//
//   rate:  pre-hashed control-byte probing beats unordered_map node
//          chasing at production flow counts. Gated metric: rel_rate =
//          FlowTable lookup rate / unordered_map lookup rate over the same
//          1M+ resident flows and access order — a host-independent ratio
//          with a hard floor of 1.3x (the committed baseline's tolerance
//          encodes exactly that floor).
//   tail:  incremental resizing keeps probe sequences short while a grow
//          is draining — no stop-the-world rehash, no probe blow-up from
//          the half-migrated state. Gated metric: rel_p99 = p99 probe
//          length per operation measured across the full growth run (every
//          resize the table ever does happens inside this window). Probe
//          lengths are counts, not cycles, so the committed number is
//          machine-portable.
//
// The insert-rate comparison and the worst single-insert pause (the
// latency cost of the bounded drain quantum, in cycles) are reported
// unGated — the pause is machine-dependent and the paper's claim is about
// lookups, which dominate steady-state chains.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "bench_util.hpp"
#include "core/flow_table.hpp"
#include "net/five_tuple.hpp"
#include "util/histogram.hpp"

namespace speedybox::bench {
namespace {

/// A Monitor-shaped record: the 16-byte counters value that sits in the
/// slab for the most table-bound NF.
struct FlowRec {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
};

/// Deterministic distinct five-tuples (no RNG: same keys on every host).
std::vector<core::HashedTuple> make_keys(std::size_t count) {
  std::vector<core::HashedTuple> keys;
  keys.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto n = static_cast<std::uint32_t>(i);
    net::FiveTuple tuple;
    tuple.src_ip = net::Ipv4Addr{10, static_cast<std::uint8_t>(n >> 16),
                                 static_cast<std::uint8_t>(n >> 8),
                                 static_cast<std::uint8_t>(n)};
    tuple.dst_ip = net::Ipv4Addr{192, 168, 1, 1};
    tuple.src_port = static_cast<std::uint16_t>(1024 + (n >> 16));
    tuple.dst_port = 443;
    tuple.proto = static_cast<std::uint8_t>(net::IpProto::kTcp);
    keys.push_back(core::HashedTuple::of(tuple));
  }
  return keys;
}

/// Fixed-seed xorshift permutation order: lookups must not walk insertion
/// order (that would hand the flat table an unrealistic prefetch streak).
std::vector<std::uint32_t> shuffled_indices(std::size_t count) {
  std::vector<std::uint32_t> order(count);
  for (std::size_t i = 0; i < count; ++i) {
    order[i] = static_cast<std::uint32_t>(i);
  }
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  for (std::size_t i = count; i > 1; --i) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    std::swap(order[i - 1], order[state % i]);
  }
  return order;
}

double mops(std::size_t operations, std::uint64_t cycles) {
  const double seconds =
      static_cast<double>(cycles) / util::CycleClock::frequency_hz();
  return seconds > 0.0 ? static_cast<double>(operations) / seconds / 1e6
                       : 0.0;
}

struct SideRates {
  double insert_mops = 0.0;
  double lookup_mops = 0.0;
};

SideRates run_flowtable(const std::vector<core::HashedTuple>& keys,
                        const std::vector<std::uint32_t>& order,
                        int rounds) {
  core::FlowTable<net::FiveTuple, FlowRec> table;
  const std::uint64_t insert_begin = util::CycleClock::now();
  for (const core::HashedTuple& key : keys) {
    table.try_emplace(key.tuple, key.hash).first->packets += 1;
  }
  const std::uint64_t insert_cycles =
      util::CycleClock::now() - insert_begin;

  std::uint64_t sink = 0;
  const std::uint64_t lookup_begin = util::CycleClock::now();
  for (int round = 0; round < rounds; ++round) {
    for (const std::uint32_t index : order) {
      const core::HashedTuple& key = keys[index];
      const FlowRec* rec = table.find(key.tuple, key.hash);
      sink += rec->packets;
    }
  }
  const std::uint64_t lookup_cycles =
      util::CycleClock::now() - lookup_begin;
  if (sink != keys.size() * static_cast<std::uint64_t>(rounds)) {
    std::fprintf(stderr, "bench_flowtable: flowtable lookup sum wrong\n");
    std::exit(1);
  }
  return {mops(keys.size(), insert_cycles),
          mops(keys.size() * static_cast<std::size_t>(rounds),
               lookup_cycles)};
}

SideRates run_unordered(const std::vector<core::HashedTuple>& keys,
                        const std::vector<std::uint32_t>& order,
                        int rounds) {
  std::unordered_map<net::FiveTuple, FlowRec, net::FiveTupleHash> map;
  const std::uint64_t insert_begin = util::CycleClock::now();
  for (const core::HashedTuple& key : keys) {
    map.try_emplace(key.tuple).first->second.packets += 1;
  }
  const std::uint64_t insert_cycles =
      util::CycleClock::now() - insert_begin;

  std::uint64_t sink = 0;
  const std::uint64_t lookup_begin = util::CycleClock::now();
  for (int round = 0; round < rounds; ++round) {
    for (const std::uint32_t index : order) {
      sink += map.find(keys[index].tuple)->second.packets;
    }
  }
  const std::uint64_t lookup_cycles =
      util::CycleClock::now() - lookup_begin;
  if (sink != keys.size() * static_cast<std::uint64_t>(rounds)) {
    std::fprintf(stderr, "bench_flowtable: unordered lookup sum wrong\n");
    std::exit(1);
  }
  return {mops(keys.size(), insert_cycles),
          mops(keys.size() * static_cast<std::size_t>(rounds),
               lookup_cycles)};
}

struct ResizeProfile {
  double p99_probe = 0.0;          // per-op probe length across the growth
  double max_probe = 0.0;          // worst single probe sequence
  std::uint64_t max_pause_cycles = 0;  // worst single insert (drain quantum)
  std::uint64_t resizes = 0;
  std::uint64_t resize_steps = 0;
  std::uint64_t migrated = 0;
};

/// Instrumented growth run: a fresh table fills from empty to `keys.size()`
/// entries — passing through every capacity doubling — while per-insert
/// probe lengths (from the stats deltas) and wall cycles are sampled.
ResizeProfile profile_resize(const std::vector<core::HashedTuple>& keys) {
  core::FlowTable<net::FiveTuple, FlowRec> table;
  util::SampleRecorder probes;
  ResizeProfile profile;
  std::uint64_t last_probe_total = 0;
  for (const core::HashedTuple& key : keys) {
    const std::uint64_t begin = util::CycleClock::now();
    table.try_emplace(key.tuple, key.hash);
    const std::uint64_t pause = util::CycleClock::now() - begin;
    if (pause > profile.max_pause_cycles) {
      profile.max_pause_cycles = pause;
    }
    const core::FlowTableStats stats = table.stats();
    probes.add(static_cast<double>(stats.probe_total - last_probe_total));
    last_probe_total = stats.probe_total;
  }
  const core::FlowTableStats stats = table.stats();
  profile.p99_probe = probes.percentile(99);
  profile.max_probe = static_cast<double>(stats.max_probe);
  profile.resizes = stats.resizes;
  profile.resize_steps = stats.resize_steps;
  profile.migrated = stats.migrated_entries;
  return profile;
}

}  // namespace
}  // namespace speedybox::bench

int main(int argc, char** argv) {
  using namespace speedybox;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  // The claim is "at 1M+ resident flows"; smoke keeps the full population
  // and trims rounds/trials instead, so CI gates the same regime.
  const std::size_t flows = smoke ? 1u << 20 : 1u << 21;
  const int rounds = smoke ? 2 : 4;
  bench::TrialPolicy policy;
  policy.warmup = 1;
  policy.trials = smoke ? 3 : 4;

  bench::print_header(
      "bench_flowtable: FlowTable vs std::unordered_map at 1M+ flows "
      "(lookup rate gated at 1.3x; resize probe tail gated)");

  const auto keys = bench::make_keys(flows);
  const auto order = bench::shuffled_indices(flows);

  // Paired trials, best per side (noise only ever slows a run); the order
  // alternates per trial to cancel cache-warming bias.
  bench::SideRates best_ft;
  bench::SideRates best_um;
  std::vector<double> trial_ratios;
  for (int warm = 0; warm < policy.warmup; ++warm) {
    bench::run_flowtable(keys, order, rounds);
    bench::run_unordered(keys, order, rounds);
  }
  for (int trial = 0; trial < policy.trials; ++trial) {
    bench::SideRates ft;
    bench::SideRates um;
    if (trial % 2 == 0) {
      ft = bench::run_flowtable(keys, order, rounds);
      um = bench::run_unordered(keys, order, rounds);
    } else {
      um = bench::run_unordered(keys, order, rounds);
      ft = bench::run_flowtable(keys, order, rounds);
    }
    best_ft.insert_mops = std::max(best_ft.insert_mops, ft.insert_mops);
    best_ft.lookup_mops = std::max(best_ft.lookup_mops, ft.lookup_mops);
    best_um.insert_mops = std::max(best_um.insert_mops, um.insert_mops);
    best_um.lookup_mops = std::max(best_um.lookup_mops, um.lookup_mops);
    trial_ratios.push_back(
        um.lookup_mops > 0.0 ? ft.lookup_mops / um.lookup_mops : 0.0);
  }
  const double rel_lookup = best_um.lookup_mops > 0.0
                                ? best_ft.lookup_mops / best_um.lookup_mops
                                : 0.0;
  const double rel_insert = best_um.insert_mops > 0.0
                                ? best_ft.insert_mops / best_um.insert_mops
                                : 0.0;
  const bench::TrialAggregate spread = bench::aggregate_trials(trial_ratios);

  const bench::ResizeProfile resize = bench::profile_resize(keys);

  std::printf("  %zu flows, %d lookup rounds, best of %d trials\n",
              flows, rounds, policy.trials);
  std::printf("  insert   flowtable %8.2f Mops   unordered %8.2f Mops"
              "  (%.2fx)\n",
              best_ft.insert_mops, best_um.insert_mops, rel_insert);
  std::printf("  lookup   flowtable %8.2f Mops   unordered %8.2f Mops"
              "  (%.2fx, spread %.1f%%)\n",
              best_ft.lookup_mops, best_um.lookup_mops, rel_lookup,
              spread.rel_spread * 100.0);
  std::printf("  resize   %" PRIu64 " grows, %" PRIu64 " drain steps, "
              "%" PRIu64 " slots migrated\n",
              resize.resizes, resize.resize_steps, resize.migrated);
  std::printf("           p99 probe %.0f  max probe %.0f  "
              "worst insert pause %" PRIu64 " cycles (%.2f us)\n",
              resize.p99_probe, resize.max_probe, resize.max_pause_cycles,
              util::CycleClock::to_us(resize.max_pause_cycles));

  // Hard floors, independent of any committed baseline: the redesign's
  // stated wins must hold on the machine producing the JSON.
  bool ok = true;
  if (rel_lookup < 1.3) {
    std::fprintf(stderr,
                 "FAIL: lookup rel_rate %.3f below the 1.3x floor\n",
                 rel_lookup);
    ok = false;
  }
  if (resize.resizes == 0 || resize.resize_steps == 0) {
    std::fprintf(stderr,
                 "FAIL: growth run never resized incrementally\n");
    ok = false;
  }
  // 32 slots: double the analytic p99 for linear probing at the 3/4
  // occupancy ceiling the table grows at — crossing it means clustering
  // regressed, not that the run was noisy (probe lengths are counts).
  if (resize.p99_probe > 32.0) {
    std::fprintf(stderr,
                 "FAIL: p99 probe length %.0f unbounded during resize\n",
                 resize.p99_probe);
    ok = false;
  }

  using telemetry::Json;
  bench::BenchJson json{"flowtable"};
  json.param("flows", static_cast<double>(flows));
  json.param("rounds", static_cast<double>(rounds));
  json.param("trials", static_cast<double>(policy.trials));
  json.param("value_bytes", static_cast<double>(sizeof(bench::FlowRec)));
  json.param("workload", "uniform-tuples");

  Json lookup_row = Json::object();
  lookup_row.set("config", Json::string("flowtable/lookup"));
  lookup_row.set("workload", Json::string("uniform-tuples"));
  lookup_row.set("rel_rate", Json::number(rel_lookup));
  // The baseline tolerance pins the floor at exactly 1.3x regardless of
  // how far above it this machine measured (plus a noise allowance when
  // the trials were unusually spread).
  const double tolerance =
      rel_lookup > 1.3 ? 1.0 - 1.3 / rel_lookup : 0.0;
  lookup_row.set("tolerance_rel_rate", Json::number(tolerance));
  lookup_row.set("rel_rate_spread", Json::number(spread.rel_spread));
  lookup_row.set("lookup_mops", Json::number(best_ft.lookup_mops));
  lookup_row.set("rel_p99_unstable", Json::boolean(true));
  json.add(std::move(lookup_row));

  Json resize_row = Json::object();
  resize_row.set("config", Json::string("flowtable/resize"));
  resize_row.set("workload", Json::string("uniform-tuples"));
  // Probe lengths are slot counts — deterministic for a fixed key set and
  // hash, hence portable enough to gate across machines.
  resize_row.set("rel_p99", Json::number(resize.p99_probe));
  resize_row.set("tolerance_rel_p99", Json::number(1.0));
  resize_row.set("max_probe", Json::number(resize.max_probe));
  resize_row.set("resizes", Json::integer(resize.resizes));
  resize_row.set("resize_steps", Json::integer(resize.resize_steps));
  resize_row.set("migrated_entries", Json::integer(resize.migrated));
  resize_row.set("max_insert_pause_us",
                 Json::number(util::CycleClock::to_us(
                     resize.max_pause_cycles)));
  json.add(std::move(resize_row));

  Json insert_row = Json::object();
  insert_row.set("config", Json::string("flowtable/insert"));
  insert_row.set("workload", Json::string("uniform-tuples"));
  insert_row.set("rel_rate", Json::number(rel_insert));
  insert_row.set("insert_mops", Json::number(best_ft.insert_mops));
  insert_row.set("gated", Json::boolean(false));
  json.add(std::move(insert_row));

  Json reference_row = Json::object();
  reference_row.set("config", Json::string("unordered_map/reference"));
  reference_row.set("workload", Json::string("uniform-tuples"));
  reference_row.set("lookup_mops", Json::number(best_um.lookup_mops));
  reference_row.set("insert_mops", Json::number(best_um.insert_mops));
  reference_row.set("gated", Json::boolean(false));
  json.add(std::move(reference_row));

  json.write();
  return ok ? 0 : 1;
}
