// Batch-size sweep on the Snort + Monitor chain (DESIGN.md §8).
//
// Runs the same workload at every burst size in {1, 2, 4, 8, 16, 32, 64,
// 128}, original and SpeedyBox, and reports fast-path cycles per packet and
// the modeled rate. Results are bit-identical across batch sizes (the
// equivalence harness proves it); what the sweep shows is the amortization:
// the batched classifier pass spreads one timer pair over the whole
// segment, and prefetching warms MAT buckets / sketch rows / ACL rules
// ahead of the per-packet stateful passes. Expected shape: measured
// cycles/packet fall monotonically-ish with batch size and flatten past the
// point where per-packet dispatch overhead stops dominating; batch=32
// fast-path throughput must sit strictly above batch=1.
#include "runtime/plan.hpp"
#include "trace/payload_synth.hpp"

#include "bench_util.hpp"

namespace speedybox::bench {
namespace {

void run() {
  print_header("Batch sweep: Snort + Monitor, burst size 1..128");
  BenchJson json{"batch_sweep"};
  json.param("flows", 64);
  json.param("packets_per_flow", 400);
  json.param("payload", 192);

  trace::Workload workload = trace::make_uniform_workload(
      /*flow_count=*/64, /*packets_per_flow=*/400, /*payload_size=*/192);
  trace::PayloadSynthConfig synth;
  synth.match_fraction = 0.2;
  plant_rule_contents(workload, trace::default_snort_rules(), synth);

  const ChainFactory factory = [] {
    return plan::build_chain(
        plan::ChainSpec::parse("snort,monitor:heavy", "snort_monitor"));
  };

  // Warmup + best-of-3 per configuration (bench_method::TrialPolicy):
  // scheduler noise only ever ADDS cycles (lowering the rate), so the max
  // rate across measured repetitions is the cleanest view of the
  // deterministic amortization difference between batch sizes — and the
  // warmup run keeps the cold first trial out of the measurement.
  const TrialPolicy policy{/*warmup=*/1, /*trials=*/3};
  const auto best = [&](bool speedybox, std::size_t batch) {
    return run_config_best(policy, factory, platform::PlatformKind::kBess,
                           speedybox, workload, false, batch);
  };

  std::printf("%8s | %16s %12s | %16s %12s\n", "batch", "Orig cyc/pkt",
              "Orig Mpps", "SBox cyc/pkt", "SBox Mpps");
  double rate_batch1 = 0.0;
  double rate_batch32 = 0.0;
  for (const std::size_t batch : {1, 2, 4, 8, 16, 32, 64, 128}) {
    const ConfigResult original = best(false, batch);
    const ConfigResult speedy = best(true, batch);
    for (const auto& [mode, result] :
         {std::pair<const char*, const ConfigResult&>{"original", original},
          {"speedybox", speedy}}) {
      telemetry::Json row = config_row("bess/" + std::string(mode), result);
      row.set("batch_size", telemetry::Json::integer(batch));
      json.add(std::move(row));
    }
    std::printf("%8zu | %16.0f %12.3f | %16.0f %12.3f\n", batch,
                original.sub_cycles, original.rate_mpps, speedy.sub_cycles,
                speedy.rate_mpps);
    if (batch == 1) rate_batch1 = speedy.rate_mpps;
    if (batch == 32) rate_batch32 = speedy.rate_mpps;
  }
  json.write();

  std::printf("\nSpeedyBox fast-path rate: batch=1 %.3f Mpps, batch=32 "
              "%.3f Mpps (%+.1f%%)\n",
              rate_batch1, rate_batch32,
              rate_batch1 > 0
                  ? (rate_batch32 - rate_batch1) / rate_batch1 * 100.0
                  : 0.0);
  if (rate_batch32 <= rate_batch1) {
    std::fprintf(stderr,
                 "FAIL: batch=32 fast-path rate (%.3f Mpps) is not above "
                 "batch=1 (%.3f Mpps)\n",
                 rate_batch32, rate_batch1);
    std::exit(1);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace speedybox::bench

int main() {
  speedybox::bench::run();
  return 0;
}
