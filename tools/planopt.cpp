// planopt — offline profile-guided consolidation planner (DESIGN.md §12).
//
// Reads per-NF cycle statistics from a chainsim telemetry capture and emits
// the deployment-plan document predicted to meet a target rate:
//
//   chainsim --chain ipfilter,snort,monitor --mode original
//            --metrics-out profile.jsonl
//   planopt --chain ipfilter,snort,monitor --profile profile.jsonl
//           --target-mpps 2.0 --out plan.json
//   chainsim --plan plan.json
//
// `--chain @chain1|@chain2|@chain1-heavy|@chain2-heavy` expands to the
// canonical §VII-C evaluation chains. Without --profile every NF costs
// --default-nf-cycles (the plan is still valid, just unranked).
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

#include "nf/registry.hpp"
#include "runtime/planner.hpp"
#include "sim_config.hpp"

using namespace speedybox;

namespace {

constexpr const char* kTool = "planopt";

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s --chain nf1,nf2,... [options]\n"
      "\n"
      "Emit the deployment plan predicted to meet --target-mpps for the\n"
      "chain, using per-NF cycle costs from a telemetry capture. Chain\n"
      "tokens are NF registry specs (\"maglev:backends=5:table=1021\");\n"
      "@chain1 @chain2 @chain1-heavy @chain2-heavy name the canonical\n"
      "SpeedyBox evaluation chains.\n"
      "\n"
      "options:\n"
      "  --profile FILE         chainsim --metrics-out capture (JSON lines;\n"
      "                         the last snapshot's aggregate.per_nf is the\n"
      "                         profile). Profile the per-NF path: run with\n"
      "                         --mode original. Omit to plan unprofiled.\n"
      "  --target-mpps X        rate the deployment must sustain (default 1)\n"
      "  --max-shards N         shard ceiling (default 8)\n"
      "  --cpu-ghz G            core frequency for cycles->rate (default:\n"
      "                         this machine's measured TSC frequency)\n"
      "  --hop-cycles N         modeled per-segment fixed cost (default 60)\n"
      "  --default-nf-cycles N  cost for unprofiled NFs (default 500)\n"
      "  --out FILE             plan destination (default \"-\" = stdout)\n"
      "  --explain              print the per-NF model and the chosen\n"
      "                         segments to stderr\n",
      argv0);
  std::exit(2);
}

plan::ChainSpec resolve_chain(const std::string& spec) {
  if (spec == "@chain1") return plan::vii_c_chain1();
  if (spec == "@chain2") return plan::vii_c_chain2();
  if (spec == "@chain1-heavy") return plan::vii_c_chain1_heavy();
  if (spec == "@chain2-heavy") return plan::vii_c_chain2_heavy();
  if (!spec.empty() && spec[0] == '@') {
    tools::config_error(kTool, "unknown named chain \"" + spec +
                                   "\" (choose @chain1, @chain2, "
                                   "@chain1-heavy or @chain2-heavy)");
  }
  return plan::ChainSpec::parse(spec, "planopt");
}

}  // namespace

int main(int argc, char** argv) {
  std::string chain_spec;
  std::string profile_file;
  std::string out = "-";
  bool explain = false;
  plan::PlannerConfig planner_config;
  const auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--chain") {
      chain_spec = need_value(i);
    } else if (arg == "--profile") {
      profile_file = need_value(i);
    } else if (arg == "--target-mpps") {
      planner_config.target_mpps =
          tools::parse_double_flag(kTool, "--target-mpps", need_value(i));
    } else if (arg == "--max-shards") {
      planner_config.max_shards =
          tools::parse_uint_flag(kTool, "--max-shards", need_value(i));
    } else if (arg == "--cpu-ghz") {
      planner_config.cpu_ghz =
          tools::parse_double_flag(kTool, "--cpu-ghz", need_value(i));
    } else if (arg == "--hop-cycles") {
      planner_config.hop_cycles = static_cast<double>(
          tools::parse_uint_flag(kTool, "--hop-cycles", need_value(i), 0));
    } else if (arg == "--default-nf-cycles") {
      planner_config.default_nf_cycles =
          static_cast<double>(tools::parse_uint_flag(
              kTool, "--default-nf-cycles", need_value(i)));
    } else if (arg == "--out") {
      out = need_value(i);
    } else if (arg == "--explain") {
      explain = true;
    } else {
      usage(argv[0]);
    }
  }
  if (chain_spec.empty()) usage(argv[0]);

  plan::Profile profile;
  if (!profile_file.empty()) {
    std::ifstream in(profile_file, std::ios::binary);
    if (!in) {
      tools::config_error(kTool, "--profile: cannot read " + profile_file);
    }
    const std::string text{std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>()};
    try {
      profile = plan::Profile::from_jsonl(text);
    } catch (const std::exception& error) {
      tools::config_error(kTool,
                          "--profile " + profile_file + ": " + error.what());
    }
  }

  plan::DeploymentPlan deployment;
  plan::PlanRationale rationale;
  try {
    const plan::ChainSpec spec = resolve_chain(chain_spec);
    deployment =
        plan::plan_deployment(spec, profile, planner_config, &rationale);
  } catch (const std::exception& error) {
    tools::config_error(kTool, error.what());
  }

  if (explain) {
    std::fprintf(stderr, "planopt: per-NF model (chain \"%s\"):\n",
                 deployment.chain.name.c_str());
    for (std::size_t i = 0; i < deployment.chain.nfs.size(); ++i) {
      std::fprintf(stderr, "  %-28s %8.0f cycles %s\n",
                   deployment.chain.nfs[i].to_string().c_str(),
                   rationale.nf_cycles[i],
                   rationale.nf_profiled[i] ? "(profiled)" : "(default)");
    }
    std::fprintf(stderr, "planopt: segments:");
    for (const plan::SegmentSpec& segment : deployment.segments) {
      std::fprintf(stderr, " [%zu%s]", segment.nf_count,
                   segment.parallel ? " parallel" : "");
    }
    std::fprintf(stderr,
                 "\nplanopt: predicted %.0f cycles/pkt = %.3f Mpps/core -> "
                 "%zu shard%s for %.3f Mpps target\n",
                 rationale.predicted_cycles_per_packet,
                 rationale.predicted_single_core_mpps, rationale.shards,
                 rationale.shards == 1 ? "" : "s",
                 planner_config.target_mpps);
  }

  const std::string document = deployment.dump();
  if (out == "-") {
    std::printf("%s\n", document.c_str());
  } else {
    std::FILE* file = std::fopen(out.c_str(), "w");
    if (file == nullptr ||
        std::fwrite(document.data(), 1, document.size(), file) !=
            document.size() ||
        std::fputc('\n', file) == EOF || std::fclose(file) != 0) {
      std::fprintf(stderr, "planopt: failed to write %s\n", out.c_str());
      return 1;
    }
    std::fprintf(stderr, "planopt: wrote plan to %s\n", out.c_str());
  }
  return 0;
}
