// loadgen — replay a generated workload over loopback UDP or TCP into a
// live `chainsim --listen` (or any IngestServer). The wire-side half of
// the closed-loop smoke:
//
//   chainsim --chain nat,maglev,monitor,ipfilter --mode speedybox
//            --listen 9000 &
//   loadgen --port 9000 --workload syn-flood --rate 50000
//
// Workload construction mirrors chainsim's build_packets exactly (same
// generators, same Snort payload planting, same seed derivation), so a
// live run sees byte-identical packets to the in-process drive of the
// same flags.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "io/loadgen.hpp"
#include "trace/payload_synth.hpp"
#include "trace/workload.hpp"

using namespace speedybox;

namespace {

struct GenConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  io::IngestProto proto = io::IngestProto::kUdp;
  /// One entry per tenant (one broadcast entry allowed); empty = unpaced.
  std::vector<double> rates_pps;
  std::size_t tenants = 0;            // 0 = single-destination mode
  std::vector<std::uint16_t> ports;   // explicit per-tenant ports
  std::size_t repeat = 1;
  std::string workload = "uniform";
  std::size_t flows = 100;
  std::uint32_t packets_per_flow = 20;
  std::size_t payload = 128;
  bool workload_shape_set = false;
  double snort_match_fraction = 0.2;
  std::uint64_t seed = 42;
};

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s --port PORT [options]\n"
      "\n"
      "options:\n"
      "  --host ADDR            receiver address (default 127.0.0.1)\n"
      "  --proto udp|tcp        transport (default udp)\n"
      "  --rate PPS[,PPS...]    target send rate, packets/s (0 = unpaced);\n"
      "                         a comma list paces each tenant separately\n"
      "  --tenants N            fan the workload to N tenants on ports\n"
      "                         PORT..PORT+N-1 (one sender thread each)\n"
      "  --ports P1,P2,...      explicit per-tenant ports (replaces\n"
      "                         --port/--tenants)\n"
      "  --repeat N             replay the frame sequence N times\n"
      "  --workload NAME        uniform | datacenter | elephant-mice |\n"
      "                         sync-burst | flash-crowd | syn-flood\n"
      "  --flows N --packets N --payload N   workload shape (as chainsim)\n"
      "  --snort-match F        planted Snort-rule match fraction\n"
      "                         (default 0.2, as chainsim)\n"
      "  --seed N               workload seed (default 42)\n",
      argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  GenConfig config;
  const auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  bool port_set = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host") {
      config.host = need_value(i);
    } else if (arg == "--port") {
      const char* value = need_value(i);
      char* end = nullptr;
      const unsigned long port = std::strtoul(value, &end, 10);
      if (end == value || *end != '\0' || port == 0 || port > 65535) {
        usage(argv[0]);
      }
      config.port = static_cast<std::uint16_t>(port);
      port_set = true;
    } else if (arg == "--proto") {
      const std::string value = need_value(i);
      if (value == "udp") {
        config.proto = io::IngestProto::kUdp;
      } else if (value == "tcp") {
        config.proto = io::IngestProto::kTcp;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--rate") {
      // Comma list = one rate per tenant; a single value broadcasts.
      std::string value = need_value(i);
      std::size_t start = 0;
      while (start <= value.size()) {
        const std::size_t comma = value.find(',', start);
        const std::string item = value.substr(
            start,
            comma == std::string::npos ? std::string::npos : comma - start);
        char* end = nullptr;
        const double rate = std::strtod(item.c_str(), &end);
        if (item.empty() || end != item.c_str() + item.size() ||
            rate < 0.0) {
          usage(argv[0]);
        }
        config.rates_pps.push_back(rate);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (arg == "--tenants") {
      config.tenants = std::strtoul(need_value(i), nullptr, 10);
      if (config.tenants == 0) usage(argv[0]);
    } else if (arg == "--ports") {
      std::string value = need_value(i);
      std::size_t start = 0;
      while (start <= value.size()) {
        const std::size_t comma = value.find(',', start);
        const std::string item = value.substr(
            start,
            comma == std::string::npos ? std::string::npos : comma - start);
        char* end = nullptr;
        const unsigned long port = std::strtoul(item.c_str(), &end, 10);
        if (item.empty() || end != item.c_str() + item.size() || port == 0 ||
            port > 65535) {
          usage(argv[0]);
        }
        config.ports.push_back(static_cast<std::uint16_t>(port));
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (arg == "--repeat") {
      config.repeat = std::strtoul(need_value(i), nullptr, 10);
      if (config.repeat == 0) usage(argv[0]);
    } else if (arg == "--workload") {
      config.workload = need_value(i);
    } else if (arg == "--flows") {
      config.flows = std::strtoul(need_value(i), nullptr, 10);
      config.workload_shape_set = true;
    } else if (arg == "--packets") {
      config.packets_per_flow =
          static_cast<std::uint32_t>(std::strtoul(need_value(i), nullptr, 10));
      config.workload_shape_set = true;
    } else if (arg == "--payload") {
      config.payload = std::strtoul(need_value(i), nullptr, 10);
      config.workload_shape_set = true;
    } else if (arg == "--snort-match") {
      const char* value = need_value(i);
      char* end = nullptr;
      config.snort_match_fraction = std::strtod(value, &end);
      if (end == value || *end != '\0') usage(argv[0]);
    } else if (arg == "--seed") {
      config.seed = std::strtoull(need_value(i), nullptr, 10);
    } else {
      usage(argv[0]);
    }
  }
  if (!port_set && config.ports.empty()) usage(argv[0]);
  if (port_set && !config.ports.empty()) {
    std::fprintf(stderr, "loadgen: --ports replaces --port (drop one)\n");
    return 2;
  }
  if (config.tenants > 0 && !config.ports.empty() &&
      config.ports.size() != config.tenants) {
    std::fprintf(stderr,
                 "loadgen: --tenants %zu does not match the %zu --ports\n",
                 config.tenants, config.ports.size());
    return 2;
  }
  // --tenants N with --port P fans to consecutive ports P..P+N-1.
  if (config.tenants > 0 && config.ports.empty()) {
    for (std::size_t i = 0; i < config.tenants; ++i) {
      const unsigned long port =
          static_cast<unsigned long>(config.port) + i;
      if (port > 65535) {
        std::fprintf(stderr, "loadgen: tenant port %lu out of range\n", port);
        return 2;
      }
      config.ports.push_back(static_cast<std::uint16_t>(port));
    }
  }
  const bool multi_tenant = !config.ports.empty();
  if (!multi_tenant && config.rates_pps.size() > 1) {
    std::fprintf(stderr,
                 "loadgen: a rate list needs --tenants/--ports (one rate "
                 "per tenant)\n");
    return 2;
  }

  // Mirror chainsim's build_packets: same generators, same planting.
  trace::Workload workload;
  if (config.workload == "datacenter") {
    trace::DatacenterWorkloadConfig workload_config;
    workload_config.flow_count = config.flows;
    workload_config.payload_size = config.payload;
    workload_config.seed = config.seed;
    workload = make_datacenter_workload(workload_config);
  } else if (config.workload == "uniform") {
    workload = trace::make_uniform_workload(
        config.flows, config.packets_per_flow, config.payload, config.seed);
  } else {
    trace::ScenarioScale scale;
    scale.flows = config.workload_shape_set ? config.flows : 0;
    scale.payload_size = config.payload;
    scale.seed = config.seed;
    const auto scenario = trace::make_named_scenario(config.workload, scale);
    if (!scenario.has_value()) {
      std::fprintf(stderr, "loadgen: unknown --workload \"%s\"\n",
                   config.workload.c_str());
      return 2;
    }
    workload = *scenario;
  }
  trace::PayloadSynthConfig synth;
  synth.match_fraction = config.snort_match_fraction;
  synth.seed = config.seed ^ 0x5EED;
  plant_rule_contents(workload, trace::default_snort_rules(), synth);

  if (multi_tenant) {
    io::MultiTenantConfig gen;
    gen.host = config.host;
    gen.ports = config.ports;
    gen.proto = config.proto;
    gen.rates_pps = config.rates_pps;
    gen.repeat = config.repeat;
    std::vector<io::TenantLoadReport> results;
    try {
      results = io::replay_multi_tenant(workload, gen);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "loadgen: %s\n", error.what());
      return 1;
    }
    bool clean = true;
    std::uint64_t total_sent = 0;
    for (const io::TenantLoadReport& tenant : results) {
      if (!tenant.error.empty()) {
        std::fprintf(stderr, "loadgen: port %u: %s\n", tenant.port,
                     tenant.error.c_str());
        clean = false;
        continue;
      }
      total_sent += tenant.report.sent;
      clean = clean && tenant.report.send_errors == 0;
      std::printf(
          "{\"loadgen\":{\"proto\":\"%s\",\"port\":%u,\"sent\":%llu,"
          "\"bytes\":%llu,\"send_errors\":%llu,\"elapsed_s\":%.6f,"
          "\"achieved_pps\":%.1f}}\n",
          io::ingest_proto_name(config.proto), tenant.port,
          static_cast<unsigned long long>(tenant.report.sent),
          static_cast<unsigned long long>(tenant.report.bytes),
          static_cast<unsigned long long>(tenant.report.send_errors),
          tenant.report.elapsed_s, tenant.report.achieved_pps);
    }
    std::printf("{\"loadgen_total\":{\"tenants\":%zu,\"sent\":%llu}}\n",
                results.size(),
                static_cast<unsigned long long>(total_sent));
    return clean ? 0 : 1;
  }

  io::LoadgenConfig gen;
  gen.host = config.host;
  gen.port = config.port;
  gen.proto = config.proto;
  gen.rate_pps = config.rates_pps.empty() ? 0.0 : config.rates_pps[0];
  gen.repeat = config.repeat;
  io::LoadgenReport report;
  try {
    report = io::replay_workload(workload, gen);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "loadgen: %s\n", error.what());
    return 1;
  }

  std::printf(
      "{\"loadgen\":{\"proto\":\"%s\",\"sent\":%llu,\"bytes\":%llu,"
      "\"send_errors\":%llu,\"elapsed_s\":%.6f,\"achieved_pps\":%.1f}}\n",
      io::ingest_proto_name(config.proto),
      static_cast<unsigned long long>(report.sent),
      static_cast<unsigned long long>(report.bytes),
      static_cast<unsigned long long>(report.send_errors), report.elapsed_s,
      report.achieved_pps);
  return report.send_errors == 0 ? 0 : 1;
}
