#include "sim_config.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>

#include "trace/payload_synth.hpp"
#include "util/logging.hpp"

namespace speedybox::tools {

void config_error(const std::string& tool, const std::string& message) {
  std::fprintf(stderr, "%s: %s\n", tool.c_str(), message.c_str());
  std::exit(2);
}

std::uint64_t parse_uint_flag(const std::string& tool, const char* flag,
                              const char* value, std::uint64_t min_value) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE || parsed < min_value) {
    config_error(tool, std::string(flag) + ": want an integer >= " +
                           std::to_string(min_value) + ", got \"" + value +
                           "\"");
  }
  return parsed;
}

double parse_double_flag(const std::string& tool, const char* flag,
                         const char* value, bool positive) {
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0' || (positive && parsed <= 0.0)) {
    config_error(tool, std::string(flag) +
                           (positive ? ": want a number > 0, got \""
                                     : ": want a number, got \"") +
                           value + "\"");
  }
  return parsed;
}

namespace {

constexpr const char* kTool = "chainsim";

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s --chain nf1,nf2,... [options]\n"
      "       %s --plan plan.json [options]\n"
      "\n"
      "NFs: nat maglev monitor heavymonitor ipfilter firewall snort\n"
      "     gateway vpn-out vpn-in dos synthetic\n"
      "Chain tokens take ':'-separated options, e.g.\n"
      "     maglev:backends=5:table=1021  ipfilter:blacklist=32\n"
      "     monitor:heavy=1  synthetic:iterations=64:access=read\n"
      "(an unknown NF or option lists the valid choices)\n"
      "\n"
      "options:\n"
      "  --plan FILE                run FROM a deployment-plan document\n"
      "                             (planopt output); the plan owns the\n"
      "                             chain/mode/executor/platform/batch/\n"
      "                             shards/overload/fault knobs, so those\n"
      "                             flags conflict with it\n"
      "  --emit-plan FILE           write the flag-built (or --plan-loaded)\n"
      "                             deployment plan as JSON and exit\n"
      "                             (\"-\" = stdout; default mode speedybox)\n"
      "  --platform bess|onvm       execution platform model (default bess)\n"
      "  --mode original|speedybox|both   which data path(s) to run\n"
      "  --executor runner|sharded|pipeline|onvm\n"
      "                             executor shape (default runner; sharded\n"
      "                             needs --shards; pipeline requires --mode\n"
      "                             speedybox, onvm requires --mode original)\n"
      "  --flows N --packets N --payload N   uniform workload shape\n"
      "  --workload NAME            uniform | datacenter | elephant-mice |\n"
      "                             sync-burst | flash-crowd | syn-flood\n"
      "                             (scenario generators scale with --flows\n"
      "                             / --payload / --seed; syn-flood pairs\n"
      "                             with a dos chain element)\n"
      "  --datacenter               alias for --workload datacenter\n"
      "  --pcap FILE                drive the chain from a pcap capture\n"
      "  --export-pcap FILE         write the generated workload as pcap\n"
      "  --fail-backend-at K        fail Maglev backend 0 before packet K\n"
      "  --shards N                 run on the flow-sharded runtime with N\n"
      "                             chain replicas (one worker thread each)\n"
      "  --batch-size N             burst size the data path drains in\n"
      "                             (default 32; 1 = packet-at-a-time)\n"
      "  --overload MULT            enable the overload gate at MULT x the\n"
      "                             data path's capacity (DESIGN.md 9)\n"
      "  --drop-policy P            tail-drop|per-flow-fair|slo-early-drop\n"
      "                             (needs --overload)\n"
      "  --queue-capacity N         bounded ingress queue, in packets\n"
      "                             (needs --overload; default 1024)\n"
      "  --autoscale                telemetry-driven elastic scaling of the\n"
      "                             sharded runtime (needs --shards and\n"
      "                             --mode speedybox; DESIGN.md 10)\n"
      "  --slo-us X                 autoscale latency objective for the\n"
      "                             windowed p99, microseconds (default 50)\n"
      "  --min-shards N             autoscale floor (default 1)\n"
      "  --max-shards N             autoscale ceiling (default: the\n"
      "                             starting --shards)\n"
      "  --scale-interval N         control-loop cadence, in dispatched\n"
      "                             packets (default 2048)\n"
      "  --inject-fault SPEC        wrap an NF in the fault injector:\n"
      "                             \"<nf>:fail-every=N,latency-every=N,\n"
      "                             latency-cycles=N,crash-at=N\"\n"
      "  --seed N                   workload seed (default 42)\n"
      "  --csv                      machine-readable one-line-per-config\n"
      "  --print-config             echo the effective config as JSON and\n"
      "                             exit (validates first)\n"
      "  --metrics-out FILE         append a JSON telemetry snapshot line\n"
      "  --metrics-prom FILE        write a Prometheus text snapshot\n"
      "  --metrics-interval MS      also snapshot every MS ms (JSON-lines,\n"
      "                             background thread; needs --metrics-out)\n"
      "  --trace-sample N           record full packet spans for 1-in-N\n"
      "                             flows (exported with --metrics-out)\n"
      "  --listen PORT              live mode: ingest real wire packets on\n"
      "                             127.0.0.1:PORT (0 = ephemeral; the bound\n"
      "                             port is printed at startup) instead of a\n"
      "                             generated trace; pair with the loadgen\n"
      "                             tool; needs --mode original|speedybox\n"
      "  --proto udp|tcp|both       live transport(s) to accept (default\n"
      "                             udp; needs --listen)\n"
      "  --rx-budget N              max frames drained per socket wakeup\n"
      "                             (default 64; needs --listen)\n"
      "  --idle-timeout MS          exit live mode after MS ms without\n"
      "                             traffic (default 1000; needs --listen)\n"
      "  --recvmmsg                 drain the live UDP socket with batched\n"
      "                             recvmmsg() — up to --rx-budget datagrams\n"
      "                             per syscall (needs --listen)\n"
      "  --tenancy FILE             host the multi-tenant spec in FILE\n"
      "                             (tenancy::HostSpec JSON) instead of one\n"
      "                             deployment; in-process by default, add\n"
      "                             --listen 0 for live per-tenant listeners\n"
      "                             (ports come from the spec)\n"
      "  --log-level LEVEL          debug|info|warn|error|off\n",
      argv0, argv0);
  std::exit(2);
}

}  // namespace

SimConfig SimConfig::parse(int argc, char** argv) {
  SimConfig config;
  const auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--chain") {
      std::string spec = need_value(i);
      std::size_t start = 0;
      while (start <= spec.size()) {
        const std::size_t comma = spec.find(',', start);
        const std::string name =
            spec.substr(start, comma == std::string::npos ? std::string::npos
                                                          : comma - start);
        if (!name.empty()) config.chain.push_back(name);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (arg == "--plan") {
      config.plan_file = need_value(i);
    } else if (arg == "--emit-plan") {
      config.emit_plan = need_value(i);
    } else if (arg == "--platform") {
      const std::string value = need_value(i);
      if (value == "bess") {
        config.platform = platform::PlatformKind::kBess;
      } else if (value == "onvm") {
        config.platform = platform::PlatformKind::kOnvm;
      } else {
        usage(argv[0]);
      }
      config.platform_set = true;
    } else if (arg == "--mode") {
      const std::string value = need_value(i);
      config.run_original = value == "original" || value == "both";
      config.run_speedybox = value == "speedybox" || value == "both";
      config.mode_set = true;
      if (!config.run_original && !config.run_speedybox) usage(argv[0]);
    } else if (arg == "--executor") {
      const auto kind = plan::parse_executor_kind(need_value(i));
      if (!kind) usage(argv[0]);
      config.executor = *kind;
      config.executor_set = true;
    } else if (arg == "--flows") {
      config.flows = parse_uint_flag(kTool, "--flows", need_value(i));
      config.workload_shape_set = true;
    } else if (arg == "--packets") {
      config.packets_per_flow = static_cast<std::uint32_t>(
          parse_uint_flag(kTool, "--packets", need_value(i)));
      config.workload_shape_set = true;
    } else if (arg == "--payload") {
      config.payload = parse_uint_flag(kTool, "--payload", need_value(i), 0);
      config.workload_shape_set = true;
    } else if (arg == "--datacenter") {
      config.workload = "datacenter";
    } else if (arg == "--workload") {
      config.workload = need_value(i);
    } else if (arg == "--pcap") {
      config.pcap_in = need_value(i);
    } else if (arg == "--export-pcap") {
      config.pcap_out = need_value(i);
    } else if (arg == "--fail-backend-at") {
      config.fail_backend_at = std::strtol(need_value(i), nullptr, 10);
    } else if (arg == "--shards") {
      config.shards = parse_uint_flag(kTool, "--shards", need_value(i));
    } else if (arg == "--batch-size") {
      config.batch_size = parse_uint_flag(kTool, "--batch-size",
                                          need_value(i));
      config.batch_size_set = true;
    } else if (arg == "--overload") {
      config.overload.offered_load =
          parse_double_flag(kTool, "--overload", need_value(i));
      config.overload.enabled = true;
    } else if (arg == "--drop-policy") {
      const auto policy = runtime::parse_drop_policy(need_value(i));
      if (!policy) usage(argv[0]);
      config.overload.policy = *policy;
      config.drop_policy_set = true;
    } else if (arg == "--queue-capacity") {
      config.overload.queue_capacity =
          parse_uint_flag(kTool, "--queue-capacity", need_value(i));
      config.queue_capacity_set = true;
    } else if (arg == "--autoscale") {
      config.autoscale = true;
    } else if (arg == "--slo-us") {
      config.slo_us = parse_double_flag(kTool, "--slo-us", need_value(i));
      config.autoscale_knob_set = true;
    } else if (arg == "--min-shards") {
      config.min_shards =
          parse_uint_flag(kTool, "--min-shards", need_value(i));
      config.autoscale_knob_set = true;
    } else if (arg == "--max-shards") {
      config.max_shards =
          parse_uint_flag(kTool, "--max-shards", need_value(i));
      config.autoscale_knob_set = true;
    } else if (arg == "--scale-interval") {
      config.scale_interval =
          parse_uint_flag(kTool, "--scale-interval", need_value(i));
      config.autoscale_knob_set = true;
    } else if (arg == "--inject-fault") {
      config.fault = runtime::parse_fault_spec(need_value(i));
      if (!config.fault || !config.fault->second.any()) {
        config_error(kTool,
                     "--inject-fault: malformed spec (want "
                     "\"<nf>:fail-every=N,...\" with at least one action)");
      }
    } else if (arg == "--seed") {
      config.seed = parse_uint_flag(kTool, "--seed", need_value(i), 0);
    } else if (arg == "--csv") {
      config.csv = true;
    } else if (arg == "--print-config") {
      config.print_config = true;
    } else if (arg == "--metrics-out") {
      config.metrics_out = need_value(i);
    } else if (arg == "--metrics-prom") {
      config.metrics_prom = need_value(i);
    } else if (arg == "--metrics-interval") {
      config.metrics_interval_ms = std::strtol(need_value(i), nullptr, 10);
    } else if (arg == "--trace-sample") {
      config.trace_sample = static_cast<std::uint32_t>(
          parse_uint_flag(kTool, "--trace-sample", need_value(i)));
    } else if (arg == "--listen") {
      const std::uint64_t port =
          parse_uint_flag(kTool, "--listen", need_value(i), 0);
      if (port > 65535) usage(argv[0]);
      config.listen_port = static_cast<std::uint16_t>(port);
      config.listen_set = true;
    } else if (arg == "--proto") {
      const std::string value = need_value(i);
      if (value == "udp") {
        config.listen_proto = io::IngestProto::kUdp;
      } else if (value == "tcp") {
        config.listen_proto = io::IngestProto::kTcp;
      } else if (value == "both") {
        config.listen_proto = io::IngestProto::kBoth;
      } else {
        usage(argv[0]);
      }
      config.proto_set = true;
    } else if (arg == "--rx-budget") {
      config.rx_budget = parse_uint_flag(kTool, "--rx-budget", need_value(i));
      config.rx_budget_set = true;
    } else if (arg == "--idle-timeout") {
      config.idle_timeout_ms = static_cast<long>(
          parse_uint_flag(kTool, "--idle-timeout", need_value(i)));
      config.idle_timeout_set = true;
    } else if (arg == "--recvmmsg") {
      config.use_recvmmsg = true;
      config.recvmmsg_set = true;
    } else if (arg == "--tenancy") {
      config.tenancy_file = need_value(i);
    } else if (arg == "--log-level") {
      const auto level = util::parse_log_level(need_value(i));
      if (!level) usage(argv[0]);
      util::set_log_level(*level);
    } else {
      usage(argv[0]);
    }
  }
  if (config.chain.empty() && config.plan_file.empty() &&
      config.tenancy_file.empty()) {
    usage(argv[0]);
  }
  // --shards implies the sharded executor unless one was named.
  if (!config.executor_set && config.shards > 0) {
    config.executor = plan::ExecutorKind::kSharded;
  }
  return config;
}

void SimConfig::validate() const {
  if (!tenancy_file.empty()) {
    // The tenancy document owns everything per tenant (deployment,
    // workload, overload, SLO); a flag that would fight it is an error.
    if (!chain.empty() || !plan_file.empty()) {
      config_error(kTool, "--tenancy already carries every tenant's "
                          "deployment: drop --chain/--plan");
    }
    if (mode_set || executor_set || shards > 0 || platform_set) {
      config_error(kTool, "--tenancy already carries every tenant's "
                          "deployment shape: drop --mode/--executor/"
                          "--shards/--platform");
    }
    if (workload_shape_set || workload != "uniform" || !pcap_in.empty() ||
        !pcap_out.empty()) {
      config_error(kTool, "--tenancy already carries every tenant's "
                          "workload: drop --flows/--packets/--payload/"
                          "--workload/--datacenter/--pcap/--export-pcap");
    }
    if (overload.enabled || drop_policy_set || queue_capacity_set ||
        fault.has_value()) {
      config_error(kTool, "--tenancy tenants carry their own overload/fault "
                          "config in their plans: drop --overload/"
                          "--drop-policy/--queue-capacity/--inject-fault");
    }
    if (autoscale || autoscale_knob_set) {
      config_error(kTool, "--tenancy runs the SLO enforcement loop instead "
                          "of --autoscale: drop it (SLOs live in the spec)");
    }
    if (fail_backend_at >= 0) {
      config_error(kTool, "--fail-backend-at is single-deployment only");
    }
    if (!emit_plan.empty() || print_config) {
      config_error(kTool,
                   "--tenancy does not echo plans: drop "
                   "--emit-plan/--print-config");
    }
    if (listen_set && listen_port != 0) {
      config_error(kTool, "--tenancy listeners bind each tenant's own "
                          "listen_port from the spec: pass --listen 0");
    }
  }
  if (!plan_file.empty()) {
    // The plan document owns the deployment shape; a flag that would fight
    // it is an error, not a silent override.
    if (!chain.empty()) {
      config_error(kTool, "--plan already carries the chain: drop --chain");
    }
    if (mode_set) {
      config_error(kTool, "--plan already carries the mode: drop --mode");
    }
    if (executor_set || shards > 0) {
      config_error(kTool, "--plan already carries the executor shape: drop "
                          "--executor/--shards");
    }
    if (platform_set) {
      config_error(kTool,
                   "--plan already carries the platform: drop --platform");
    }
    if (batch_size_set) {
      config_error(kTool,
                   "--plan already carries the batch size: drop --batch-size");
    }
    if (overload.enabled || drop_policy_set || queue_capacity_set) {
      config_error(kTool, "--plan already carries the overload policy: drop "
                          "--overload/--drop-policy/--queue-capacity");
    }
    if (fault.has_value()) {
      config_error(kTool, "--plan already carries the fault spec: drop "
                          "--inject-fault");
    }
    if (autoscale || autoscale_knob_set) {
      config_error(kTool, "--autoscale is not expressible in a plan document "
                          "yet: drop it (or run from flags)");
    }
  }
  if (!emit_plan.empty()) {
    if (mode_set && run_original && run_speedybox) {
      config_error(kTool, "--emit-plan writes ONE deployment: pass --mode "
                          "original or --mode speedybox (default speedybox)");
    }
    if (print_config) {
      config_error(kTool,
                   "--emit-plan and --print-config both echo and exit: "
                   "pick one");
    }
  }
  if (metrics_interval_ms > 0 && metrics_out.empty()) {
    config_error(kTool, "--metrics-interval needs --metrics-out (the interval "
                        "snapshotter has nowhere to write)");
  }
  if (!pcap_in.empty() && (workload_shape_set || workload != "uniform")) {
    config_error(kTool, "--pcap replaces the generated workload: drop "
                        "--flows/--packets/--payload/--workload/--datacenter");
  }
  if (workload != "uniform" && workload != "datacenter" &&
      !trace::make_named_scenario(workload).has_value()) {
    std::string names = "uniform, datacenter";
    for (const std::string& name : trace::named_scenarios()) {
      names += ", " + name;
    }
    config_error(kTool, "unknown --workload \"" + workload +
                            "\" (choose one of " + names + ")");
  }
  if (!pcap_in.empty() && !pcap_out.empty()) {
    config_error(kTool, "--export-pcap writes the GENERATED workload; with "
                        "--pcap there is nothing to export");
  }
  if (plan_file.empty()) {
    // Executor/mode cross-checks on the flag-built deployment; the --plan
    // path re-checks these against the loaded plan in resolve_plan().
    if (fail_backend_at >= 0 && executor != plan::ExecutorKind::kRunner) {
      config_error(kTool, "--fail-backend-at needs the single-threaded runner "
                          "(mid-run control-plane actions are per-replica)");
    }
    if (shards > 0 && executor != plan::ExecutorKind::kSharded) {
      config_error(kTool, "--shards only applies to --executor sharded");
    }
    if (executor == plan::ExecutorKind::kSharded && shards == 0) {
      config_error(kTool, "--executor sharded needs --shards N");
    }
    if (executor == plan::ExecutorKind::kPipeline &&
        (run_original || !run_speedybox)) {
      config_error(kTool, "--executor pipeline runs the SpeedyBox path only: "
                          "pass --mode speedybox");
    }
    if (executor == plan::ExecutorKind::kOnvm &&
        (run_speedybox || !run_original)) {
      config_error(kTool, "--executor onvm runs the original path only (no "
                          "MATs on the platform layer): pass --mode original");
    }
    if (autoscale && executor != plan::ExecutorKind::kSharded) {
      config_error(kTool, "--autoscale scales the flow-sharded runtime: pass "
                          "--shards N (or --executor sharded)");
    }
    if (autoscale && (run_original || !run_speedybox)) {
      config_error(kTool, "--autoscale migrates flows via the consolidated "
                          "MATs, which the original chain does not build: "
                          "pass --mode speedybox");
    }
  }
  if (!overload.enabled && (drop_policy_set || queue_capacity_set)) {
    config_error(kTool, "--drop-policy/--queue-capacity need --overload (the "
                        "gate does not exist without it)");
  }
  if (!autoscale && autoscale_knob_set) {
    config_error(kTool, "--slo-us/--min-shards/--max-shards/--scale-interval "
                        "need --autoscale (there is no controller without it)");
  }
  if (autoscale) {
    const std::size_t ceiling = max_shards == 0 ? shards : max_shards;
    if (min_shards > ceiling) {
      config_error(kTool, "--min-shards exceeds --max-shards");
    }
    if (shards < min_shards || shards > ceiling) {
      config_error(kTool, "--shards must start inside [--min-shards, "
                          "--max-shards]");
    }
  }
  if (!listen_set &&
      (proto_set || rx_budget_set || idle_timeout_set || recvmmsg_set)) {
    config_error(kTool, "--proto/--rx-budget/--idle-timeout/--recvmmsg need "
                        "--listen (they configure the live front-end, which "
                        "does not exist without it)");
  }
  if (listen_set && !tenancy_file.empty()) {
    return;  // live tenancy mode: the checks below are single-deployment
  }
  if (listen_set) {
    if (!pcap_in.empty()) {
      config_error(kTool, "--listen ingests real wire packets: --pcap would "
                          "be a second packet source (drop one of them)");
    }
    if (workload_shape_set || workload != "uniform") {
      config_error(kTool, "--listen ingests real wire packets: the workload "
                          "lives in the load generator now — drop --flows/"
                          "--packets/--payload/--workload/--datacenter (pass "
                          "them to loadgen instead)");
    }
    if (!pcap_out.empty()) {
      config_error(kTool, "--export-pcap writes the GENERATED workload; with "
                          "--listen there is nothing to export");
    }
    if (fail_backend_at >= 0) {
      config_error(kTool, "--fail-backend-at fires at a trace packet index, "
                          "which live mode does not have");
    }
    if (plan_file.empty() && run_original && run_speedybox) {
      config_error(kTool, "--listen drives ONE live data path: pass --mode "
                          "original or --mode speedybox");
    }
    if (autoscale) {
      config_error(kTool, "--autoscale is trace-driven for now; live mode "
                          "does not support it yet");
    }
  }
}

void SimConfig::resolve_plan() {
  if (!tenancy_file.empty()) return;  // per-tenant plans live in the spec
  if (!plan_file.empty()) {
    std::ifstream in(plan_file, std::ios::binary);
    if (!in) {
      config_error(kTool, "--plan: cannot read " + plan_file);
    }
    const std::string text{std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>()};
    try {
      deployment = plan::DeploymentPlan::parse(text);
      deployment->validate();
    } catch (const std::exception& error) {
      config_error(kTool, "--plan " + plan_file + ": " + error.what());
    }
  } else {
    plan::DeploymentPlan built;
    try {
      std::string joined;
      for (const std::string& token : chain) {
        if (!joined.empty()) joined += ",";
        joined += token;
      }
      built.chain = plan::ChainSpec::parse(joined, "chainsim");
      built.executor = executor;
      // For --mode both this is the speedybox leg; plan_for() re-targets
      // per run. validate() already pinned pipeline/onvm to one mode.
      built.speedybox = run_speedybox;
      built.platform = platform;
      built.batch_size = batch_size;
      built.shards = shards;
      built.overload = overload;
      built.fault = fault;
      built.validate();
    } catch (const std::exception& error) {
      config_error(kTool, error.what());
    }
    deployment = std::move(built);
  }
  // Mirror the deployment into the flag-shaped fields so the echo, the
  // reports and the run loop all read one source of truth.
  const plan::DeploymentPlan& resolved = *deployment;
  chain.clear();
  for (const nf::NfSpec& nf : resolved.chain.nfs) {
    chain.push_back(nf.to_string());
  }
  platform = resolved.platform;
  if (!plan_file.empty()) {
    run_original = !resolved.speedybox;
    run_speedybox = resolved.speedybox;
  }
  executor = resolved.executor;
  shards = resolved.shards;
  batch_size = resolved.batch_size;
  overload = resolved.overload;
  fault = resolved.fault;
  // Cross-checks that needed the resolved executor (the flag path already
  // ran them in validate()).
  if (fail_backend_at >= 0 && executor != plan::ExecutorKind::kRunner) {
    config_error(kTool,
                 std::string("--fail-backend-at needs the single-threaded "
                             "runner, but the plan chose executor \"") +
                     plan::executor_kind_name(executor) + "\"");
  }
}

plan::DeploymentPlan SimConfig::plan_for(bool speedybox) const {
  if (!deployment.has_value()) {
    config_error(kTool, "internal: plan_for() before resolve_plan()");
  }
  plan::DeploymentPlan retargeted = *deployment;
  retargeted.speedybox = speedybox;
  return retargeted;
}

std::string SimConfig::to_json() const {
  std::string json = "{";
  const auto field = [&](const char* key, const std::string& value,
                         bool quote) {
    if (json.size() > 1) json += ",";
    json += "\"";
    json += key;
    json += "\":";
    if (quote) json += "\"";
    json += value;
    if (quote) json += "\"";
  };
  std::string chain_list;
  for (const std::string& name : chain) {
    if (!chain_list.empty()) chain_list += ",";
    chain_list += "\"" + name + "\"";
  }
  field("chain", "[" + chain_list + "]", false);
  if (!plan_file.empty()) field("plan", plan_file, true);
  field("platform", platform_name(platform), true);
  field("mode",
        run_original && run_speedybox
            ? "both"
            : (run_speedybox ? "speedybox" : "original"),
        true);
  field("executor", plan::executor_kind_name(executor), true);
  if (listen_set) {
    field("listen", std::to_string(listen_port), false);
    field("proto", io::ingest_proto_name(listen_proto), true);
    field("rx_budget", std::to_string(rx_budget), false);
    field("idle_timeout_ms", std::to_string(idle_timeout_ms), false);
  } else if (pcap_in.empty()) {
    field("workload", workload, true);
    field("flows", std::to_string(flows), false);
    field("packets_per_flow", std::to_string(packets_per_flow), false);
    field("payload", std::to_string(payload), false);
    field("seed", std::to_string(seed), false);
  } else {
    field("pcap", pcap_in, true);
  }
  if (!pcap_out.empty()) field("export_pcap", pcap_out, true);
  field("shards", std::to_string(shards), false);
  field("batch_size", std::to_string(batch_size), false);
  if (fail_backend_at >= 0) {
    field("fail_backend_at", std::to_string(fail_backend_at), false);
  }
  field("autoscale", autoscale ? "true" : "false", false);
  if (autoscale) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%g", slo_us);
    field("slo_us", buffer, false);
    field("min_shards", std::to_string(min_shards), false);
    field("max_shards",
          std::to_string(max_shards == 0 ? shards : max_shards), false);
    field("scale_interval", std::to_string(scale_interval), false);
  }
  field("overload", overload.enabled ? "true" : "false", false);
  if (overload.enabled) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%g", overload.offered_load);
    field("offered_load", buffer, false);
    field("drop_policy",
          std::string(runtime::drop_policy_name(overload.policy)), true);
    field("queue_capacity", std::to_string(overload.queue_capacity), false);
  }
  if (fault.has_value()) {
    field("inject_fault", fault->first + ":" + fault->second.to_string(),
          true);
  }
  if (!metrics_out.empty()) field("metrics_out", metrics_out, true);
  if (!metrics_prom.empty()) field("metrics_prom", metrics_prom, true);
  if (metrics_interval_ms > 0) {
    field("metrics_interval_ms", std::to_string(metrics_interval_ms), false);
  }
  if (trace_sample > 0) {
    field("trace_sample", std::to_string(trace_sample), false);
  }
  json += "}";
  return json;
}

}  // namespace speedybox::tools
