#!/usr/bin/env bash
# Closed-loop live-ingestion smoke: start `chainsim --listen 0` on an
# ephemeral port, replay a workload into it with `loadgen`, and check the
# frame-conservation identity end to end across the process boundary:
#
#   sent == admitted + shed + parse_errors + socket_drops
#
# with `sent` counted by the load generator and the right-hand side by the
# receiver (chainsim's {"live":...} summary line). Runs both §VII-C
# evaluation chains plus the DoS chain under a syn-flood, over UDP and
# TCP. This is the CI `live-ingest-smoke` job; run it locally the same
# way:
#
#   tools/live_smoke.sh [build_dir]    (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
CHAINSIM="${BUILD}/tools/chainsim"
LOADGEN="${BUILD}/tools/loadgen"
[ -x "${CHAINSIM}" ] || { echo "missing ${CHAINSIM} (build chainsim first)" >&2; exit 2; }
[ -x "${LOADGEN}" ] || { echo "missing ${LOADGEN} (build loadgen first)" >&2; exit 2; }

failures=0

run_case() {
  local name="$1" chain="$2" proto="$3" workload="$4"
  echo "--- live smoke: ${name} (--chain ${chain}, ${proto}, ${workload})"
  local out
  out="$(mktemp)"
  "${CHAINSIM}" --chain "${chain}" --mode speedybox \
    --listen 0 --proto "${proto}" --idle-timeout 2000 > "${out}" &
  local pid=$!
  # The bound ephemeral port is announced before serve() blocks.
  local port=""
  for _ in $(seq 1 200); do
    port="$(sed -n 's/^chainsim: listening on [a-z]* 127\.0\.0\.1:\([0-9]*\).*/\1/p' "${out}")"
    [ -n "${port}" ] && break
    kill -0 "${pid}" 2>/dev/null || break
    sleep 0.05
  done
  if [ -z "${port}" ]; then
    echo "FAIL ${name}: chainsim never announced a port" >&2
    cat "${out}" >&2
    kill "${pid}" 2>/dev/null || true
    failures=$((failures + 1))
    return
  fi
  local gen_json
  if ! gen_json="$("${LOADGEN}" --port "${port}" --proto "${proto}" \
                     --workload "${workload}")"; then
    echo "FAIL ${name}: loadgen reported send errors" >&2
    kill "${pid}" 2>/dev/null || true
    failures=$((failures + 1))
    return
  fi
  local rc=0
  wait "${pid}" || rc=$?
  if [ "${rc}" -ne 0 ]; then
    echo "FAIL ${name}: chainsim exited ${rc} (conservation violated)" >&2
    cat "${out}" >&2
    failures=$((failures + 1))
    return
  fi
  if ! python3 - "${out}" "${gen_json}" <<'PYEOF'
import json
import sys

live = None
for line in open(sys.argv[1]):
    line = line.strip()
    if line.startswith('{"live"'):
        live = json.loads(line)["live"]
gen = json.loads(sys.argv[2])["loadgen"]
if live is None:
    sys.exit("no {\"live\":...} summary line in chainsim output")
if not live["conserved"]:
    sys.exit(f"receiver-side conservation violated: {live}")
sent = gen["sent"]
accounted = (live["admitted"] + live["shed"] + live["parse_errors"]
             + live["socket_drops"])
if sent == 0:
    sys.exit("loadgen sent nothing")
if sent != accounted:
    sys.exit(f"conservation violated across the wire: sent={sent} != "
             f"admitted={live['admitted']} + shed={live['shed']} + "
             f"parse_errors={live['parse_errors']} + "
             f"socket_drops={live['socket_drops']}")
print(f"    ok: sent={sent} admitted={live['admitted']} "
      f"shed={live['shed']} parse_errors={live['parse_errors']} "
      f"socket_drops={live['socket_drops']} "
      f"chain_drops={live['chain_drops']}")
PYEOF
  then
    failures=$((failures + 1))
    return
  fi
  rm -f "${out}"
}

# §VII-C Chain 1 (gateway) over UDP, Chain 2 (inspection) over TCP, and
# the syn-flood acceptance scenario through the DoS chain.
run_case gateway nat,maglev,monitor,ipfilter udp datacenter
run_case inspection ipfilter,snort,monitor tcp datacenter
run_case synflood dos,monitor udp syn-flood

if [ "${failures}" -ne 0 ]; then
  echo "live smoke: ${failures} case(s) FAILED" >&2
  exit 1
fi
echo "live smoke: all cases conserved"
