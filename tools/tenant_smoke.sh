#!/usr/bin/env bash
# Multi-tenant hosting smoke (DESIGN.md §14), two closed loops:
#
#  1. In-process adversarial case: a well-behaved tenant with a tight SLO
#     shares the host with a syn-flood tenant. chainsim --tenancy must
#     conserve every packet per tenant AND the arbiter must land all
#     enforcement on the offender: victim gate untouched (zero shed,
#     ladder at L0), flood tightened (escalation >= L1, shed > 0).
#
#  2. Live case over real loopback sockets with the batched receive path
#     (--recvmmsg): two tenants on ephemeral UDP ports, loadgen fans a
#     workload across both with per-tenant pacing, and the frame ledger
#     must close across the process boundary per tenant:
#
#       sent == offered + parse_errors + socket_drops
#
# This is the CI `tenant-smoke` job; run it locally the same way:
#
#   tools/tenant_smoke.sh [build_dir]    (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
CHAINSIM="${BUILD}/tools/chainsim"
LOADGEN="${BUILD}/tools/loadgen"
[ -x "${CHAINSIM}" ] || { echo "missing ${CHAINSIM} (build chainsim first)" >&2; exit 2; }
[ -x "${LOADGEN}" ] || { echo "missing ${LOADGEN} (build loadgen first)" >&2; exit 2; }

workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT
failures=0

# --- case 1: in-process adversarial tenant -------------------------------
echo "--- tenant smoke: adversarial (in-process, SLO enforcement)"
cat > "${workdir}/adversarial.json" <<'EOF'
{"version": 1, "name": "smoke-adversarial", "tenants": [
  {"id": "victim", "slo_us": 0.001,
   "plan": {"chain": {"nfs": ["nat", "monitor"]},
            "executor": "sharded", "shards": 2},
   "workload": {"kind": "uniform", "flows": 50, "packets_per_flow": 16,
                "seed": 11}},
  {"id": "flood", "slo_us": 1000000000,
   "plan": {"chain": {"nfs": ["ipfilter", "monitor"]},
            "executor": "runner"},
   "workload": {"kind": "syn-flood", "seed": 12, "repeat": 2}}],
 "enforcement": {"window_packets": 256, "breach_streak": 1,
                 "cooldown_windows": 0, "min_budget": 16,
                 "reallocate_shards": false}}
EOF
if "${CHAINSIM}" --tenancy "${workdir}/adversarial.json" \
     > "${workdir}/adversarial.out"; then
  if ! python3 - "${workdir}/adversarial.out" <<'PYEOF'
import json
import sys

tenants = {}
summary = None
for line in open(sys.argv[1]):
    line = line.strip()
    if line.startswith('{"tenant"'):
        t = json.loads(line)["tenant"]
        tenants[t["id"]] = t
    elif line.startswith('{"tenancy"'):
        summary = json.loads(line)["tenancy"]
if summary is None or not summary["conserved"]:
    sys.exit(f"host summary missing or not conserved: {summary}")
victim, flood = tenants["victim"], tenants["flood"]
for t in (victim, flood):
    if not t["conserved"]:
        sys.exit(f"tenant {t['id']} ledger violated: {t}")
if victim["gate_shed"] != 0 or victim["max_escalation"] != 0:
    sys.exit(f"arbiter touched the victim: {victim}")
if flood["max_escalation"] < 1 or flood["gate_shed"] == 0:
    sys.exit(f"arbiter never tightened the flood: {flood}")
print(f"    ok: victim delivered={victim['delivered']} untouched; "
      f"flood shed={flood['gate_shed']} at L{flood['max_escalation']}")
PYEOF
  then
    cat "${workdir}/adversarial.out" >&2
    failures=$((failures + 1))
  fi
else
  echo "FAIL adversarial: chainsim --tenancy exited non-zero" >&2
  cat "${workdir}/adversarial.out" >&2
  failures=$((failures + 1))
fi

# --- case 2: live two-tenant loop over loopback UDP (--recvmmsg) ---------
echo "--- tenant smoke: live (two tenants, loadgen fan-out, recvmmsg)"
cat > "${workdir}/live.json" <<'EOF'
{"version": 1, "name": "smoke-live", "tenants": [
  {"id": "alpha", "slo_us": 1000000000,
   "plan": {"chain": {"nfs": ["nat", "monitor"]},
            "executor": "sharded", "shards": 1},
   "workload": {"kind": "uniform", "flows": 50, "packets_per_flow": 20,
                "seed": 21}},
  {"id": "bravo", "slo_us": 1000000000,
   "plan": {"chain": {"nfs": ["ipfilter", "monitor"]},
            "executor": "runner"},
   "workload": {"kind": "uniform", "flows": 50, "packets_per_flow": 20,
                "seed": 22}}]}
EOF
"${CHAINSIM}" --tenancy "${workdir}/live.json" --listen 0 \
  --idle-timeout 2000 --recvmmsg > "${workdir}/live.out" &
pid=$!
ports=""
for _ in $(seq 1 200); do
  ports="$(sed -n \
    's/^chainsim: tenant [a-z]* listening on udp 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
    "${workdir}/live.out" | paste -sd, -)"
  [ "$(echo "${ports}" | tr -cd , | wc -c)" = "1" ] && break
  kill -0 "${pid}" 2>/dev/null || break
  sleep 0.05
done
if [ "$(echo "${ports}" | tr -cd , | wc -c)" != "1" ]; then
  echo "FAIL live: chainsim never announced both tenant ports" >&2
  cat "${workdir}/live.out" >&2
  kill "${pid}" 2>/dev/null || true
  failures=$((failures + 1))
else
  if gen_json="$("${LOADGEN}" --tenants 2 --ports "${ports}" \
                   --rate 20000,20000 --flows 50 --packets 20)"; then
    rc=0
    wait "${pid}" || rc=$?
    if [ "${rc}" -ne 0 ]; then
      echo "FAIL live: chainsim exited ${rc} (conservation violated)" >&2
      cat "${workdir}/live.out" >&2
      failures=$((failures + 1))
    elif ! python3 - "${workdir}/live.out" "${gen_json}" <<'PYEOF'
import json
import sys

tenants = {}
summary = None
for line in open(sys.argv[1]):
    line = line.strip()
    if line.startswith('{"tenant"'):
        t = json.loads(line)["tenant"]
        tenants[t["udp_port"]] = t
    elif line.startswith('{"tenancy"'):
        summary = json.loads(line)["tenancy"]
if summary is None or summary["mode"] != "live" or not summary["conserved"]:
    sys.exit(f"live summary missing or not conserved: {summary}")
sent = {}
for line in sys.argv[2].splitlines():
    line = line.strip()
    if line.startswith('{"loadgen":'):
        g = json.loads(line)["loadgen"]
        sent[g["port"]] = g["sent"]
if len(sent) != 2 or len(tenants) != 2:
    sys.exit(f"expected 2 tenants each side: sent={sent} "
             f"tenants={sorted(tenants)}")
for port, t in sorted(tenants.items()):
    if sent.get(port, 0) == 0:
        sys.exit(f"loadgen sent nothing to port {port}")
    accounted = t["offered"] + t["parse_errors"] + t["socket_drops"]
    if sent[port] != accounted:
        sys.exit(f"tenant {t['id']} wire ledger violated: "
                 f"sent={sent[port]} != offered={t['offered']} + "
                 f"parse_errors={t['parse_errors']} + "
                 f"socket_drops={t['socket_drops']}")
    print(f"    ok: tenant {t['id']} port {port} sent={sent[port]} "
          f"offered={t['offered']} forwarded={t['forwarded']} "
          f"chain_drops={t['chain_drops']}")
PYEOF
    then
      failures=$((failures + 1))
    fi
  else
    echo "FAIL live: loadgen reported send errors" >&2
    kill "${pid}" 2>/dev/null || true
    failures=$((failures + 1))
  fi
fi

if [ "${failures}" -ne 0 ]; then
  echo "tenant smoke: ${failures} case(s) FAILED" >&2
  exit 1
fi
echo "tenant smoke: all cases conserved and isolated"
