// bench_gate — the perf-regression gate CLI (DESIGN.md §11).
//
//   bench_gate BASELINE.json CANDIDATE.json [options]
//
// Validates both documents against the shared BENCH_*.json schema
// (bench/bench_schema.hpp), matches gated baseline rows to candidate rows
// by identity key, and fails (exit 1) on fast-path-rate loss or p99 growth
// beyond the per-cell tolerance. Exit 2 = usage / unreadable input.
//
// Options:
//   --rate-tolerance FRAC   default rate-loss tolerance    (default 0.10)
//   --p99-tolerance FRAC    default p99-growth tolerance   (default 0.25)
//   --allow-missing-rows    don't fail when a gated baseline row has no
//                           candidate counterpart
//   --expect-fail           invert the verdict: exit 0 iff the gate FAILS
//                           (CI's handicap self-test: a deliberately slowed
//                           run must trip the gate)
//   --quiet                 print failures only
//
// Baseline refresh workflow: see EXPERIMENTS.md ("Regression gate").
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "bench_schema.hpp"
#include "telemetry/json.hpp"

namespace {

std::optional<speedybox::telemetry::Json> load(const char* path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    std::fprintf(stderr, "bench_gate: cannot open %s\n", path);
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto parsed = speedybox::telemetry::Json::parse(buffer.str());
  if (!parsed) {
    std::fprintf(stderr, "bench_gate: %s is not valid JSON\n", path);
  }
  return parsed;
}

int usage() {
  std::fprintf(stderr,
               "usage: bench_gate BASELINE.json CANDIDATE.json\n"
               "  [--rate-tolerance FRAC] [--p99-tolerance FRAC]\n"
               "  [--allow-missing-rows] [--expect-fail] [--quiet]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const char* baseline_path = nullptr;
  const char* candidate_path = nullptr;
  speedybox::bench::GateConfig config;
  bool expect_fail = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--rate-tolerance") == 0 && i + 1 < argc) {
      config.rate_loss_tolerance = std::atof(argv[++i]);
    } else if (std::strcmp(arg, "--p99-tolerance") == 0 && i + 1 < argc) {
      config.p99_growth_tolerance = std::atof(argv[++i]);
    } else if (std::strcmp(arg, "--allow-missing-rows") == 0) {
      config.require_all_rows = false;
    } else if (std::strcmp(arg, "--expect-fail") == 0) {
      expect_fail = true;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else if (arg[0] == '-') {
      return usage();
    } else if (baseline_path == nullptr) {
      baseline_path = arg;
    } else if (candidate_path == nullptr) {
      candidate_path = arg;
    } else {
      return usage();
    }
  }
  if (baseline_path == nullptr || candidate_path == nullptr) return usage();

  const auto baseline = load(baseline_path);
  const auto candidate = load(candidate_path);
  if (!baseline || !candidate) return 2;

  const speedybox::bench::GateReport report =
      speedybox::bench::gate_compare(*baseline, *candidate, config);

  for (const speedybox::bench::GateFinding& finding : report.findings) {
    if (quiet && finding.ok) continue;
    std::printf("%s  [%s] %s\n", finding.ok ? "  ok " : " FAIL",
                finding.row.c_str(), finding.message.c_str());
  }
  std::printf("bench_gate: %d rows compared, %d missing, %d failures -> %s\n",
              report.rows_compared, report.rows_missing, report.failures,
              report.pass() ? "PASS" : "FAIL");

  if (expect_fail) {
    if (report.pass()) {
      std::fprintf(stderr,
                   "bench_gate: --expect-fail but the gate PASSED — the "
                   "regression was not detected\n");
      return 1;
    }
    std::printf("bench_gate: --expect-fail satisfied (gate correctly "
                "rejected the candidate)\n");
    return 0;
  }
  return report.pass() ? 0 : 1;
}
