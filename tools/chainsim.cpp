// chainsim — build a service chain from a spec string, drive it with a
// generated workload or a pcap, and report original-vs-SpeedyBox results.
//
//   chainsim --chain nat,maglev,monitor,ipfilter --flows 200 --packets 20
//   chainsim --chain ipfilter,snort,monitor --datacenter --csv
//   chainsim --chain nat,monitor --pcap capture.pcap
//   chainsim --chain maglev,monitor --fail-backend-at 1000
//   chainsim --chain vpn-out,monitor,vpn-in --export-pcap tunnel.pcap
//
// Available NFs: nat, maglev, monitor, heavymonitor, ipfilter, firewall
// (drops dst port 23), snort, gateway, vpn-out, vpn-in, dos, synthetic.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "nf/dos_prevention.hpp"
#include "nf/gateway.hpp"
#include "nf/ip_filter.hpp"
#include "nf/maglev_lb.hpp"
#include "nf/mazu_nat.hpp"
#include "nf/monitor.hpp"
#include "nf/snort_ids.hpp"
#include "nf/synthetic_nf.hpp"
#include "nf/vpn_gateway.hpp"
#include "runtime/runner.hpp"
#include "runtime/sharded_runtime.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "trace/payload_synth.hpp"
#include "trace/pcap.hpp"
#include "util/cycle_clock.hpp"
#include "util/logging.hpp"

using namespace speedybox;

namespace {

struct Options {
  std::vector<std::string> chain;
  platform::PlatformKind platform = platform::PlatformKind::kBess;
  bool run_original = true;
  bool run_speedybox = true;
  std::size_t flows = 100;
  std::uint32_t packets_per_flow = 20;
  std::size_t payload = 128;
  bool datacenter = false;
  double snort_match_fraction = 0.2;
  std::string pcap_in;
  std::string pcap_out;
  std::uint64_t seed = 42;
  long fail_backend_at = -1;  // packet index at which backend 0 dies
  bool csv = false;
  std::size_t shards = 0;  // 0 = single-threaded ChainRunner
  std::size_t batch_size = net::kDefaultBatchSize;
  std::string metrics_out;         // JSON-lines snapshot file
  std::string metrics_prom;        // Prometheus text file (overwritten)
  long metrics_interval_ms = 0;    // 0 = final snapshot only
  std::uint32_t trace_sample = 0;  // 1-in-N packet span sampling (0 = off)
};

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s --chain nf1,nf2,... [options]\n"
      "\n"
      "NFs: nat maglev monitor heavymonitor ipfilter firewall snort\n"
      "     gateway vpn-out vpn-in dos synthetic\n"
      "\n"
      "options:\n"
      "  --platform bess|onvm       execution platform model (default bess)\n"
      "  --mode original|speedybox|both   which data path(s) to run\n"
      "  --flows N --packets N --payload N   uniform workload shape\n"
      "  --datacenter               heavy-tailed datacenter-style workload\n"
      "  --pcap FILE                drive the chain from a pcap capture\n"
      "  --export-pcap FILE         write the generated workload as pcap\n"
      "  --fail-backend-at K        fail Maglev backend 0 before packet K\n"
      "  --shards N                 run on the flow-sharded runtime with N\n"
      "                             chain replicas (one worker thread each)\n"
      "  --batch-size N             burst size the data path drains in\n"
      "                             (default 32; 1 = packet-at-a-time)\n"
      "  --seed N                   workload seed (default 42)\n"
      "  --csv                      machine-readable one-line-per-config\n"
      "  --metrics-out FILE         append a JSON telemetry snapshot line\n"
      "  --metrics-prom FILE        write a Prometheus text snapshot\n"
      "  --metrics-interval MS      also snapshot every MS ms (JSON-lines,\n"
      "                             background thread; needs --metrics-out)\n"
      "  --trace-sample N           record full packet spans for 1-in-N\n"
      "                             flows (exported with --metrics-out)\n"
      "  --log-level LEVEL          debug|info|warn|error|off\n",
      argv0);
  std::exit(2);
}

Options parse_options(int argc, char** argv) {
  Options options;
  const auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--chain") {
      std::string spec = need_value(i);
      std::size_t start = 0;
      while (start <= spec.size()) {
        const std::size_t comma = spec.find(',', start);
        const std::string name =
            spec.substr(start, comma == std::string::npos ? std::string::npos
                                                          : comma - start);
        if (!name.empty()) options.chain.push_back(name);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (arg == "--platform") {
      const std::string value = need_value(i);
      if (value == "bess") {
        options.platform = platform::PlatformKind::kBess;
      } else if (value == "onvm") {
        options.platform = platform::PlatformKind::kOnvm;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--mode") {
      const std::string value = need_value(i);
      options.run_original = value == "original" || value == "both";
      options.run_speedybox = value == "speedybox" || value == "both";
      if (!options.run_original && !options.run_speedybox) usage(argv[0]);
    } else if (arg == "--flows") {
      options.flows = std::strtoul(need_value(i), nullptr, 10);
    } else if (arg == "--packets") {
      options.packets_per_flow =
          static_cast<std::uint32_t>(std::strtoul(need_value(i), nullptr, 10));
    } else if (arg == "--payload") {
      options.payload = std::strtoul(need_value(i), nullptr, 10);
    } else if (arg == "--datacenter") {
      options.datacenter = true;
    } else if (arg == "--pcap") {
      options.pcap_in = need_value(i);
    } else if (arg == "--export-pcap") {
      options.pcap_out = need_value(i);
    } else if (arg == "--fail-backend-at") {
      options.fail_backend_at = std::strtol(need_value(i), nullptr, 10);
    } else if (arg == "--shards") {
      const char* value = need_value(i);
      char* end = nullptr;
      options.shards = std::strtoul(value, &end, 10);
      if (end == value || *end != '\0') usage(argv[0]);
    } else if (arg == "--batch-size") {
      const char* value = need_value(i);
      char* end = nullptr;
      options.batch_size = std::strtoul(value, &end, 10);
      if (end == value || *end != '\0' || options.batch_size == 0) {
        usage(argv[0]);
      }
    } else if (arg == "--seed") {
      options.seed = std::strtoull(need_value(i), nullptr, 10);
    } else if (arg == "--csv") {
      options.csv = true;
    } else if (arg == "--metrics-out") {
      options.metrics_out = need_value(i);
    } else if (arg == "--metrics-prom") {
      options.metrics_prom = need_value(i);
    } else if (arg == "--metrics-interval") {
      options.metrics_interval_ms = std::strtol(need_value(i), nullptr, 10);
    } else if (arg == "--trace-sample") {
      options.trace_sample =
          static_cast<std::uint32_t>(std::strtoul(need_value(i), nullptr, 10));
    } else if (arg == "--log-level") {
      const auto level = util::parse_log_level(need_value(i));
      if (!level) usage(argv[0]);
      util::set_log_level(*level);
    } else {
      usage(argv[0]);
    }
  }
  if (options.chain.empty()) usage(argv[0]);
  if (options.shards > 0 && options.fail_backend_at >= 0) {
    std::fprintf(stderr,
                 "--fail-backend-at is not supported with --shards "
                 "(mid-run control-plane actions are per-replica)\n");
    std::exit(2);
  }
  return options;
}

struct BuiltChain {
  std::unique_ptr<runtime::ServiceChain> chain;
  nf::MaglevLb* maglev = nullptr;  // for --fail-backend-at
};

BuiltChain build_chain(const Options& options) {
  BuiltChain built;
  built.chain = std::make_unique<runtime::ServiceChain>("chainsim");
  int index = 0;
  for (const std::string& name : options.chain) {
    const std::string label = name + "-" + std::to_string(index++);
    if (name == "nat") {
      built.chain->emplace_nf<nf::MazuNat>(nf::MazuNatConfig{}, label);
    } else if (name == "maglev") {
      std::vector<nf::Backend> backends;
      for (int b = 0; b < 4; ++b) {
        backends.push_back({"backend-" + std::to_string(b),
                            net::Ipv4Addr{10, 9, 0,
                                          static_cast<std::uint8_t>(10 + b)},
                            8080, true});
      }
      built.maglev = &built.chain->emplace_nf<nf::MaglevLb>(
          backends, std::size_t{65537}, label);
    } else if (name == "monitor") {
      built.chain->emplace_nf<nf::Monitor>(nf::MonitorConfig{}, label);
    } else if (name == "heavymonitor") {
      built.chain->emplace_nf<nf::Monitor>(nf::MonitorConfig::heavy(), label);
    } else if (name == "ipfilter") {
      built.chain->emplace_nf<nf::IpFilter>(std::vector<nf::AclRule>{},
                                            label);
    } else if (name == "firewall") {
      built.chain->emplace_nf<nf::IpFilter>(
          std::vector<nf::AclRule>{nf::AclRule::drop_dst_port(23)}, label);
    } else if (name == "snort") {
      built.chain->emplace_nf<nf::SnortIds>(trace::default_snort_rules(),
                                            label);
    } else if (name == "gateway") {
      built.chain->emplace_nf<nf::Gateway>(
          std::vector<nf::TrafficClass>{{5060, 5061, 46}}, label);
    } else if (name == "vpn-out") {
      built.chain->emplace_nf<nf::VpnGateway>(nf::VpnMode::kEgress, 0x1000u,
                                              label);
    } else if (name == "vpn-in") {
      built.chain->emplace_nf<nf::VpnGateway>(nf::VpnMode::kIngress, 0x1000u,
                                              label);
    } else if (name == "dos") {
      built.chain->emplace_nf<nf::DosPrevention>(
          100, core::HeaderAction::forward(), label);
    } else if (name == "synthetic") {
      built.chain->emplace_nf<nf::SyntheticNf>(nf::SyntheticNfConfig{},
                                               label);
    } else {
      std::fprintf(stderr, "unknown NF '%s'\n", name.c_str());
      std::exit(2);
    }
  }
  return built;
}

std::vector<net::Packet> build_packets(const Options& options) {
  if (!options.pcap_in.empty()) {
    return trace::read_pcap(options.pcap_in);
  }
  trace::Workload workload;
  if (options.datacenter) {
    trace::DatacenterWorkloadConfig config;
    config.flow_count = options.flows;
    config.payload_size = options.payload;
    config.seed = options.seed;
    workload = make_datacenter_workload(config);
  } else {
    workload = trace::make_uniform_workload(
        options.flows, options.packets_per_flow, options.payload,
        options.seed);
  }
  // Plant Snort rule contents whenever the chain contains an IDS.
  trace::PayloadSynthConfig synth;
  synth.match_fraction = options.snort_match_fraction;
  synth.seed = options.seed ^ 0x5EED;
  plant_rule_contents(workload, trace::default_snort_rules(), synth);

  if (!options.pcap_out.empty()) {
    write_pcap(options.pcap_out, workload);
    std::fprintf(stderr, "wrote %zu packets to %s\n",
                 workload.packet_count(), options.pcap_out.c_str());
  }
  std::vector<net::Packet> packets;
  packets.reserve(workload.packet_count());
  for (std::size_t i = 0; i < workload.packet_count(); ++i) {
    packets.push_back(workload.materialize(i));
  }
  return packets;
}

void report(const Options& options, const char* mode,
            const runtime::RunStats& stats) {
  const double p50_lat = stats.latency_us_subsequent.count() > 0
                             ? stats.latency_us_subsequent.percentile(50)
                             : 0.0;
  const double p99_lat = stats.latency_us_subsequent.count() > 0
                             ? stats.latency_us_subsequent.percentile(99)
                             : 0.0;
  const double cycles = stats.platform_cycles_subsequent.count() > 0
                            ? stats.platform_cycles_subsequent.percentile(50)
                            : 0.0;
  const double rate = stats.rate_mpps(options.platform);
  if (options.csv) {
    std::printf("%s,%s,%llu,%llu,%llu,%.0f,%.3f,%.3f,%.3f\n",
                platform_name(options.platform), mode,
                static_cast<unsigned long long>(stats.packets),
                static_cast<unsigned long long>(stats.drops),
                static_cast<unsigned long long>(stats.events_triggered),
                cycles, p50_lat, p99_lat, rate);
    return;
  }
  std::printf("%-9s %-10s packets=%-8llu drops=%-6llu events=%-4llu "
              "cyc/pkt(p50)=%-6.0f lat(p50/p99)=%.3f/%.3f us  rate=%.3f "
              "Mpps\n",
              platform_name(options.platform), mode,
              static_cast<unsigned long long>(stats.packets),
              static_cast<unsigned long long>(stats.drops),
              static_cast<unsigned long long>(stats.events_triggered),
              cycles, p50_lat, p99_lat, rate);
}

void run_mode(const Options& options, bool speedybox,
              const std::vector<net::Packet>& packets,
              telemetry::Registry* registry) {
  BuiltChain built = build_chain(options);
  runtime::RunConfig config{options.platform, speedybox, false};
  config.batch_size = options.batch_size;
  const std::string mode = speedybox ? "speedybox" : "original";

  if (options.shards > 0) {
    runtime::ShardedRuntime sharded{*built.chain, options.shards,
                                    config,       1024,
                                    registry,     mode + "/"};
    const runtime::ShardedRunResult result = sharded.run_packets(packets);
    const std::string label = mode + " x" + std::to_string(options.shards);
    report(options, label.c_str(), result.stats);
    if (!options.csv) {
      std::printf("  shards: agg-rate=%.3f Mpps, wall=%.1f ms, "
                  "backpressure-waits=%llu, per-shard packets = [",
                  result.aggregate_rate_mpps, result.wall_seconds * 1e3,
                  static_cast<unsigned long long>(
                      sharded.backpressure_waits()));
      for (std::size_t s = 0; s < result.shard_packets.size(); ++s) {
        std::printf("%s%llu", s == 0 ? "" : ", ",
                    static_cast<unsigned long long>(
                        result.shard_packets[s]));
      }
      std::printf("]\n");
    }
    return;
  }

  runtime::ChainRunner runner{*built.chain, config};
  if (registry != nullptr) {
    runner.set_telemetry(
        &registry->create_shard(mode + "/main", built.chain->nf_names()));
  }
  if (options.fail_backend_at < 0) {
    runner.run_packets(packets);
  } else {
    for (std::size_t i = 0; i < packets.size(); ++i) {
      if (static_cast<long>(i) == options.fail_backend_at &&
          built.maglev != nullptr) {
        built.maglev->fail_backend(0);
      }
      net::Packet packet = packets[i];
      packet.reset_metadata();
      runner.process_packet(packet);
    }
  }
  report(options, mode.c_str(), runner.stats());
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_options(argc, argv);
  const std::vector<net::Packet> packets = build_packets(options);

  // One registry for the whole process; the two modes (and their shards)
  // disambiguate through shard labels ("original/shard0", "speedybox/main").
  std::unique_ptr<telemetry::Registry> registry;
  std::optional<telemetry::Snapshotter> snapshotter;
  if (!options.metrics_out.empty() || !options.metrics_prom.empty() ||
      options.trace_sample > 0) {
    registry = std::make_unique<telemetry::Registry>(options.trace_sample);
    if (options.metrics_interval_ms > 0 && !options.metrics_out.empty()) {
      snapshotter.emplace(
          *registry, options.metrics_out,
          std::chrono::milliseconds(options.metrics_interval_ms));
    }
  }

  if (options.csv) {
    std::printf(
        "platform,mode,packets,drops,events,cycles_p50,lat_p50_us,"
        "lat_p99_us,rate_mpps\n");
  }
  if (options.run_original) {
    run_mode(options, false, packets, registry.get());
  }
  if (options.run_speedybox) {
    run_mode(options, true, packets, registry.get());
  }

  if (registry != nullptr) {
    if (snapshotter) {
      snapshotter->stop();  // writes the final JSON-lines snapshot
    } else if (!options.metrics_out.empty()) {
      if (!telemetry::append_line(options.metrics_out,
                                  to_json(registry->snapshot()))) {
        std::fprintf(stderr, "failed to write %s\n",
                     options.metrics_out.c_str());
        return 1;
      }
    }
    if (!options.metrics_prom.empty()) {
      const std::string text = to_prometheus(registry->snapshot());
      std::FILE* file = std::fopen(options.metrics_prom.c_str(), "w");
      if (file == nullptr ||
          std::fwrite(text.data(), 1, text.size(), file) != text.size() ||
          std::fclose(file) != 0) {
        std::fprintf(stderr, "failed to write %s\n",
                     options.metrics_prom.c_str());
        return 1;
      }
    }
  }
  return 0;
}
