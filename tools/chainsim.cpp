// chainsim — build a service chain from a spec string or a deployment-plan
// document, drive it with a generated workload or a pcap, and report
// original-vs-SpeedyBox results.
//
//   chainsim --chain nat,maglev,monitor,ipfilter --flows 200 --packets 20
//   chainsim --chain ipfilter,snort,monitor --datacenter --csv
//   chainsim --chain maglev:backends=8:table=65537,monitor   # NF options
//   chainsim --chain nat,monitor --pcap capture.pcap
//   chainsim --chain maglev,monitor --fail-backend-at 1000
//   chainsim --chain vpn-out,monitor,vpn-in --export-pcap tunnel.pcap
//   chainsim --chain firewall,snort --overload 2.0 --drop-policy slo-early-drop
//   chainsim --chain nat,monitor --inject-fault nat:fail-every=100
//   chainsim --chain nat,monitor --mode speedybox --listen 9000   # live wire
//                                                 # mode; pair with loadgen
//   chainsim --chain nat,monitor --emit-plan plan.json   # flags -> plan doc
//   chainsim --plan plan.json                            # plan doc -> run
//
// The NF vocabulary lives in nf::Registry (nf/registry.hpp); the flag
// surface lives in tools/sim_config.{hpp,cpp}. Both the --chain and the
// --plan paths resolve to the same plan::DeploymentPlan, and plan::build()
// constructs the executor — chainsim itself only owns the workload, the
// reporting and the live front-end.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "control/controller.hpp"
#include "io/ingest_executor.hpp"
#include "io/ingest_server.hpp"
#include "nf/maglev_lb.hpp"
#include "runtime/plan.hpp"
#include "runtime/runner.hpp"
#include "runtime/sharded_runtime.hpp"
#include "sim_config.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "tenancy/tenant_host.hpp"
#include "trace/payload_synth.hpp"
#include "trace/pcap.hpp"
#include "util/logging.hpp"

using namespace speedybox;
using tools::SimConfig;

namespace {

/// First Maglev in the chain, for --fail-backend-at (nullptr when the
/// chain has none — then the flag is a no-op, as before the plan layer).
nf::MaglevLb* find_maglev(runtime::ServiceChain& chain) {
  for (std::size_t i = 0; i < chain.size(); ++i) {
    if (auto* maglev = dynamic_cast<nf::MaglevLb*>(&chain.nf(i))) {
      return maglev;
    }
  }
  return nullptr;
}

plan::BuiltDeployment build_deployment(const SimConfig& config,
                                       bool speedybox) {
  try {
    return plan::build(config.plan_for(speedybox));
  } catch (const std::exception& error) {
    tools::config_error("chainsim", error.what());
  }
}

std::vector<net::Packet> build_packets(const SimConfig& config) {
  if (!config.pcap_in.empty()) {
    return trace::read_pcap(config.pcap_in);
  }
  trace::Workload workload;
  if (config.workload == "datacenter") {
    trace::DatacenterWorkloadConfig workload_config;
    workload_config.flow_count = config.flows;
    workload_config.payload_size = config.payload;
    workload_config.seed = config.seed;
    workload = make_datacenter_workload(workload_config);
  } else if (config.workload == "uniform") {
    workload = trace::make_uniform_workload(
        config.flows, config.packets_per_flow, config.payload, config.seed);
  } else {
    trace::ScenarioScale scale;
    // Scenario generators keep their internal population ratios; --flows
    // scales the total population (validated names only reach here).
    scale.flows = config.workload_shape_set ? config.flows : 0;
    scale.payload_size = config.payload;
    scale.seed = config.seed;
    workload = *trace::make_named_scenario(config.workload, scale);
  }
  // Plant Snort rule contents whenever the chain contains an IDS.
  trace::PayloadSynthConfig synth;
  synth.match_fraction = config.snort_match_fraction;
  synth.seed = config.seed ^ 0x5EED;
  plant_rule_contents(workload, trace::default_snort_rules(), synth);

  if (!config.pcap_out.empty()) {
    write_pcap(config.pcap_out, workload);
    std::fprintf(stderr, "wrote %zu packets to %s\n",
                 workload.packet_count(), config.pcap_out.c_str());
  }
  std::vector<net::Packet> packets;
  packets.reserve(workload.packet_count());
  for (std::size_t i = 0; i < workload.packet_count(); ++i) {
    packets.push_back(workload.materialize(i));
  }
  return packets;
}

void report(const SimConfig& config, const char* mode,
            const runtime::RunStats& stats) {
  const double p50_lat = stats.latency_us_subsequent.count() > 0
                             ? stats.latency_us_subsequent.percentile(50)
                             : 0.0;
  const double p99_lat = stats.latency_us_subsequent.count() > 0
                             ? stats.latency_us_subsequent.percentile(99)
                             : 0.0;
  const double cycles = stats.platform_cycles_subsequent.count() > 0
                            ? stats.platform_cycles_subsequent.percentile(50)
                            : 0.0;
  const double rate = stats.rate_mpps(config.platform);
  const runtime::OverloadStats& overload = stats.overload;
  if (config.csv) {
    std::printf("%s,%s,%llu,%llu,%llu,%.0f,%.3f,%.3f,%.3f,%llu,%llu,%llu\n",
                platform_name(config.platform), mode,
                static_cast<unsigned long long>(stats.packets),
                static_cast<unsigned long long>(stats.drops),
                static_cast<unsigned long long>(stats.events_triggered),
                cycles, p50_lat, p99_lat, rate,
                static_cast<unsigned long long>(overload.offered),
                static_cast<unsigned long long>(overload.shed_total()),
                static_cast<unsigned long long>(overload.faulted));
    return;
  }
  std::printf("%-9s %-10s packets=%-8llu drops=%-6llu events=%-4llu "
              "cyc/pkt(p50)=%-6.0f lat(p50/p99)=%.3f/%.3f us  rate=%.3f "
              "Mpps\n",
              platform_name(config.platform), mode,
              static_cast<unsigned long long>(stats.packets),
              static_cast<unsigned long long>(stats.drops),
              static_cast<unsigned long long>(stats.events_triggered),
              cycles, p50_lat, p99_lat, rate);
  if (overload.offered > 0 || overload.faulted > 0) {
    std::printf("  overload: offered=%llu admitted=%llu "
                "shed(adm/wm/early)=%llu/%llu/%llu faulted=%llu "
                "degraded(flows/pkts/episodes)=%llu/%llu/%llu\n",
                static_cast<unsigned long long>(overload.offered),
                static_cast<unsigned long long>(overload.admitted),
                static_cast<unsigned long long>(overload.shed_admission),
                static_cast<unsigned long long>(overload.shed_watermark),
                static_cast<unsigned long long>(overload.shed_early_drop),
                static_cast<unsigned long long>(overload.faulted),
                static_cast<unsigned long long>(overload.degraded_flows),
                static_cast<unsigned long long>(overload.degraded_packets),
                static_cast<unsigned long long>(overload.degraded_episodes));
  }
}

void run_mode(const SimConfig& config, bool speedybox,
              const std::vector<net::Packet>& packets,
              telemetry::Registry* registry) {
  plan::BuiltDeployment built = build_deployment(config, speedybox);
  const std::string mode = speedybox ? "speedybox" : "original";

  if (config.fail_backend_at >= 0) {
    // Mid-run control-plane action: per-packet loop on the single-threaded
    // runner (validate()/resolve_plan() reject every other executor shape).
    auto& runner = static_cast<runtime::ChainRunner&>(*built.executor);
    runner.attach_telemetry(registry, mode + "/main");
    nf::MaglevLb* maglev = find_maglev(*built.chain);
    for (std::size_t i = 0; i < packets.size(); ++i) {
      if (static_cast<long>(i) == config.fail_backend_at &&
          maglev != nullptr) {
        maglev->fail_backend(0);
      }
      net::Packet packet = packets[i];
      packet.reset_metadata();
      runner.process_packet(packet);
    }
    report(config, mode.c_str(), runner.stats());
    return;
  }

  // plan::build() already chose the executor shape and applied the
  // overload policy; everything below is shape-agnostic.
  runtime::Executor& executor = *built.executor;
  const std::string label =
      config.executor == plan::ExecutorKind::kRunner ? mode + "/main" : mode;
  // The controller's signals come from telemetry snapshots; when the user
  // asked for autoscaling without any metrics flag, a private registry
  // feeds the control loop and is simply discarded afterwards.
  std::unique_ptr<telemetry::Registry> private_registry;
  telemetry::Registry* effective_registry = registry;
  if (config.autoscale && effective_registry == nullptr) {
    private_registry = std::make_unique<telemetry::Registry>();
    effective_registry = private_registry.get();
  }
  executor.attach_telemetry(effective_registry, label);
  std::unique_ptr<control::Controller> controller;
  if (config.autoscale) {
    control::AutoscaleConfig auto_config;
    auto_config.slo_us = config.slo_us;
    auto_config.min_shards = config.min_shards;
    auto_config.max_shards =
        config.max_shards == 0 ? config.shards : config.max_shards;
    auto_config.interval_packets = config.scale_interval;
    controller = std::make_unique<control::Controller>(
        auto_config, *effective_registry, label + "/controller");
    controller->attach(static_cast<runtime::ShardedRuntime&>(executor));
  }
  const runtime::RunStats& stats = executor.run_raw(packets);

  std::string report_label = mode;
  if (config.executor != plan::ExecutorKind::kRunner) {
    report_label +=
        std::string(" [") + plan::executor_kind_name(config.executor);
    if (config.shards > 0) report_label += " x" + std::to_string(config.shards);
    report_label += "]";
  }
  report(config, report_label.c_str(), stats);

  if (config.executor == plan::ExecutorKind::kSharded && !config.csv) {
    auto& sharded = static_cast<runtime::ShardedRuntime&>(executor);
    const runtime::ShardedRunResult& result = sharded.last_result();
    std::printf("  shards: agg-rate=%.3f Mpps, wall=%.1f ms, "
                "backpressure-waits=%llu, per-shard packets = [",
                result.aggregate_rate_mpps, result.wall_seconds * 1e3,
                static_cast<unsigned long long>(
                    sharded.backpressure_waits()));
    for (std::size_t s = 0; s < result.shard_packets.size(); ++s) {
      std::printf("%s%llu", s == 0 ? "" : ", ",
                  static_cast<unsigned long long>(result.shard_packets[s]));
    }
    std::printf("]\n");
  }
  if (controller != nullptr && !config.csv) {
    auto& sharded = static_cast<runtime::ShardedRuntime&>(executor);
    std::uint64_t migrated = 0;
    for (const control::ReshardReport& event : controller->scale_events()) {
      migrated += event.migrated_flows;
    }
    std::printf("  autoscale: scale-events=%zu migrated-flows=%llu "
                "final-shards=%zu (of %zu started)\n",
                controller->scale_events().size(),
                static_cast<unsigned long long>(migrated),
                sharded.active_shard_count(), sharded.shard_count());
  }
}

/// Live mode: real wire packets off a socket instead of an in-process
/// trace. Same plan-built chain/executor/overload as run_mode; the packet
/// source is an IngestServer and the hand-off an IngestExecutor.
int run_live(const SimConfig& config, telemetry::Registry* registry) {
  const bool speedybox = config.run_speedybox;
  const std::string mode = speedybox ? "speedybox" : "original";
  plan::BuiltDeployment built = build_deployment(config, speedybox);
  runtime::Executor& executor = *built.executor;
  const std::string label =
      config.executor == plan::ExecutorKind::kRunner ? mode + "/main" : mode;
  executor.attach_telemetry(registry, label);

  io::IngestConfig ingest_config;
  ingest_config.port = config.listen_port;
  ingest_config.proto = config.listen_proto;
  ingest_config.rx_budget = config.rx_budget;
  ingest_config.idle_timeout_ms = static_cast<int>(config.idle_timeout_ms);
  ingest_config.batch_size = config.batch_size;
  ingest_config.use_recvmmsg = config.use_recvmmsg;
  io::IngestServer server{ingest_config};
  server.attach_telemetry(registry, mode + "/ingest");
  io::IngestExecutor sink{executor};

  // The load generator (or the CI smoke) discovers the bound port from
  // this line, so it must hit the pipe before serve() blocks.
  std::printf("chainsim: listening on %s", config.listen_proto ==
                                                   io::IngestProto::kTcp
                                               ? ""
                                               : "udp ");
  if (config.listen_proto != io::IngestProto::kTcp) {
    std::printf("127.0.0.1:%u", server.udp_port());
  }
  if (config.listen_proto != io::IngestProto::kUdp) {
    std::printf("%stcp 127.0.0.1:%u",
                config.listen_proto == io::IngestProto::kBoth ? " " : "",
                server.tcp_port());
  }
  std::printf(" (mode=%s executor=%s feed=%s)\n", mode.c_str(),
              plan::executor_kind_name(config.executor),
              std::string(sink.mode()).c_str());
  std::fflush(stdout);

  const io::IngestStats ingest = server.serve(sink);
  const runtime::RunStats& stats = sink.finish();

  std::string report_label = mode + " [live";
  if (config.executor != plan::ExecutorKind::kRunner) {
    report_label +=
        std::string(" ") + plan::executor_kind_name(config.executor);
    if (config.shards > 0) report_label += " x" + std::to_string(config.shards);
  }
  report_label += "]";
  report(config, report_label.c_str(), stats);

  // Machine-readable summary for the closed-loop smoke. `admitted`/`shed`
  // come from the overload gate when it is on; with the gate off every
  // submitted frame is admitted by definition. The driver checks
  //   sent == admitted + shed + parse_errors + socket_drops
  // against the load generator's own count.
  const runtime::OverloadStats& overload = stats.overload;
  const std::uint64_t admitted =
      config.overload.enabled ? overload.admitted : sink.submitted();
  const std::uint64_t shed =
      config.overload.enabled ? overload.shed_total() : 0;
  const bool conserved = sink.submitted() == admitted + shed &&
                         sink.submitted() == ingest.rx_frames;
  std::printf(
      "{\"live\":{\"proto\":\"%s\",\"executor\":\"%s\",\"mode\":\"%s\","
      "\"feed\":\"%s\",\"rx_bytes\":%llu,\"rx_frames\":%llu,"
      "\"rx_batches\":%llu,\"parse_errors\":%llu,\"socket_drops\":%llu,"
      "\"tcp_connections\":%llu,\"poisoned_streams\":%llu,"
      "\"submitted\":%llu,\"admitted\":%llu,\"shed\":%llu,"
      "\"chain_packets\":%llu,\"chain_drops\":%llu,\"conserved\":%s}}\n",
      io::ingest_proto_name(config.listen_proto),
      plan::executor_kind_name(config.executor), mode.c_str(),
      std::string(sink.mode()).c_str(),
      static_cast<unsigned long long>(ingest.rx_bytes),
      static_cast<unsigned long long>(ingest.rx_frames),
      static_cast<unsigned long long>(ingest.rx_batches),
      static_cast<unsigned long long>(ingest.parse_errors),
      static_cast<unsigned long long>(ingest.socket_drops),
      static_cast<unsigned long long>(ingest.tcp_connections),
      static_cast<unsigned long long>(ingest.poisoned_streams),
      static_cast<unsigned long long>(sink.submitted()),
      static_cast<unsigned long long>(admitted),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(stats.packets),
      static_cast<unsigned long long>(stats.drops),
      conserved ? "true" : "false");
  std::fflush(stdout);
  return conserved ? 0 : 1;
}

/// Multi-tenant hosting (--tenancy): several independent chains on one
/// shared shard pool, the SLO enforcement loop arbitrating between them.
/// Emits one JSON line per tenant plus a host summary; exit 0 iff every
/// tenant's conservation identity holds.
int run_tenancy(const SimConfig& config, telemetry::Registry* registry) {
  std::ifstream in(config.tenancy_file, std::ios::binary);
  if (!in) {
    tools::config_error("chainsim",
                        "--tenancy: cannot read " + config.tenancy_file);
  }
  const std::string text{std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>()};
  tenancy::HostSpec spec;
  try {
    spec = tenancy::HostSpec::parse(text);
    spec.validate();
  } catch (const std::exception& error) {
    tools::config_error("chainsim", "--tenancy " + config.tenancy_file +
                                        ": " + error.what());
  }
  tenancy::TenantHost host{std::move(spec), registry};
  bool all_conserved = true;

  if (config.listen_set) {
    tenancy::ServeOptions options;
    options.proto = config.listen_proto;
    options.rx_budget = config.rx_budget;
    options.idle_timeout_ms = static_cast<int>(config.idle_timeout_ms);
    options.batch_size = config.batch_size;
    options.use_recvmmsg = config.use_recvmmsg;
    const auto ports = host.bind_listeners(options);
    for (std::size_t i = 0; i < ports.size(); ++i) {
      // The smoke script discovers every tenant's bound port from these
      // lines, so they must hit the pipe before serve() blocks.
      std::printf("chainsim: tenant %s listening on",
                  host.spec().tenants[i].id.c_str());
      if (config.listen_proto != io::IngestProto::kTcp) {
        std::printf(" udp 127.0.0.1:%u", ports[i].first);
      }
      if (config.listen_proto != io::IngestProto::kUdp) {
        std::printf(" tcp 127.0.0.1:%u", ports[i].second);
      }
      std::printf("\n");
    }
    std::fflush(stdout);
    const std::vector<tenancy::TenantServeResult> results =
        host.serve(options);
    for (const tenancy::TenantServeResult& tenant : results) {
      const runtime::OverloadStats& overload = tenant.stats.overload;
      const bool gated = overload.offered > 0 || overload.shed_total() > 0;
      const std::uint64_t admitted =
          gated ? overload.admitted : tenant.stats.packets;
      const std::uint64_t shed = overload.shed_total();
      // Host-gate conservation plus the executor's own arrival identity;
      // delivered cannot be byte-counted live (no output capture).
      const bool conserved =
          tenant.gate_offered == tenant.gate_shed + tenant.forwarded &&
          tenant.gate_offered == tenant.ingest.rx_frames &&
          tenant.forwarded == admitted + shed;
      all_conserved = all_conserved && conserved;
      std::printf(
          "{\"tenant\":{\"id\":\"%s\",\"udp_port\":%u,\"rx_frames\":%llu,"
          "\"parse_errors\":%llu,\"socket_drops\":%llu,\"offered\":%llu,"
          "\"gate_shed\":%llu,\"forwarded\":%llu,\"admitted\":%llu,"
          "\"shed\":%llu,\"chain_packets\":%llu,\"chain_drops\":%llu,"
          "\"realloc_events\":%zu,\"final_shards\":%zu,"
          "\"max_escalation\":%d,\"conserved\":%s}}\n",
          tenant.id.c_str(), tenant.udp_port,
          static_cast<unsigned long long>(tenant.ingest.rx_frames),
          static_cast<unsigned long long>(tenant.ingest.parse_errors),
          static_cast<unsigned long long>(tenant.ingest.socket_drops),
          static_cast<unsigned long long>(tenant.gate_offered),
          static_cast<unsigned long long>(tenant.gate_shed),
          static_cast<unsigned long long>(tenant.forwarded),
          static_cast<unsigned long long>(admitted),
          static_cast<unsigned long long>(shed),
          static_cast<unsigned long long>(tenant.stats.packets),
          static_cast<unsigned long long>(tenant.stats.drops),
          tenant.realloc_events, tenant.final_shards, tenant.max_escalation,
          conserved ? "true" : "false");
    }
    std::printf("{\"tenancy\":{\"mode\":\"live\",\"tenants\":%zu,"
                "\"conserved\":%s}}\n",
                results.size(), all_conserved ? "true" : "false");
    std::fflush(stdout);
    return all_conserved ? 0 : 1;
  }

  const tenancy::HostRunResult result = host.run();
  for (const tenancy::TenantResult& tenant : result.tenants) {
    const runtime::OverloadStats& overload = tenant.stats.overload;
    const bool gated = overload.offered > 0 || overload.shed_total() > 0;
    const std::uint64_t admitted =
        gated ? overload.admitted : tenant.stats.packets;
    const std::uint64_t shed = overload.shed_total();
    const std::uint64_t delivered = tenant.delivered();
    // Per-tenant conservation, delivered counted from the actual outputs:
    //   offered == gate_shed + forwarded        (host gate)
    //   forwarded == admitted + shed            (executor arrival)
    //   admitted == delivered + drops + faulted (executor outcome)
    const bool conserved =
        tenant.offered == tenant.gate_shed + tenant.forwarded &&
        tenant.forwarded == admitted + shed &&
        admitted == delivered + tenant.stats.drops + overload.faulted;
    all_conserved = all_conserved && conserved;
    std::printf(
        "{\"tenant\":{\"id\":\"%s\",\"offered\":%llu,\"gate_shed\":%llu,"
        "\"forwarded\":%llu,\"admitted\":%llu,\"shed\":%llu,"
        "\"delivered\":%llu,\"chain_drops\":%llu,\"faulted\":%llu,"
        "\"realloc_events\":%zu,\"final_shards\":%zu,\"max_escalation\":%d,"
        "\"worst_p99_us\":%.3f,\"last_p99_us\":%.3f,\"conserved\":%s}}\n",
        tenant.id.c_str(), static_cast<unsigned long long>(tenant.offered),
        static_cast<unsigned long long>(tenant.gate_shed),
        static_cast<unsigned long long>(tenant.forwarded),
        static_cast<unsigned long long>(admitted),
        static_cast<unsigned long long>(shed),
        static_cast<unsigned long long>(delivered),
        static_cast<unsigned long long>(tenant.stats.drops),
        static_cast<unsigned long long>(overload.faulted),
        tenant.realloc_events, tenant.final_shards, tenant.max_escalation,
        tenant.worst_window_p99_us, tenant.last_window_p99_us,
        conserved ? "true" : "false");
  }
  std::printf("{\"tenancy\":{\"mode\":\"in-process\",\"tenants\":%zu,"
              "\"ticks\":%llu,\"wall_seconds\":%.3f,\"conserved\":%s}}\n",
              result.tenants.size(),
              static_cast<unsigned long long>(result.enforcement_ticks),
              result.wall_seconds, all_conserved ? "true" : "false");
  std::fflush(stdout);
  return all_conserved ? 0 : 1;
}

/// Final metrics flush (both the trace-driven and live paths end here).
bool write_metrics(const SimConfig& config, telemetry::Registry* registry,
                   std::optional<telemetry::Snapshotter>& snapshotter) {
  if (registry == nullptr) return true;
  if (snapshotter) {
    snapshotter->stop();  // writes the final JSON-lines snapshot
  } else if (!config.metrics_out.empty()) {
    if (!telemetry::append_line(config.metrics_out,
                                to_json(registry->snapshot()))) {
      std::fprintf(stderr, "failed to write %s\n", config.metrics_out.c_str());
      return false;
    }
  }
  if (!config.metrics_prom.empty()) {
    const std::string text = to_prometheus(registry->snapshot());
    std::FILE* file = std::fopen(config.metrics_prom.c_str(), "w");
    if (file == nullptr ||
        std::fwrite(text.data(), 1, text.size(), file) != text.size() ||
        std::fclose(file) != 0) {
      std::fprintf(stderr, "failed to write %s\n",
                   config.metrics_prom.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  SimConfig config = SimConfig::parse(argc, argv);
  config.validate();
  config.resolve_plan();
  if (!config.emit_plan.empty()) {
    const std::string document = config.deployment->dump();
    if (config.emit_plan == "-") {
      std::printf("%s\n", document.c_str());
    } else {
      std::FILE* file = std::fopen(config.emit_plan.c_str(), "w");
      if (file == nullptr ||
          std::fwrite(document.data(), 1, document.size(), file) !=
              document.size() ||
          std::fputc('\n', file) == EOF || std::fclose(file) != 0) {
        std::fprintf(stderr, "chainsim: failed to write %s\n",
                     config.emit_plan.c_str());
        return 1;
      }
      std::fprintf(stderr, "chainsim: wrote plan to %s\n",
                   config.emit_plan.c_str());
    }
    return 0;
  }
  if (config.print_config) {
    std::printf("%s\n", config.to_json().c_str());
    return 0;
  }
  // One registry for the whole process; the two modes (and their shards)
  // disambiguate through shard labels ("original/shard0", "speedybox/main").
  std::unique_ptr<telemetry::Registry> registry;
  std::optional<telemetry::Snapshotter> snapshotter;
  if (!config.metrics_out.empty() || !config.metrics_prom.empty() ||
      config.trace_sample > 0) {
    registry = std::make_unique<telemetry::Registry>(config.trace_sample);
    if (config.metrics_interval_ms > 0 && !config.metrics_out.empty()) {
      snapshotter.emplace(
          *registry, config.metrics_out,
          std::chrono::milliseconds(config.metrics_interval_ms));
    }
  }

  if (!config.tenancy_file.empty()) {
    const int exit_code = run_tenancy(config, registry.get());
    if (!write_metrics(config, registry.get(), snapshotter)) return 1;
    return exit_code;
  }
  if (config.listen_set) {
    const int exit_code = run_live(config, registry.get());
    if (!write_metrics(config, registry.get(), snapshotter)) return 1;
    return exit_code;
  }
  const std::vector<net::Packet> packets = build_packets(config);

  if (config.csv) {
    std::printf(
        "platform,mode,packets,drops,events,cycles_p50,lat_p50_us,"
        "lat_p99_us,rate_mpps,offered,shed,faulted\n");
  }
  if (config.run_original) {
    run_mode(config, false, packets, registry.get());
  }
  if (config.run_speedybox) {
    run_mode(config, true, packets, registry.get());
  }

  if (!write_metrics(config, registry.get(), snapshotter)) return 1;
  return 0;
}
