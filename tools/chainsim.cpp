// chainsim — build a service chain from a spec string, drive it with a
// generated workload or a pcap, and report original-vs-SpeedyBox results.
//
//   chainsim --chain nat,maglev,monitor,ipfilter --flows 200 --packets 20
//   chainsim --chain ipfilter,snort,monitor --datacenter --csv
//   chainsim --chain nat,monitor --pcap capture.pcap
//   chainsim --chain maglev,monitor --fail-backend-at 1000
//   chainsim --chain vpn-out,monitor,vpn-in --export-pcap tunnel.pcap
//   chainsim --chain firewall,snort --overload 2.0 --drop-policy slo-early-drop
//   chainsim --chain nat,monitor --inject-fault nat:fail-every=100
//   chainsim --chain nat,monitor --mode speedybox --listen 9000   # live wire
//                                                 # mode; pair with loadgen
//
// Available NFs: nat, maglev, monitor, heavymonitor, ipfilter, firewall
// (drops dst port 23), snort, gateway, vpn-out, vpn-in, dos, synthetic.
//
// All executor shapes (--executor runner|sharded|pipeline|onvm) run through
// the one runtime::Executor interface; every combination the flags below
// cannot express together is rejected up front by SimConfig::validate()
// instead of being silently ignored.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "control/controller.hpp"
#include "io/ingest_executor.hpp"
#include "io/ingest_server.hpp"
#include "nf/dos_prevention.hpp"
#include "nf/gateway.hpp"
#include "nf/ip_filter.hpp"
#include "nf/maglev_lb.hpp"
#include "nf/mazu_nat.hpp"
#include "nf/monitor.hpp"
#include "nf/snort_ids.hpp"
#include "nf/synthetic_nf.hpp"
#include "nf/vpn_gateway.hpp"
#include "runtime/fault_injector.hpp"
#include "runtime/onvm_executor.hpp"
#include "runtime/runner.hpp"
#include "runtime/sharded_runtime.hpp"
#include "runtime/speedybox_pipeline.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "trace/payload_synth.hpp"
#include "trace/pcap.hpp"
#include "util/cycle_clock.hpp"
#include "util/logging.hpp"

using namespace speedybox;

namespace {

enum class ExecutorKind : std::uint8_t { kRunner, kSharded, kPipeline, kOnvm };

const char* executor_kind_name(ExecutorKind kind) {
  switch (kind) {
    case ExecutorKind::kRunner:
      return "runner";
    case ExecutorKind::kSharded:
      return "sharded";
    case ExecutorKind::kPipeline:
      return "pipeline";
    case ExecutorKind::kOnvm:
      return "onvm";
  }
  return "runner";
}

/// Every chainsim knob, parsed in one place and cross-checked in
/// validate() — a flag combination that would silently do nothing is an
/// error, not a surprise.
struct SimConfig {
  std::vector<std::string> chain;
  platform::PlatformKind platform = platform::PlatformKind::kBess;
  bool run_original = true;
  bool run_speedybox = true;
  bool mode_set = false;
  ExecutorKind executor = ExecutorKind::kRunner;
  bool executor_set = false;
  std::size_t flows = 100;
  std::uint32_t packets_per_flow = 20;
  std::size_t payload = 128;
  bool workload_shape_set = false;  // any of --flows/--packets/--payload
  /// uniform | datacenter | one of trace::named_scenarios()
  /// (elephant-mice, sync-burst, flash-crowd, syn-flood).
  std::string workload = "uniform";
  double snort_match_fraction = 0.2;
  std::string pcap_in;
  std::string pcap_out;
  std::uint64_t seed = 42;
  long fail_backend_at = -1;  // packet index at which backend 0 dies
  bool csv = false;
  std::size_t shards = 0;  // 0 = single-threaded ChainRunner
  std::size_t batch_size = net::kDefaultBatchSize;
  std::string metrics_out;         // JSON-lines snapshot file
  std::string metrics_prom;        // Prometheus text file (overwritten)
  long metrics_interval_ms = 0;    // 0 = final snapshot only
  std::uint32_t trace_sample = 0;  // 1-in-N packet span sampling (0 = off)
  runtime::OverloadConfig overload{};
  bool drop_policy_set = false;
  bool queue_capacity_set = false;
  std::optional<std::pair<std::string, runtime::FaultSpec>> fault;
  bool print_config = false;
  // -- live ingestion (DESIGN.md §11; --listen switches the packet source
  // -- from the in-process trace to a real socket) --
  bool listen_set = false;
  std::uint16_t listen_port = 0;  // 0 = ephemeral (printed at startup)
  io::IngestProto listen_proto = io::IngestProto::kUdp;
  bool proto_set = false;
  std::size_t rx_budget = 64;
  bool rx_budget_set = false;
  long idle_timeout_ms = 1000;
  bool idle_timeout_set = false;
  // -- autoscaling (control plane; sharded executor only) --
  bool autoscale = false;
  double slo_us = 50.0;
  std::size_t min_shards = 1;
  std::size_t max_shards = 0;  // 0 = default to the starting --shards
  std::uint64_t scale_interval = 2048;
  bool autoscale_knob_set = false;  // any of slo/min/max/interval

  static SimConfig parse(int argc, char** argv);
  /// Exits with a diagnostic on any flag combination that would be
  /// silently ignored at run time.
  void validate() const;
  /// JSON echo of the effective configuration (--print-config).
  std::string to_json() const;
};

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s --chain nf1,nf2,... [options]\n"
      "\n"
      "NFs: nat maglev monitor heavymonitor ipfilter firewall snort\n"
      "     gateway vpn-out vpn-in dos synthetic\n"
      "\n"
      "options:\n"
      "  --platform bess|onvm       execution platform model (default bess)\n"
      "  --mode original|speedybox|both   which data path(s) to run\n"
      "  --executor runner|sharded|pipeline|onvm\n"
      "                             executor shape (default runner; sharded\n"
      "                             needs --shards; pipeline requires --mode\n"
      "                             speedybox, onvm requires --mode original)\n"
      "  --flows N --packets N --payload N   uniform workload shape\n"
      "  --workload NAME            uniform | datacenter | elephant-mice |\n"
      "                             sync-burst | flash-crowd | syn-flood\n"
      "                             (scenario generators scale with --flows\n"
      "                             / --payload / --seed; syn-flood pairs\n"
      "                             with a dos chain element)\n"
      "  --datacenter               alias for --workload datacenter\n"
      "  --pcap FILE                drive the chain from a pcap capture\n"
      "  --export-pcap FILE         write the generated workload as pcap\n"
      "  --fail-backend-at K        fail Maglev backend 0 before packet K\n"
      "  --shards N                 run on the flow-sharded runtime with N\n"
      "                             chain replicas (one worker thread each)\n"
      "  --batch-size N             burst size the data path drains in\n"
      "                             (default 32; 1 = packet-at-a-time)\n"
      "  --overload MULT            enable the overload gate at MULT x the\n"
      "                             data path's capacity (DESIGN.md 9)\n"
      "  --drop-policy P            tail-drop|per-flow-fair|slo-early-drop\n"
      "                             (needs --overload)\n"
      "  --queue-capacity N         bounded ingress queue, in packets\n"
      "                             (needs --overload; default 1024)\n"
      "  --autoscale                telemetry-driven elastic scaling of the\n"
      "                             sharded runtime (needs --shards and\n"
      "                             --mode speedybox; DESIGN.md 10)\n"
      "  --slo-us X                 autoscale latency objective for the\n"
      "                             windowed p99, microseconds (default 50)\n"
      "  --min-shards N             autoscale floor (default 1)\n"
      "  --max-shards N             autoscale ceiling (default: the\n"
      "                             starting --shards)\n"
      "  --scale-interval N         control-loop cadence, in dispatched\n"
      "                             packets (default 2048)\n"
      "  --inject-fault SPEC        wrap an NF in the fault injector:\n"
      "                             \"<nf>:fail-every=N,latency-every=N,\n"
      "                             latency-cycles=N,crash-at=N\"\n"
      "  --seed N                   workload seed (default 42)\n"
      "  --csv                      machine-readable one-line-per-config\n"
      "  --print-config             echo the effective config as JSON and\n"
      "                             exit (validates first)\n"
      "  --metrics-out FILE         append a JSON telemetry snapshot line\n"
      "  --metrics-prom FILE        write a Prometheus text snapshot\n"
      "  --metrics-interval MS      also snapshot every MS ms (JSON-lines,\n"
      "                             background thread; needs --metrics-out)\n"
      "  --trace-sample N           record full packet spans for 1-in-N\n"
      "                             flows (exported with --metrics-out)\n"
      "  --listen PORT              live mode: ingest real wire packets on\n"
      "                             127.0.0.1:PORT (0 = ephemeral; the bound\n"
      "                             port is printed at startup) instead of a\n"
      "                             generated trace; pair with the loadgen\n"
      "                             tool; needs --mode original|speedybox\n"
      "  --proto udp|tcp|both       live transport(s) to accept (default\n"
      "                             udp; needs --listen)\n"
      "  --rx-budget N              max frames drained per socket wakeup\n"
      "                             (default 64; needs --listen)\n"
      "  --idle-timeout MS          exit live mode after MS ms without\n"
      "                             traffic (default 1000; needs --listen)\n"
      "  --log-level LEVEL          debug|info|warn|error|off\n",
      argv0);
  std::exit(2);
}

[[noreturn]] void config_error(const char* message) {
  std::fprintf(stderr, "chainsim: %s\n", message);
  std::exit(2);
}

SimConfig SimConfig::parse(int argc, char** argv) {
  SimConfig config;
  const auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--chain") {
      std::string spec = need_value(i);
      std::size_t start = 0;
      while (start <= spec.size()) {
        const std::size_t comma = spec.find(',', start);
        const std::string name =
            spec.substr(start, comma == std::string::npos ? std::string::npos
                                                          : comma - start);
        if (!name.empty()) config.chain.push_back(name);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (arg == "--platform") {
      const std::string value = need_value(i);
      if (value == "bess") {
        config.platform = platform::PlatformKind::kBess;
      } else if (value == "onvm") {
        config.platform = platform::PlatformKind::kOnvm;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--mode") {
      const std::string value = need_value(i);
      config.run_original = value == "original" || value == "both";
      config.run_speedybox = value == "speedybox" || value == "both";
      config.mode_set = true;
      if (!config.run_original && !config.run_speedybox) usage(argv[0]);
    } else if (arg == "--executor") {
      const std::string value = need_value(i);
      config.executor_set = true;
      if (value == "runner") {
        config.executor = ExecutorKind::kRunner;
      } else if (value == "sharded") {
        config.executor = ExecutorKind::kSharded;
      } else if (value == "pipeline") {
        config.executor = ExecutorKind::kPipeline;
      } else if (value == "onvm") {
        config.executor = ExecutorKind::kOnvm;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--flows") {
      config.flows = std::strtoul(need_value(i), nullptr, 10);
      config.workload_shape_set = true;
    } else if (arg == "--packets") {
      config.packets_per_flow =
          static_cast<std::uint32_t>(std::strtoul(need_value(i), nullptr, 10));
      config.workload_shape_set = true;
    } else if (arg == "--payload") {
      config.payload = std::strtoul(need_value(i), nullptr, 10);
      config.workload_shape_set = true;
    } else if (arg == "--datacenter") {
      config.workload = "datacenter";
    } else if (arg == "--workload") {
      config.workload = need_value(i);
    } else if (arg == "--pcap") {
      config.pcap_in = need_value(i);
    } else if (arg == "--export-pcap") {
      config.pcap_out = need_value(i);
    } else if (arg == "--fail-backend-at") {
      config.fail_backend_at = std::strtol(need_value(i), nullptr, 10);
    } else if (arg == "--shards") {
      const char* value = need_value(i);
      char* end = nullptr;
      config.shards = std::strtoul(value, &end, 10);
      if (end == value || *end != '\0') usage(argv[0]);
    } else if (arg == "--batch-size") {
      const char* value = need_value(i);
      char* end = nullptr;
      config.batch_size = std::strtoul(value, &end, 10);
      if (end == value || *end != '\0' || config.batch_size == 0) {
        usage(argv[0]);
      }
    } else if (arg == "--overload") {
      const char* value = need_value(i);
      char* end = nullptr;
      config.overload.offered_load = std::strtod(value, &end);
      if (end == value || *end != '\0' ||
          config.overload.offered_load <= 0.0) {
        usage(argv[0]);
      }
      config.overload.enabled = true;
    } else if (arg == "--drop-policy") {
      const auto policy = runtime::parse_drop_policy(need_value(i));
      if (!policy) usage(argv[0]);
      config.overload.policy = *policy;
      config.drop_policy_set = true;
    } else if (arg == "--queue-capacity") {
      const char* value = need_value(i);
      char* end = nullptr;
      config.overload.queue_capacity = std::strtoul(value, &end, 10);
      if (end == value || *end != '\0' ||
          config.overload.queue_capacity == 0) {
        usage(argv[0]);
      }
      config.queue_capacity_set = true;
    } else if (arg == "--autoscale") {
      config.autoscale = true;
    } else if (arg == "--slo-us") {
      const char* value = need_value(i);
      char* end = nullptr;
      config.slo_us = std::strtod(value, &end);
      if (end == value || *end != '\0' || config.slo_us <= 0.0) {
        usage(argv[0]);
      }
      config.autoscale_knob_set = true;
    } else if (arg == "--min-shards") {
      const char* value = need_value(i);
      char* end = nullptr;
      config.min_shards = std::strtoul(value, &end, 10);
      if (end == value || *end != '\0' || config.min_shards == 0) {
        usage(argv[0]);
      }
      config.autoscale_knob_set = true;
    } else if (arg == "--max-shards") {
      const char* value = need_value(i);
      char* end = nullptr;
      config.max_shards = std::strtoul(value, &end, 10);
      if (end == value || *end != '\0' || config.max_shards == 0) {
        usage(argv[0]);
      }
      config.autoscale_knob_set = true;
    } else if (arg == "--scale-interval") {
      const char* value = need_value(i);
      char* end = nullptr;
      config.scale_interval = std::strtoull(value, &end, 10);
      if (end == value || *end != '\0' || config.scale_interval == 0) {
        usage(argv[0]);
      }
      config.autoscale_knob_set = true;
    } else if (arg == "--inject-fault") {
      config.fault = runtime::parse_fault_spec(need_value(i));
      if (!config.fault || !config.fault->second.any()) {
        config_error("--inject-fault: malformed spec (want "
                     "\"<nf>:fail-every=N,...\" with at least one action)");
      }
    } else if (arg == "--seed") {
      config.seed = std::strtoull(need_value(i), nullptr, 10);
    } else if (arg == "--csv") {
      config.csv = true;
    } else if (arg == "--print-config") {
      config.print_config = true;
    } else if (arg == "--metrics-out") {
      config.metrics_out = need_value(i);
    } else if (arg == "--metrics-prom") {
      config.metrics_prom = need_value(i);
    } else if (arg == "--metrics-interval") {
      config.metrics_interval_ms = std::strtol(need_value(i), nullptr, 10);
    } else if (arg == "--trace-sample") {
      config.trace_sample =
          static_cast<std::uint32_t>(std::strtoul(need_value(i), nullptr, 10));
    } else if (arg == "--listen") {
      const char* value = need_value(i);
      char* end = nullptr;
      const unsigned long port = std::strtoul(value, &end, 10);
      if (end == value || *end != '\0' || port > 65535) usage(argv[0]);
      config.listen_port = static_cast<std::uint16_t>(port);
      config.listen_set = true;
    } else if (arg == "--proto") {
      const std::string value = need_value(i);
      if (value == "udp") {
        config.listen_proto = io::IngestProto::kUdp;
      } else if (value == "tcp") {
        config.listen_proto = io::IngestProto::kTcp;
      } else if (value == "both") {
        config.listen_proto = io::IngestProto::kBoth;
      } else {
        usage(argv[0]);
      }
      config.proto_set = true;
    } else if (arg == "--rx-budget") {
      const char* value = need_value(i);
      char* end = nullptr;
      config.rx_budget = std::strtoul(value, &end, 10);
      if (end == value || *end != '\0' || config.rx_budget == 0) {
        usage(argv[0]);
      }
      config.rx_budget_set = true;
    } else if (arg == "--idle-timeout") {
      const char* value = need_value(i);
      char* end = nullptr;
      config.idle_timeout_ms = std::strtol(value, &end, 10);
      if (end == value || *end != '\0' || config.idle_timeout_ms <= 0) {
        usage(argv[0]);
      }
      config.idle_timeout_set = true;
    } else if (arg == "--log-level") {
      const auto level = util::parse_log_level(need_value(i));
      if (!level) usage(argv[0]);
      util::set_log_level(*level);
    } else {
      usage(argv[0]);
    }
  }
  if (config.chain.empty()) usage(argv[0]);
  // --shards implies the sharded executor unless one was named.
  if (!config.executor_set && config.shards > 0) {
    config.executor = ExecutorKind::kSharded;
  }
  return config;
}

void SimConfig::validate() const {
  if (metrics_interval_ms > 0 && metrics_out.empty()) {
    config_error("--metrics-interval needs --metrics-out (the interval "
                 "snapshotter has nowhere to write)");
  }
  if (!pcap_in.empty() && (workload_shape_set || workload != "uniform")) {
    config_error("--pcap replaces the generated workload: drop "
                 "--flows/--packets/--payload/--workload/--datacenter");
  }
  if (workload != "uniform" && workload != "datacenter" &&
      !trace::make_named_scenario(workload).has_value()) {
    std::string names = "uniform, datacenter";
    for (const std::string& name : trace::named_scenarios()) {
      names += ", " + name;
    }
    config_error(("unknown --workload \"" + workload + "\" (choose one of " +
                  names + ")")
                     .c_str());
  }
  if (!pcap_in.empty() && !pcap_out.empty()) {
    config_error("--export-pcap writes the GENERATED workload; with --pcap "
                 "there is nothing to export");
  }
  if (fail_backend_at >= 0 && executor != ExecutorKind::kRunner) {
    config_error("--fail-backend-at needs the single-threaded runner "
                 "(mid-run control-plane actions are per-replica)");
  }
  if (shards > 0 && executor != ExecutorKind::kSharded) {
    config_error("--shards only applies to --executor sharded");
  }
  if (executor == ExecutorKind::kSharded && shards == 0) {
    config_error("--executor sharded needs --shards N");
  }
  if (executor == ExecutorKind::kPipeline &&
      (run_original || !run_speedybox)) {
    config_error("--executor pipeline runs the SpeedyBox path only: pass "
                 "--mode speedybox");
  }
  if (executor == ExecutorKind::kOnvm && (run_speedybox || !run_original)) {
    config_error("--executor onvm runs the original path only (no MATs on "
                 "the platform layer): pass --mode original");
  }
  if (!overload.enabled && (drop_policy_set || queue_capacity_set)) {
    config_error("--drop-policy/--queue-capacity need --overload (the gate "
                 "does not exist without it)");
  }
  if (!autoscale && autoscale_knob_set) {
    config_error("--slo-us/--min-shards/--max-shards/--scale-interval "
                 "need --autoscale (there is no controller without it)");
  }
  if (autoscale && executor != ExecutorKind::kSharded) {
    config_error("--autoscale scales the flow-sharded runtime: pass "
                 "--shards N (or --executor sharded)");
  }
  if (autoscale && (run_original || !run_speedybox)) {
    config_error("--autoscale migrates flows via the consolidated MATs, "
                 "which the original chain does not build: pass --mode "
                 "speedybox");
  }
  if (autoscale) {
    const std::size_t ceiling = max_shards == 0 ? shards : max_shards;
    if (min_shards > ceiling) {
      config_error("--min-shards exceeds --max-shards");
    }
    if (shards < min_shards || shards > ceiling) {
      config_error("--shards must start inside [--min-shards, "
                   "--max-shards]");
    }
  }
  if (fault.has_value()) {
    bool found = false;
    for (const std::string& name : chain) {
      if (name == fault->first) found = true;
    }
    if (!found) {
      config_error("--inject-fault names an NF that is not in --chain");
    }
  }
  if (!listen_set && (proto_set || rx_budget_set || idle_timeout_set)) {
    config_error("--proto/--rx-budget/--idle-timeout need --listen (they "
                 "configure the live front-end, which does not exist "
                 "without it)");
  }
  if (listen_set) {
    if (!pcap_in.empty()) {
      config_error("--listen ingests real wire packets: --pcap would be a "
                   "second packet source (drop one of them)");
    }
    if (workload_shape_set || workload != "uniform") {
      config_error("--listen ingests real wire packets: the workload lives "
                   "in the load generator now — drop --flows/--packets/"
                   "--payload/--workload/--datacenter (pass them to "
                   "loadgen instead)");
    }
    if (!pcap_out.empty()) {
      config_error("--export-pcap writes the GENERATED workload; with "
                   "--listen there is nothing to export");
    }
    if (fail_backend_at >= 0) {
      config_error("--fail-backend-at fires at a trace packet index, which "
                   "live mode does not have");
    }
    if (run_original && run_speedybox) {
      config_error("--listen drives ONE live data path: pass --mode "
                   "original or --mode speedybox");
    }
    if (autoscale) {
      config_error("--autoscale is trace-driven for now; live mode does "
                   "not support it yet");
    }
  }
}

std::string SimConfig::to_json() const {
  std::string json = "{";
  const auto field = [&](const char* key, const std::string& value,
                         bool quote) {
    if (json.size() > 1) json += ",";
    json += "\"";
    json += key;
    json += "\":";
    if (quote) json += "\"";
    json += value;
    if (quote) json += "\"";
  };
  std::string chain_list;
  for (const std::string& name : chain) {
    if (!chain_list.empty()) chain_list += ",";
    chain_list += "\"" + name + "\"";
  }
  field("chain", "[" + chain_list + "]", false);
  field("platform", platform_name(platform), true);
  field("mode",
        run_original && run_speedybox
            ? "both"
            : (run_speedybox ? "speedybox" : "original"),
        true);
  field("executor", executor_kind_name(executor), true);
  if (listen_set) {
    field("listen", std::to_string(listen_port), false);
    field("proto", io::ingest_proto_name(listen_proto), true);
    field("rx_budget", std::to_string(rx_budget), false);
    field("idle_timeout_ms", std::to_string(idle_timeout_ms), false);
  } else if (pcap_in.empty()) {
    field("workload", workload, true);
    field("flows", std::to_string(flows), false);
    field("packets_per_flow", std::to_string(packets_per_flow), false);
    field("payload", std::to_string(payload), false);
    field("seed", std::to_string(seed), false);
  } else {
    field("pcap", pcap_in, true);
  }
  if (!pcap_out.empty()) field("export_pcap", pcap_out, true);
  field("shards", std::to_string(shards), false);
  field("batch_size", std::to_string(batch_size), false);
  if (fail_backend_at >= 0) {
    field("fail_backend_at", std::to_string(fail_backend_at), false);
  }
  field("autoscale", autoscale ? "true" : "false", false);
  if (autoscale) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%g", slo_us);
    field("slo_us", buffer, false);
    field("min_shards", std::to_string(min_shards), false);
    field("max_shards",
          std::to_string(max_shards == 0 ? shards : max_shards), false);
    field("scale_interval", std::to_string(scale_interval), false);
  }
  field("overload", overload.enabled ? "true" : "false", false);
  if (overload.enabled) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%g", overload.offered_load);
    field("offered_load", buffer, false);
    field("drop_policy",
          std::string(runtime::drop_policy_name(overload.policy)), true);
    field("queue_capacity", std::to_string(overload.queue_capacity), false);
  }
  if (fault.has_value()) {
    field("inject_fault", fault->first + ":" + fault->second.to_string(),
          true);
  }
  if (!metrics_out.empty()) field("metrics_out", metrics_out, true);
  if (!metrics_prom.empty()) field("metrics_prom", metrics_prom, true);
  if (metrics_interval_ms > 0) {
    field("metrics_interval_ms", std::to_string(metrics_interval_ms), false);
  }
  if (trace_sample > 0) {
    field("trace_sample", std::to_string(trace_sample), false);
  }
  json += "}";
  return json;
}

struct BuiltChain {
  std::unique_ptr<runtime::ServiceChain> chain;
  nf::MaglevLb* maglev = nullptr;  // for --fail-backend-at
};

BuiltChain build_chain(const SimConfig& config) {
  BuiltChain built;
  built.chain = std::make_unique<runtime::ServiceChain>("chainsim");
  int index = 0;
  for (const std::string& name : config.chain) {
    const std::string label = name + "-" + std::to_string(index++);
    std::unique_ptr<nf::NetworkFunction> nf;
    if (name == "nat") {
      nf = std::make_unique<nf::MazuNat>(nf::MazuNatConfig{}, label);
    } else if (name == "maglev") {
      std::vector<nf::Backend> backends;
      for (int b = 0; b < 4; ++b) {
        backends.push_back({"backend-" + std::to_string(b),
                            net::Ipv4Addr{10, 9, 0,
                                          static_cast<std::uint8_t>(10 + b)},
                            8080, true});
      }
      auto maglev = std::make_unique<nf::MaglevLb>(std::move(backends),
                                                   std::size_t{65537}, label);
      built.maglev = maglev.get();
      nf = std::move(maglev);
    } else if (name == "monitor") {
      nf = std::make_unique<nf::Monitor>(nf::MonitorConfig{}, label);
    } else if (name == "heavymonitor") {
      nf = std::make_unique<nf::Monitor>(nf::MonitorConfig::heavy(), label);
    } else if (name == "ipfilter") {
      nf = std::make_unique<nf::IpFilter>(std::vector<nf::AclRule>{}, label);
    } else if (name == "firewall") {
      nf = std::make_unique<nf::IpFilter>(
          std::vector<nf::AclRule>{nf::AclRule::drop_dst_port(23)}, label);
    } else if (name == "snort") {
      nf = std::make_unique<nf::SnortIds>(trace::default_snort_rules(),
                                          label);
    } else if (name == "gateway") {
      nf = std::make_unique<nf::Gateway>(
          std::vector<nf::TrafficClass>{{5060, 5061, 46}}, label);
    } else if (name == "vpn-out") {
      nf = std::make_unique<nf::VpnGateway>(nf::VpnMode::kEgress, 0x1000u,
                                            label);
    } else if (name == "vpn-in") {
      nf = std::make_unique<nf::VpnGateway>(nf::VpnMode::kIngress, 0x1000u,
                                            label);
    } else if (name == "dos") {
      // Threshold below the syn-flood generator's per-tuple SYN budget
      // (24) so `--chain dos,... --workload syn-flood` visibly drops, and
      // far above the single SYN a benign flow opens with.
      nf = std::make_unique<nf::DosPrevention>(
          16, core::HeaderAction::forward(), label);
    } else if (name == "synthetic") {
      nf = std::make_unique<nf::SyntheticNf>(nf::SyntheticNfConfig{}, label);
    } else {
      std::fprintf(stderr, "unknown NF '%s'\n", name.c_str());
      std::exit(2);
    }
    // The fault spec targets the chain-spec token; every occurrence of
    // that NF gets its own injector (independent schedules).
    if (config.fault.has_value() && config.fault->first == name) {
      nf = std::make_unique<runtime::FaultInjector>(std::move(nf),
                                                    config.fault->second);
    }
    built.chain->adopt_nf(std::move(nf));
  }
  return built;
}

std::vector<net::Packet> build_packets(const SimConfig& config) {
  if (!config.pcap_in.empty()) {
    return trace::read_pcap(config.pcap_in);
  }
  trace::Workload workload;
  if (config.workload == "datacenter") {
    trace::DatacenterWorkloadConfig workload_config;
    workload_config.flow_count = config.flows;
    workload_config.payload_size = config.payload;
    workload_config.seed = config.seed;
    workload = make_datacenter_workload(workload_config);
  } else if (config.workload == "uniform") {
    workload = trace::make_uniform_workload(
        config.flows, config.packets_per_flow, config.payload, config.seed);
  } else {
    trace::ScenarioScale scale;
    // Scenario generators keep their internal population ratios; --flows
    // scales the total population (validated names only reach here).
    scale.flows = config.workload_shape_set ? config.flows : 0;
    scale.payload_size = config.payload;
    scale.seed = config.seed;
    workload = *trace::make_named_scenario(config.workload, scale);
  }
  // Plant Snort rule contents whenever the chain contains an IDS.
  trace::PayloadSynthConfig synth;
  synth.match_fraction = config.snort_match_fraction;
  synth.seed = config.seed ^ 0x5EED;
  plant_rule_contents(workload, trace::default_snort_rules(), synth);

  if (!config.pcap_out.empty()) {
    write_pcap(config.pcap_out, workload);
    std::fprintf(stderr, "wrote %zu packets to %s\n",
                 workload.packet_count(), config.pcap_out.c_str());
  }
  std::vector<net::Packet> packets;
  packets.reserve(workload.packet_count());
  for (std::size_t i = 0; i < workload.packet_count(); ++i) {
    packets.push_back(workload.materialize(i));
  }
  return packets;
}

void report(const SimConfig& config, const char* mode,
            const runtime::RunStats& stats) {
  const double p50_lat = stats.latency_us_subsequent.count() > 0
                             ? stats.latency_us_subsequent.percentile(50)
                             : 0.0;
  const double p99_lat = stats.latency_us_subsequent.count() > 0
                             ? stats.latency_us_subsequent.percentile(99)
                             : 0.0;
  const double cycles = stats.platform_cycles_subsequent.count() > 0
                            ? stats.platform_cycles_subsequent.percentile(50)
                            : 0.0;
  const double rate = stats.rate_mpps(config.platform);
  const runtime::OverloadStats& overload = stats.overload;
  if (config.csv) {
    std::printf("%s,%s,%llu,%llu,%llu,%.0f,%.3f,%.3f,%.3f,%llu,%llu,%llu\n",
                platform_name(config.platform), mode,
                static_cast<unsigned long long>(stats.packets),
                static_cast<unsigned long long>(stats.drops),
                static_cast<unsigned long long>(stats.events_triggered),
                cycles, p50_lat, p99_lat, rate,
                static_cast<unsigned long long>(overload.offered),
                static_cast<unsigned long long>(overload.shed_total()),
                static_cast<unsigned long long>(overload.faulted));
    return;
  }
  std::printf("%-9s %-10s packets=%-8llu drops=%-6llu events=%-4llu "
              "cyc/pkt(p50)=%-6.0f lat(p50/p99)=%.3f/%.3f us  rate=%.3f "
              "Mpps\n",
              platform_name(config.platform), mode,
              static_cast<unsigned long long>(stats.packets),
              static_cast<unsigned long long>(stats.drops),
              static_cast<unsigned long long>(stats.events_triggered),
              cycles, p50_lat, p99_lat, rate);
  if (overload.offered > 0 || overload.faulted > 0) {
    std::printf("  overload: offered=%llu admitted=%llu "
                "shed(adm/wm/early)=%llu/%llu/%llu faulted=%llu "
                "degraded(flows/pkts/episodes)=%llu/%llu/%llu\n",
                static_cast<unsigned long long>(overload.offered),
                static_cast<unsigned long long>(overload.admitted),
                static_cast<unsigned long long>(overload.shed_admission),
                static_cast<unsigned long long>(overload.shed_watermark),
                static_cast<unsigned long long>(overload.shed_early_drop),
                static_cast<unsigned long long>(overload.faulted),
                static_cast<unsigned long long>(overload.degraded_flows),
                static_cast<unsigned long long>(overload.degraded_packets),
                static_cast<unsigned long long>(overload.degraded_episodes));
  }
}

void run_mode(const SimConfig& config, bool speedybox,
              const std::vector<net::Packet>& packets,
              telemetry::Registry* registry) {
  BuiltChain built = build_chain(config);
  runtime::RunConfig run_config{config.platform, speedybox, false};
  run_config.batch_size = config.batch_size;
  run_config.overload = config.overload;
  const std::string mode = speedybox ? "speedybox" : "original";

  if (config.fail_backend_at >= 0) {
    // Mid-run control-plane action: per-packet loop on the single-threaded
    // runner (validate() rejects every other executor shape).
    runtime::ChainRunner runner{*built.chain, run_config};
    runner.attach_telemetry(registry, mode + "/main");
    for (std::size_t i = 0; i < packets.size(); ++i) {
      if (static_cast<long>(i) == config.fail_backend_at &&
          built.maglev != nullptr) {
        built.maglev->fail_backend(0);
      }
      net::Packet packet = packets[i];
      packet.reset_metadata();
      runner.process_packet(packet);
    }
    report(config, mode.c_str(), runner.stats());
    return;
  }

  // One construction switch; everything below it is shape-agnostic —
  // the point of the Executor interface.
  std::unique_ptr<runtime::Executor> executor;
  std::string label = mode;
  switch (config.executor) {
    case ExecutorKind::kRunner:
      executor = std::make_unique<runtime::ChainRunner>(*built.chain,
                                                        run_config);
      label = mode + "/main";
      break;
    case ExecutorKind::kSharded:
      executor = std::make_unique<runtime::ShardedRuntime>(
          *built.chain, config.shards, run_config);
      break;
    case ExecutorKind::kPipeline:
      executor = std::make_unique<runtime::SpeedyBoxPipeline>(*built.chain);
      break;
    case ExecutorKind::kOnvm:
      executor = std::make_unique<runtime::OnvmExecutor>(
          *built.chain, 1024, config.batch_size);
      break;
  }
  // The controller's signals come from telemetry snapshots; when the user
  // asked for autoscaling without any metrics flag, a private registry
  // feeds the control loop and is simply discarded afterwards.
  std::unique_ptr<telemetry::Registry> private_registry;
  telemetry::Registry* effective_registry = registry;
  if (config.autoscale && effective_registry == nullptr) {
    private_registry = std::make_unique<telemetry::Registry>();
    effective_registry = private_registry.get();
  }
  executor->attach_telemetry(effective_registry, label);
  if (config.overload.enabled) {
    executor->set_overload_policy(config.overload);
  }
  std::unique_ptr<control::Controller> controller;
  if (config.autoscale) {
    control::AutoscaleConfig auto_config;
    auto_config.slo_us = config.slo_us;
    auto_config.min_shards = config.min_shards;
    auto_config.max_shards =
        config.max_shards == 0 ? config.shards : config.max_shards;
    auto_config.interval_packets = config.scale_interval;
    controller = std::make_unique<control::Controller>(
        auto_config, *effective_registry, label + "/controller");
    controller->attach(static_cast<runtime::ShardedRuntime&>(*executor));
  }
  const runtime::RunStats& stats = executor->run_raw(packets);

  std::string report_label = mode;
  if (config.executor != ExecutorKind::kRunner) {
    report_label += std::string(" [") + executor_kind_name(config.executor);
    if (config.shards > 0) report_label += " x" + std::to_string(config.shards);
    report_label += "]";
  }
  report(config, report_label.c_str(), stats);

  if (config.executor == ExecutorKind::kSharded && !config.csv) {
    auto& sharded = static_cast<runtime::ShardedRuntime&>(*executor);
    const runtime::ShardedRunResult& result = sharded.last_result();
    std::printf("  shards: agg-rate=%.3f Mpps, wall=%.1f ms, "
                "backpressure-waits=%llu, per-shard packets = [",
                result.aggregate_rate_mpps, result.wall_seconds * 1e3,
                static_cast<unsigned long long>(
                    sharded.backpressure_waits()));
    for (std::size_t s = 0; s < result.shard_packets.size(); ++s) {
      std::printf("%s%llu", s == 0 ? "" : ", ",
                  static_cast<unsigned long long>(result.shard_packets[s]));
    }
    std::printf("]\n");
  }
  if (controller != nullptr && !config.csv) {
    auto& sharded = static_cast<runtime::ShardedRuntime&>(*executor);
    std::uint64_t migrated = 0;
    for (const control::ReshardReport& event : controller->scale_events()) {
      migrated += event.migrated_flows;
    }
    std::printf("  autoscale: scale-events=%zu migrated-flows=%llu "
                "final-shards=%zu (of %zu started)\n",
                controller->scale_events().size(),
                static_cast<unsigned long long>(migrated),
                sharded.active_shard_count(), sharded.shard_count());
  }
}

/// Live mode: real wire packets off a socket instead of an in-process
/// trace. Same chain/executor/overload construction as run_mode; the
/// packet source is an IngestServer and the hand-off an IngestExecutor.
int run_live(const SimConfig& config, telemetry::Registry* registry) {
  const bool speedybox = config.run_speedybox;
  const std::string mode = speedybox ? "speedybox" : "original";
  BuiltChain built = build_chain(config);
  runtime::RunConfig run_config{config.platform, speedybox, false};
  run_config.batch_size = config.batch_size;
  run_config.overload = config.overload;

  std::unique_ptr<runtime::Executor> executor;
  std::string label = mode;
  switch (config.executor) {
    case ExecutorKind::kRunner:
      executor = std::make_unique<runtime::ChainRunner>(*built.chain,
                                                        run_config);
      label = mode + "/main";
      break;
    case ExecutorKind::kSharded:
      executor = std::make_unique<runtime::ShardedRuntime>(
          *built.chain, config.shards, run_config);
      break;
    case ExecutorKind::kPipeline:
      executor = std::make_unique<runtime::SpeedyBoxPipeline>(*built.chain);
      break;
    case ExecutorKind::kOnvm:
      executor = std::make_unique<runtime::OnvmExecutor>(
          *built.chain, 1024, config.batch_size);
      break;
  }
  executor->attach_telemetry(registry, label);
  if (config.overload.enabled) {
    executor->set_overload_policy(config.overload);
  }

  io::IngestConfig ingest_config;
  ingest_config.port = config.listen_port;
  ingest_config.proto = config.listen_proto;
  ingest_config.rx_budget = config.rx_budget;
  ingest_config.idle_timeout_ms = static_cast<int>(config.idle_timeout_ms);
  ingest_config.batch_size = config.batch_size;
  io::IngestServer server{ingest_config};
  server.attach_telemetry(registry, mode + "/ingest");
  io::IngestExecutor sink{*executor};

  // The load generator (or the CI smoke) discovers the bound port from
  // this line, so it must hit the pipe before serve() blocks.
  std::printf("chainsim: listening on %s", config.listen_proto ==
                                                   io::IngestProto::kTcp
                                               ? ""
                                               : "udp ");
  if (config.listen_proto != io::IngestProto::kTcp) {
    std::printf("127.0.0.1:%u", server.udp_port());
  }
  if (config.listen_proto != io::IngestProto::kUdp) {
    std::printf("%stcp 127.0.0.1:%u",
                config.listen_proto == io::IngestProto::kBoth ? " " : "",
                server.tcp_port());
  }
  std::printf(" (mode=%s executor=%s feed=%s)\n", mode.c_str(),
              executor_kind_name(config.executor),
              std::string(sink.mode()).c_str());
  std::fflush(stdout);

  const io::IngestStats ingest = server.serve(sink);
  const runtime::RunStats& stats = sink.finish();

  std::string report_label = mode + " [live";
  if (config.executor != ExecutorKind::kRunner) {
    report_label += std::string(" ") + executor_kind_name(config.executor);
    if (config.shards > 0) report_label += " x" + std::to_string(config.shards);
  }
  report_label += "]";
  report(config, report_label.c_str(), stats);

  // Machine-readable summary for the closed-loop smoke. `admitted`/`shed`
  // come from the overload gate when it is on; with the gate off every
  // submitted frame is admitted by definition. The driver checks
  //   sent == admitted + shed + parse_errors + socket_drops
  // against the load generator's own count.
  const runtime::OverloadStats& overload = stats.overload;
  const std::uint64_t admitted =
      config.overload.enabled ? overload.admitted : sink.submitted();
  const std::uint64_t shed =
      config.overload.enabled ? overload.shed_total() : 0;
  const bool conserved = sink.submitted() == admitted + shed &&
                         sink.submitted() == ingest.rx_frames;
  std::printf(
      "{\"live\":{\"proto\":\"%s\",\"executor\":\"%s\",\"mode\":\"%s\","
      "\"feed\":\"%s\",\"rx_bytes\":%llu,\"rx_frames\":%llu,"
      "\"rx_batches\":%llu,\"parse_errors\":%llu,\"socket_drops\":%llu,"
      "\"tcp_connections\":%llu,\"poisoned_streams\":%llu,"
      "\"submitted\":%llu,\"admitted\":%llu,\"shed\":%llu,"
      "\"chain_packets\":%llu,\"chain_drops\":%llu,\"conserved\":%s}}\n",
      io::ingest_proto_name(config.listen_proto),
      executor_kind_name(config.executor), mode.c_str(),
      std::string(sink.mode()).c_str(),
      static_cast<unsigned long long>(ingest.rx_bytes),
      static_cast<unsigned long long>(ingest.rx_frames),
      static_cast<unsigned long long>(ingest.rx_batches),
      static_cast<unsigned long long>(ingest.parse_errors),
      static_cast<unsigned long long>(ingest.socket_drops),
      static_cast<unsigned long long>(ingest.tcp_connections),
      static_cast<unsigned long long>(ingest.poisoned_streams),
      static_cast<unsigned long long>(sink.submitted()),
      static_cast<unsigned long long>(admitted),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(stats.packets),
      static_cast<unsigned long long>(stats.drops),
      conserved ? "true" : "false");
  std::fflush(stdout);
  return conserved ? 0 : 1;
}

/// Final metrics flush (both the trace-driven and live paths end here).
bool write_metrics(const SimConfig& config, telemetry::Registry* registry,
                   std::optional<telemetry::Snapshotter>& snapshotter) {
  if (registry == nullptr) return true;
  if (snapshotter) {
    snapshotter->stop();  // writes the final JSON-lines snapshot
  } else if (!config.metrics_out.empty()) {
    if (!telemetry::append_line(config.metrics_out,
                                to_json(registry->snapshot()))) {
      std::fprintf(stderr, "failed to write %s\n", config.metrics_out.c_str());
      return false;
    }
  }
  if (!config.metrics_prom.empty()) {
    const std::string text = to_prometheus(registry->snapshot());
    std::FILE* file = std::fopen(config.metrics_prom.c_str(), "w");
    if (file == nullptr ||
        std::fwrite(text.data(), 1, text.size(), file) != text.size() ||
        std::fclose(file) != 0) {
      std::fprintf(stderr, "failed to write %s\n",
                   config.metrics_prom.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const SimConfig config = SimConfig::parse(argc, argv);
  config.validate();
  if (config.print_config) {
    std::printf("%s\n", config.to_json().c_str());
    return 0;
  }
  // One registry for the whole process; the two modes (and their shards)
  // disambiguate through shard labels ("original/shard0", "speedybox/main").
  std::unique_ptr<telemetry::Registry> registry;
  std::optional<telemetry::Snapshotter> snapshotter;
  if (!config.metrics_out.empty() || !config.metrics_prom.empty() ||
      config.trace_sample > 0) {
    registry = std::make_unique<telemetry::Registry>(config.trace_sample);
    if (config.metrics_interval_ms > 0 && !config.metrics_out.empty()) {
      snapshotter.emplace(
          *registry, config.metrics_out,
          std::chrono::milliseconds(config.metrics_interval_ms));
    }
  }

  if (config.listen_set) {
    const int exit_code = run_live(config, registry.get());
    if (!write_metrics(config, registry.get(), snapshotter)) return 1;
    return exit_code;
  }
  const std::vector<net::Packet> packets = build_packets(config);

  if (config.csv) {
    std::printf(
        "platform,mode,packets,drops,events,cycles_p50,lat_p50_us,"
        "lat_p99_us,rate_mpps,offered,shed,faulted\n");
  }
  if (config.run_original) {
    run_mode(config, false, packets, registry.get());
  }
  if (config.run_speedybox) {
    run_mode(config, true, packets, registry.get());
  }

  if (!write_metrics(config, registry.get(), snapshotter)) return 1;
  return 0;
}
