// chainsim's flag surface — parse/validate/echo — split out of the 1k-line
// tool so planopt and loadgen share the same parsing helpers and the same
// loud-error contract, and so the config can resolve to a
// plan::DeploymentPlan (the --plan / --emit-plan path) without dragging the
// whole simulator along.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "io/ingest_server.hpp"
#include "runtime/fault_injector.hpp"
#include "runtime/overload.hpp"
#include "runtime/plan.hpp"

namespace speedybox::tools {

/// Print "<tool>: <message>" to stderr and exit 2 — the shared diagnostic
/// path for every flag/spec error in the CLI tools.
[[noreturn]] void config_error(const std::string& tool,
                               const std::string& message);

/// Strict numeric flag parsers: the whole value must parse and satisfy the
/// bound, else config_error names the flag. Shared by chainsim/planopt.
std::uint64_t parse_uint_flag(const std::string& tool, const char* flag,
                              const char* value, std::uint64_t min_value = 1);
double parse_double_flag(const std::string& tool, const char* flag,
                         const char* value, bool positive = true);

/// Every chainsim knob, parsed in one place and cross-checked in
/// validate() — a flag combination that would silently do nothing is an
/// error, not a surprise.
struct SimConfig {
  std::vector<std::string> chain;  // NF registry tokens (nf::NfSpec)
  platform::PlatformKind platform = platform::PlatformKind::kBess;
  bool platform_set = false;
  bool run_original = true;
  bool run_speedybox = true;
  bool mode_set = false;
  plan::ExecutorKind executor = plan::ExecutorKind::kRunner;
  bool executor_set = false;
  std::size_t flows = 100;
  std::uint32_t packets_per_flow = 20;
  std::size_t payload = 128;
  bool workload_shape_set = false;  // any of --flows/--packets/--payload
  /// uniform | datacenter | one of trace::named_scenarios()
  /// (elephant-mice, sync-burst, flash-crowd, syn-flood).
  std::string workload = "uniform";
  double snort_match_fraction = 0.2;
  std::string pcap_in;
  std::string pcap_out;
  std::uint64_t seed = 42;
  long fail_backend_at = -1;  // packet index at which backend 0 dies
  bool csv = false;
  std::size_t shards = 0;  // 0 = single-threaded ChainRunner
  std::size_t batch_size = net::kDefaultBatchSize;
  bool batch_size_set = false;
  std::string metrics_out;         // JSON-lines snapshot file
  std::string metrics_prom;        // Prometheus text file (overwritten)
  long metrics_interval_ms = 0;    // 0 = final snapshot only
  std::uint32_t trace_sample = 0;  // 1-in-N packet span sampling (0 = off)
  runtime::OverloadConfig overload{};
  bool drop_policy_set = false;
  bool queue_capacity_set = false;
  std::optional<std::pair<std::string, runtime::FaultSpec>> fault;
  bool print_config = false;
  // -- deployment plans (DESIGN.md §12) --
  std::string plan_file;  // --plan: run FROM this plan document
  std::string emit_plan;  // --emit-plan: write the plan and exit ("-"=stdout)
  // -- live ingestion (DESIGN.md §11; --listen switches the packet source
  // -- from the in-process trace to a real socket) --
  bool listen_set = false;
  std::uint16_t listen_port = 0;  // 0 = ephemeral (printed at startup)
  io::IngestProto listen_proto = io::IngestProto::kUdp;
  bool proto_set = false;
  std::size_t rx_budget = 64;
  bool rx_budget_set = false;
  long idle_timeout_ms = 1000;
  bool idle_timeout_set = false;
  bool use_recvmmsg = false;  // batched UDP drain (recvmmsg) in live mode
  bool recvmmsg_set = false;
  // -- multi-tenant hosting (DESIGN.md §14; --tenancy replaces the single
  // -- deployment with a tenancy::HostSpec document) --
  std::string tenancy_file;
  // -- autoscaling (control plane; sharded executor only) --
  bool autoscale = false;
  double slo_us = 50.0;
  std::size_t min_shards = 1;
  std::size_t max_shards = 0;  // 0 = default to the starting --shards
  std::uint64_t scale_interval = 2048;
  bool autoscale_knob_set = false;  // any of slo/min/max/interval

  static SimConfig parse(int argc, char** argv);
  /// Exits with a diagnostic on any flag combination that would be
  /// silently ignored at run time (--plan owns the deployment flags, so
  /// combining it with --chain/--mode/--executor/... is an error too).
  void validate() const;
  /// Resolve the deployment: load --plan (file IO + JSON + plan
  /// validation) or build the plan from the flags (chain tokens resolved
  /// against the NF registry). Either way the deployment-shaped fields
  /// (chain/executor/mode/platform/batch/shards/overload/fault) end up
  /// mirrored in this config and the plan is stored in `deployment`.
  /// Exits with a loud diagnostic on any spec error (the registry's
  /// unknown-NF/unknown-option messages pass through verbatim).
  void resolve_plan();
  /// The resolved plan re-targeted at one data path (--mode both runs the
  /// same plan twice with the flag flipped). Call after resolve_plan().
  plan::DeploymentPlan plan_for(bool speedybox) const;
  /// JSON echo of the effective configuration (--print-config).
  std::string to_json() const;

  /// Set by resolve_plan().
  std::optional<plan::DeploymentPlan> deployment;
};

}  // namespace speedybox::tools
