#!/usr/bin/env bash
# Deployment-plan smoke: the offline planner loop end to end (DESIGN.md §12).
#
#   1. flags -> plan -> plan fixpoint: `--emit-plan` of a flag-built config
#      re-emits byte-identically when loaded back with `--plan`.
#   2. run identity: the flag-built run and the plan-built run of the same
#      deployment report identical deterministic counters
#      (packets/drops/events; rates and cycles are machine noise).
#   3. the planner loop: profile a --mode original run (--metrics-out),
#      feed it to planopt, and run chainsim FROM the emitted plan — the
#      planner's runner-shaped plan must match the flag-built counters too.
#   4. a typoed plan field is rejected loudly (strict parse, exit != 0).
#
# This is the CI `plan-smoke` job; run it locally the same way:
#
#   tools/plan_smoke.sh [build_dir]    (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
CHAINSIM="${BUILD}/tools/chainsim"
PLANOPT="${BUILD}/tools/planopt"
[ -x "${CHAINSIM}" ] || { echo "missing ${CHAINSIM} (build chainsim first)" >&2; exit 2; }
[ -x "${PLANOPT}" ] || { echo "missing ${PLANOPT} (build planopt first)" >&2; exit 2; }

TMP="$(mktemp -d)"
trap 'rm -rf "${TMP}"' EXIT

CHAIN2='ipfilter:drop-dst-prefix=10.1.3.0/24,snort,monitor'
WORKLOAD=(--flows 60 --packets 20)

# The deterministic slice of a chainsim summary row: packet/drop/event
# counters are bit-reproducible; cycles and rates are not.
counters() { grep -o 'packets=[0-9]*\|drops=[0-9]*\|events=[0-9]*'; }

echo "--- plan smoke 1/4: flags -> plan -> plan fixpoint"
"${CHAINSIM}" --chain "${CHAIN2}" --mode speedybox "${WORKLOAD[@]}" \
  --emit-plan "${TMP}/flags.json"
"${CHAINSIM}" --plan "${TMP}/flags.json" "${WORKLOAD[@]}" \
  --emit-plan - > "${TMP}/fixpoint.json"
diff "${TMP}/flags.json" "${TMP}/fixpoint.json" \
  || { echo "FAIL: --emit-plan not a fixpoint under --plan" >&2; exit 1; }

echo "--- plan smoke 2/4: flag-built vs plan-built run identity"
"${CHAINSIM}" --chain "${CHAIN2}" --mode speedybox "${WORKLOAD[@]}" \
  | counters > "${TMP}/flag_counters"
"${CHAINSIM}" --plan "${TMP}/flags.json" "${WORKLOAD[@]}" \
  | counters > "${TMP}/plan_counters"
diff "${TMP}/flag_counters" "${TMP}/plan_counters" \
  || { echo "FAIL: plan-built run diverges from flag-built run" >&2; exit 1; }

echo "--- plan smoke 3/4: profile -> planopt -> chainsim --plan"
"${CHAINSIM}" --chain "${CHAIN2}" --mode original "${WORKLOAD[@]}" \
  --metrics-out "${TMP}/profile.jsonl" > /dev/null
"${PLANOPT}" --chain "${CHAIN2}" --profile "${TMP}/profile.jsonl" \
  --target-mpps 0.1 --out "${TMP}/planned.json" --explain
"${CHAINSIM}" --plan "${TMP}/planned.json" "${WORKLOAD[@]}" \
  | counters > "${TMP}/planned_counters"
diff "${TMP}/flag_counters" "${TMP}/planned_counters" \
  || { echo "FAIL: planner-built run diverges from flag-built run" >&2; exit 1; }

echo "--- plan smoke 4/4: a typoed plan field fails loudly"
sed 's/"executor"/"exector"/' "${TMP}/flags.json" > "${TMP}/typo.json"
if "${CHAINSIM}" --plan "${TMP}/typo.json" "${WORKLOAD[@]}" 2> "${TMP}/typo.err"; then
  echo "FAIL: chainsim accepted a plan with an unknown field" >&2
  exit 1
fi
grep -q "exector" "${TMP}/typo.err" \
  || { echo "FAIL: rejection did not name the unknown field" >&2; \
       cat "${TMP}/typo.err" >&2; exit 1; }

echo "plan smoke: all checks passed"
