#!/usr/bin/env bash
# Build and run the concurrency-sensitive test suites under ThreadSanitizer
# and AddressSanitizer. TSan is the gate for the sharded runtime's
# single-writer-per-flow contract (DESIGN.md "Sharded runtime"), the SPSC
# ring burst hand-off, and the scalar-vs-batched differential harness
# (test_equivalence, DESIGN.md §8); ASan backs it up on the packet-buffer
# side.
#
# Usage: tools/run_sanitizers.sh [thread|address|all]   (default: all)
set -euo pipefail

cd "$(dirname "$0")/.."

# The suites that exercise threads and shared rings. The rest of the tree
# is single-threaded and covered by the regular build. test_integration
# carries the fault-injection differential; test_property the overload
# conservation sweep over the 4-shard runtime; test_control the live
# resharding path (quiescence + cross-shard flow migration), and
# test_equivalence its mid-trace autoscale differential — both must be
# TSan-clean for the migration protocol to count as proven. test_io runs
# the wire-frame fuzz sweep (ASan is its real teeth) plus the loopback
# closed loop, whose TCP tests send from a second thread. test_tenancy
# hosts several sharded executors at once and byte-checks outputs across
# an arbiter-triggered mid-run shard reallocation (DESIGN.md §14).
TARGETS=(test_util test_runtime test_telemetry test_integration test_equivalence test_property test_plan test_control test_io test_tenancy)

run_one() {
  local sanitizer="$1"
  local build_dir="build-tsan"
  [ "${sanitizer}" = "address" ] && build_dir="build-asan"
  echo "=== ${sanitizer} sanitizer -> ${build_dir} ==="
  cmake -B "${build_dir}" -S . -DSPEEDYBOX_SANITIZE="${sanitizer}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "${build_dir}" -j "$(nproc)" --target "${TARGETS[@]}"
  for target in "${TARGETS[@]}"; do
    echo "--- ${sanitizer}: ${target}"
    if [ "${sanitizer}" = "thread" ]; then
      TSAN_OPTIONS="halt_on_error=1" "./${build_dir}/tests/${target}"
    else
      ASAN_OPTIONS="detect_leaks=0" "./${build_dir}/tests/${target}"
    fi
  done
  echo "=== ${sanitizer}: clean ==="
}

mode="${1:-all}"
case "${mode}" in
  thread|address) run_one "${mode}" ;;
  all)
    run_one thread
    run_one address
    ;;
  *)
    echo "usage: $0 [thread|address|all]" >&2
    exit 2
    ;;
esac
